//! Ablation: the cost-band width ε (condition (b)'s tolerance).
//!
//! The paper requires "the cost Cout of the optimal plan is the same" for
//! every member of a class; any implementation must relax exact equality to
//! a band. This sweep quantifies the trade-off the benchmark designer
//! faces:
//!
//! * small ε → tight classes (low within-class variance, strong P1) but
//!   many classes and many dropped (undersized) bindings;
//! * large ε → few classes, full coverage, but the within-class variance
//!   creeps back toward the uniform baseline the paper criticizes.

use parambench_bench::{bsbm, header, snb};
use parambench_core::{
    curate, run_workload, ClusterConfig, CostSource, CurationConfig, Metric, ParameterDomain,
    ProfileConfig, RunConfig,
};
use parambench_datagen::{Bsbm, Snb};
use parambench_sparql::{Engine, QueryTemplate};
use parambench_stats::Summary;

const EPSILONS: &[f64] = &[0.1, 0.25, 0.5, 1.0, 2.0, 4.0];

fn sweep(
    engine: &Engine<'_>,
    template: &QueryTemplate,
    domain: &ParameterDomain,
    cost_source: CostSource,
) {
    println!(
        "{:>6} | {:>8} | {:>9} | {:>10} | {:>14} | {:>12}",
        "eps", "classes", "dropped", "coverage", "mean class CV", "max class CV"
    );
    for &eps in EPSILONS {
        let cfg = CurationConfig {
            profile: ProfileConfig { max_bindings: 800, cost_source, ..Default::default() },
            cluster: ClusterConfig { epsilon: eps, min_class_size: 5 },
        };
        let workload = match curate(engine, template, domain, &cfg) {
            Ok(w) => w,
            Err(e) => {
                println!("{eps:>6} | curation failed: {e}");
                continue;
            }
        };
        // Within-class dispersion of the measured metric, averaged over the
        // three biggest classes (enough to see the trend, cheap to run).
        let mut cvs = Vec::new();
        for class in workload.classes().iter().take(3) {
            let bindings = workload.sample_class(class.id, 30, 7).expect("sample");
            let ms = run_workload(engine, template, &bindings, &RunConfig::default()).expect("run");
            if let Some(s) = Summary::new(&Metric::Cout.series(&ms)) {
                cvs.push(s.coeff_of_variation());
            }
        }
        let mean_cv = cvs.iter().sum::<f64>() / cvs.len().max(1) as f64;
        let max_cv = cvs.iter().cloned().fold(0.0, f64::max);
        let retained = workload.clustering().retained();
        let dropped = workload.clustering().dropped.len();
        println!(
            "{eps:>6.2} | {:>8} | {:>9} | {:>9.0}% | {:>14.3} | {:>12.3}",
            workload.classes().len(),
            dropped,
            100.0 * retained as f64 / (retained + dropped) as f64,
            mean_cv,
            max_cv
        );
    }
}

fn main() {
    let catalog = bsbm();
    {
        let engine = Engine::new(&catalog.dataset);
        header("epsilon sweep: BSBM-BI Q4 (%type), estimated-cost profiling");
        let domain = ParameterDomain::single("type", catalog.type_iris());
        sweep(&engine, &Bsbm::q4_feature_price_by_type(), &domain, CostSource::EstimatedCout);
    }
    let social = snb();
    {
        let engine = Engine::new(&social.dataset);
        header("epsilon sweep: LDBC Q2 (%person), measured-cost profiling");
        let domain = ParameterDomain::single("person", social.person_iris());
        sweep(&engine, &Snb::q2_friend_posts(), &domain, CostSource::MeasuredCout);
    }
    println!("\nreading: CV should fall as eps shrinks; coverage falls with it.");
}
