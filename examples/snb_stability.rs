//! LDBC Q2 sample-stability experiment (the paper's E2, live).
//!
//! Draws four independent groups of parameter bindings for "newest 20 posts
//! of the user's friends", reports per-group q10/median/q90/average, and
//! contrasts the spread under uniform sampling with the spread after
//! curation.
//!
//! ```text
//! cargo run --release --example snb_stability
//! ```

use parambench::curation::{
    curate, run_workload, CostSource, CurationConfig, Metric, ParameterDomain, ProfileConfig,
    RunConfig,
};
use parambench::datagen::{Snb, SnbConfig};
use parambench::sparql::Engine;
use parambench::stats::{relative_spread, Summary};

fn group_row(label: &str, s: &Summary) -> String {
    format!(
        "{label:>8} | q10 {:>10.1} | median {:>10.1} | q90 {:>10.1} | avg {:>10.1}",
        s.quantile(0.1),
        s.median(),
        s.quantile(0.9),
        s.mean()
    )
}

fn main() {
    let snb = Snb::generate(SnbConfig::with_scale(120_000));
    println!("SNB-like dataset: {} triples, {} persons\n", snb.dataset.len(), snb.config.persons);
    let engine = Engine::new(&snb.dataset);
    let template = Snb::q2_friend_posts();
    let domain = ParameterDomain::single("person", snb.person_iris());

    // Four independent uniform groups of 100 bindings (paper's E2 table).
    println!("LDBC Q2 with uniform parameters, 4 independent groups x 100 (metric: Cout):");
    let mut group_stats = Vec::new();
    for g in 0..4 {
        let bindings = domain.sample_uniform(100, 1000 + g);
        let ms = run_workload(&engine, &template, &bindings, &RunConfig::default()).unwrap();
        let s = Summary::new(&Metric::Cout.series(&ms)).unwrap();
        println!("{}", group_row(&format!("group {g}"), &s));
        group_stats.push(s);
    }
    let avg_spread = relative_spread(&group_stats.iter().map(Summary::mean).collect::<Vec<_>>());
    let med_spread = relative_spread(&group_stats.iter().map(Summary::median).collect::<Vec<_>>());
    println!(
        "\n  spread across groups: average {:.0}%, median {:.0}% (paper: up to 40% / 100%)\n",
        avg_spread * 100.0,
        med_spread * 100.0
    );

    // Curate the person domain with *measured* Cout profiling (the LDBC
    // production variant — one execution per candidate; Q2's true cost
    // depends on friends' post counts, which estimates can't see), then
    // re-run the 4-group experiment within the largest class.
    let workload = curate(
        &engine,
        &template,
        &domain,
        &CurationConfig {
            profile: ProfileConfig {
                max_bindings: 1_500,
                cost_source: CostSource::MeasuredCout,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    println!("curated classes:\n{}", workload.describe());

    println!("same experiment inside class 0 (curated):");
    let mut curated_stats = Vec::new();
    for g in 0..4 {
        let bindings = workload.sample_class(0, 100, 2000 + g).unwrap();
        let ms = run_workload(&engine, &template, &bindings, &RunConfig::default()).unwrap();
        let s = Summary::new(&Metric::Cout.series(&ms)).unwrap();
        println!("{}", group_row(&format!("group {g}"), &s));
        curated_stats.push(s);
    }
    let avg_spread_c =
        relative_spread(&curated_stats.iter().map(Summary::mean).collect::<Vec<_>>());
    let med_spread_c =
        relative_spread(&curated_stats.iter().map(Summary::median).collect::<Vec<_>>());
    println!(
        "\n  spread across groups: average {:.0}%, median {:.0}%",
        avg_spread_c * 100.0,
        med_spread_c * 100.0
    );
    println!(
        "\n=> curation shrinks the cross-sample spread from {:.0}% to {:.0}% (average metric)",
        avg_spread * 100.0,
        avg_spread_c * 100.0
    );
}
