//! Benchmark trajectory harness: runs the BSBM template suite and writes
//! `BENCH_<seq>.json` (wall time, `Cout`, scanned, peak_tuples,
//! spilled_rows, sorted_rows, build_rows per template) so performance is
//! tracked across PRs — each PR commits its snapshot next to the previous
//! ones and regressions show up as a diff, not an anecdote.
//!
//! ```text
//! cargo run --release -p parambench-bench --bin bench_trajectory
//! ```
//!
//! The sequence number defaults to `5` (this PR) and can be overridden
//! with `BENCH_SEQ`; dataset scale follows `PARAMBENCH_TRIPLES` like the
//! experiment binaries. Wall times are min-of-N to damp scheduler noise;
//! the deterministic counters are single-run (they cannot vary).

use std::time::Duration;

use parambench_bench::{bsbm, fmt_ms, header};
use parambench_datagen::{bsbm::schema, Bsbm};
use parambench_rdf::Term;
use parambench_sparql::template::{Binding, QueryTemplate};
use parambench_sparql::Engine;

/// Wall-time runs per template (min is reported).
const RUNS: usize = 5;

fn suite() -> Vec<(QueryTemplate, Binding)> {
    let root_type = Binding::new().with("type", Term::iri(schema::product_type(0)));
    vec![
        (
            Bsbm::q2_similar_products(),
            Binding::new().with("product", Term::iri(schema::product(0))),
        ),
        (Bsbm::q4_feature_price_by_type(), root_type.clone()),
        (Bsbm::q_cheapest_products_of_type(), root_type.clone()),
        (Bsbm::q_catalog_of_type(), root_type.clone()),
        (Bsbm::q_rating_by_type(), root_type.clone()),
        (Bsbm::q_type_feature_offers(), root_type.with("feature", Term::iri(schema::feature(0)))),
    ]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let seq = std::env::var("BENCH_SEQ").unwrap_or_else(|_| "5".into());
    let data = bsbm();
    header(&format!("BSBM template suite trajectory (seq {seq}, {} triples)", data.dataset.len()));
    let engine = Engine::new(&data.dataset);

    let mut entries: Vec<String> = Vec::new();
    for (template, binding) in suite() {
        let prepared = match engine.prepare_template(&template, &binding) {
            Ok(p) => p,
            Err(e) => {
                println!("{:<18} SKIPPED ({e})", template.name());
                continue;
            }
        };
        let mut wall = Duration::MAX;
        let mut out = None;
        for _ in 0..RUNS {
            let run = engine.execute(&prepared).expect("template executes");
            wall = wall.min(run.wall_time);
            out = Some(run);
        }
        let out = out.expect("at least one run");
        let ms = wall.as_secs_f64() * 1e3;
        println!(
            "{:<18} {:>10} | rows {:>6} Cout {:>8} scanned {:>8} peak {:>8} \
             spilled {:>6} sorted {:>8} build {:>8}",
            template.name(),
            fmt_ms(ms),
            out.results.len(),
            out.cout,
            out.stats.scanned,
            out.stats.peak_tuples,
            out.stats.spilled_rows,
            out.stats.sorted_rows,
            out.stats.build_rows,
        );
        entries.push(format!(
            "    {{\"template\": \"{}\", \"signature\": \"{}\", \"wall_ms\": {:.3}, \
             \"rows\": {}, \"cout\": {}, \"scanned\": {}, \"peak_tuples\": {}, \
             \"spilled_rows\": {}, \"sorted_rows\": {}, \"build_rows\": {}}}",
            json_escape(template.name()),
            json_escape(&prepared.signature.0),
            ms,
            out.results.len(),
            out.cout,
            out.stats.scanned,
            out.stats.peak_tuples,
            out.stats.spilled_rows,
            out.stats.sorted_rows,
            out.stats.build_rows,
        ));
    }

    let body = format!(
        "{{\n  \"seq\": {seq},\n  \"suite\": \"bsbm\",\n  \"triples\": {},\n  \
         \"wall_runs\": {RUNS},\n  \"templates\": [\n{}\n  ]\n}}\n",
        data.dataset.len(),
        entries.join(",\n"),
    );
    let path = format!("BENCH_{seq}.json");
    std::fs::write(&path, &body).expect("write benchmark snapshot");
    println!("\nwrote {path}");
}
