//! Injectable I/O fault seam for durability testing.
//!
//! Every write-side file operation in the durability layer (WAL appends,
//! atomic snapshot saves) funnels through `SeamFile` and the seam-gated
//! free functions below, each of which consults an [`IoSeam`] before
//! touching the OS. Tests hand in a seam with a scripted failure schedule
//! — fail the Nth write, persist only a prefix of a write (a torn record),
//! flip a bit on the way down (silent media corruption), return
//! ENOSPC/EINTR, fail an fsync or a rename — and the production code path
//! itself executes the failure, so recovery is exercised against exactly
//! the faults a real disk produces. [`IoSeam::none`] is the production
//! seam: zero scheduled faults, and the only overhead is an atomic
//! refcount per file operation.
//!
//! The seam also records the sequence of operations it saw
//! ([`IoSeam::log`]), which lets tests assert *ordering* properties that
//! no amount of output checking can prove — most importantly that a WAL
//! append issues its fsync after its writes and before the append is
//! acknowledged.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The write-side file operations the seam can intercept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Creating (or truncating) a file.
    Create,
    /// One `write` syscall attempt.
    Write,
    /// An `fsync` (`File::sync_all`) on a file.
    Sync,
    /// Renaming a file over its destination.
    Rename,
    /// An `fsync` on a directory (rename durability).
    SyncDir,
    /// Truncating a file to a given length (`File::set_len`).
    SetLen,
}

impl IoOp {
    fn slot(self) -> usize {
        match self {
            IoOp::Create => 0,
            IoOp::Write => 1,
            IoOp::Sync => 2,
            IoOp::Rename => 3,
            IoOp::SyncDir => 4,
            IoOp::SetLen => 5,
        }
    }
}

/// A scripted fault: what the intercepted operation does instead of (or in
/// addition to) its real effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with an error carrying this message (e.g. a
    /// simulated ENOSPC: "No space left on device"). Nothing is persisted.
    Err(&'static str),
    /// Fail the operation with `ErrorKind::Interrupted` (EINTR). Correct
    /// callers retry the operation, which then consults the seam again.
    Interrupt,
    /// Persist only the first `keep` bytes of the write, then fail — a
    /// torn record, as produced by a crash or device failure mid-write.
    /// Meaningless for non-write operations (treated as [`Fault::Err`]).
    ShortWrite {
        /// Bytes actually persisted before the simulated failure.
        keep: usize,
    },
    /// Flip one bit of the buffer on its way to the device and report
    /// success — silent media corruption. Meaningless for non-write
    /// operations (ignored: the operation succeeds).
    FlipBit {
        /// Byte offset within the written buffer (taken modulo its length).
        offset: usize,
        /// XOR mask applied to that byte.
        mask: u8,
    },
}

#[derive(Debug, Default)]
struct Inner {
    /// Per-[`IoOp`] occurrence counters (how many of each op have run).
    counts: [usize; 6],
    /// Scheduled faults: fire when `op`'s counter passes `at` (0-based).
    plan: Vec<(IoOp, usize, Fault, bool)>,
    /// Every operation observed, in order.
    log: Vec<IoOp>,
}

/// A cloneable handle to a scripted I/O failure schedule (see the module
/// docs). Clones share the schedule, counters and log.
#[derive(Debug, Clone, Default)]
pub struct IoSeam {
    inner: Arc<Mutex<Inner>>,
}

impl IoSeam {
    /// The production seam: no faults scheduled, nothing intercepted.
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedules `fault` to fire on the `at`-th occurrence (0-based) of
    /// `op`, counted from the seam's creation. Multiple faults may target
    /// the same operation kind at different occurrences.
    pub fn inject(&self, op: IoOp, at: usize, fault: Fault) {
        self.inner.lock().expect("seam poisoned").plan.push((op, at, fault, false));
    }

    /// The sequence of operations observed so far.
    pub fn log(&self) -> Vec<IoOp> {
        self.inner.lock().expect("seam poisoned").log.clone()
    }

    /// Number of scheduled faults that have not fired yet. Tests assert
    /// zero to prove their script actually executed.
    pub fn unfired(&self) -> usize {
        self.inner.lock().expect("seam poisoned").plan.iter().filter(|p| !p.3).count()
    }

    /// Records one occurrence of `op` and returns the fault scheduled for
    /// it, if any.
    pub(crate) fn advance(&self, op: IoOp) -> Option<Fault> {
        let mut inner = self.inner.lock().expect("seam poisoned");
        let n = inner.counts[op.slot()];
        inner.counts[op.slot()] += 1;
        inner.log.push(op);
        for (pop, at, fault, fired) in inner.plan.iter_mut() {
            if !*fired && *pop == op && *at == n {
                *fired = true;
                return Some(fault.clone());
            }
        }
        None
    }
}

fn fault_err(message: &'static str) -> io::Error {
    io::Error::other(message)
}

/// A file whose write-side operations consult an [`IoSeam`].
///
/// Reads are never intercepted (crash-recovery's fault model is about what
/// reached the disk, which the write side decides), and the [`Write`]
/// implementation reports simulated EINTR as `ErrorKind::Interrupted` so
/// the standard library's `write_all` retry loop — the same discipline a
/// real EINTR needs — is what makes interrupted appends succeed.
#[derive(Debug)]
pub(crate) struct SeamFile {
    file: File,
    seam: IoSeam,
}

impl SeamFile {
    /// Creates (truncating) `path` for read+write through the seam.
    pub(crate) fn create(path: &Path, seam: &IoSeam) -> io::Result<Self> {
        if let Some(fault) = seam.advance(IoOp::Create) {
            return Err(fault_err(match fault {
                Fault::Err(m) => m,
                _ => "simulated create failure",
            }));
        }
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(Self { file, seam: seam.clone() })
    }

    /// Opens an existing `path` for read+write through the seam (no
    /// create-op consultation: the file already exists).
    pub(crate) fn open_rw(path: &Path, seam: &IoSeam) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Self { file, seam: seam.clone() })
    }

    /// `File::sync_all` through the seam.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        match self.seam.advance(IoOp::Sync) {
            None => self.file.sync_all(),
            Some(Fault::Err(m)) => Err(fault_err(m)),
            Some(Fault::Interrupt) => {
                Err(io::Error::new(io::ErrorKind::Interrupted, "simulated EINTR during fsync"))
            }
            Some(Fault::ShortWrite { .. }) => Err(fault_err("simulated fsync failure")),
            Some(Fault::FlipBit { .. }) => self.file.sync_all(),
        }
    }

    /// `File::set_len` through the seam.
    pub(crate) fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.seam.advance(IoOp::SetLen) {
            None => self.file.set_len(len),
            Some(Fault::Err(m)) => Err(fault_err(m)),
            Some(Fault::Interrupt) => {
                Err(io::Error::new(io::ErrorKind::Interrupted, "simulated EINTR during truncate"))
            }
            Some(Fault::ShortWrite { .. }) => Err(fault_err("simulated truncate failure")),
            Some(Fault::FlipBit { .. }) => self.file.set_len(len),
        }
    }
}

impl Write for SeamFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.seam.advance(IoOp::Write) {
            None => self.file.write(buf),
            Some(Fault::Err(m)) => Err(fault_err(m)),
            Some(Fault::Interrupt) => {
                Err(io::Error::new(io::ErrorKind::Interrupted, "simulated EINTR during write"))
            }
            Some(Fault::ShortWrite { keep }) => {
                let keep = keep.min(buf.len());
                self.file.write_all(&buf[..keep])?;
                Err(fault_err("simulated torn write: device failed mid-record"))
            }
            Some(Fault::FlipBit { offset, mask }) => {
                let mut corrupted = buf.to_vec();
                if !corrupted.is_empty() {
                    let at = offset % corrupted.len();
                    corrupted[at] ^= mask;
                }
                self.file.write_all(&corrupted)?;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl Read for SeamFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.file.read(buf)
    }
}

impl Seek for SeamFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.file.seek(pos)
    }
}

/// `std::fs::rename` through the seam.
pub(crate) fn seam_rename(seam: &IoSeam, from: &Path, to: &Path) -> io::Result<()> {
    match seam.advance(IoOp::Rename) {
        None => std::fs::rename(from, to),
        Some(Fault::Err(m)) => Err(fault_err(m)),
        Some(Fault::Interrupt) => {
            Err(io::Error::new(io::ErrorKind::Interrupted, "simulated EINTR during rename"))
        }
        Some(Fault::ShortWrite { .. }) => Err(fault_err("simulated rename failure")),
        Some(Fault::FlipBit { .. }) => std::fs::rename(from, to),
    }
}

/// Fsyncs the directory containing a just-renamed file so the rename
/// itself is durable, through the seam. A no-op on platforms where
/// directories cannot be opened for syncing.
pub(crate) fn seam_sync_dir(seam: &IoSeam, dir: &Path) -> io::Result<()> {
    match seam.advance(IoOp::SyncDir) {
        None => sync_dir(dir),
        Some(Fault::Err(m)) => Err(fault_err(m)),
        Some(Fault::Interrupt) => {
            Err(io::Error::new(io::ErrorKind::Interrupted, "simulated EINTR during dir fsync"))
        }
        Some(Fault::ShortWrite { .. }) => Err(fault_err("simulated dir fsync failure")),
        Some(Fault::FlipBit { .. }) => sync_dir(dir),
    }
}

#[cfg(unix)]
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> io::Result<()> {
    // Directory handles cannot be fsynced portably; rename-over-destination
    // plus file fsync is the best available guarantee here.
    Ok(())
}

/// The `PathBuf`-typed path of a seam-created temp sibling: `path` with
/// `.tmp.<pid>` appended to its file name, in the same directory (so the
/// final rename never crosses a filesystem boundary).
pub(crate) fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_fires_on_nth_occurrence_and_log_records_order() {
        let seam = IoSeam::none();
        seam.inject(IoOp::Write, 1, Fault::Err("No space left on device"));
        assert_eq!(seam.advance(IoOp::Write), None);
        assert_eq!(seam.advance(IoOp::Sync), None);
        assert_eq!(seam.advance(IoOp::Write), Some(Fault::Err("No space left on device")));
        assert_eq!(seam.advance(IoOp::Write), None);
        assert_eq!(seam.log(), vec![IoOp::Write, IoOp::Sync, IoOp::Write, IoOp::Write]);
        assert_eq!(seam.unfired(), 0);
    }

    #[test]
    fn interrupted_write_is_retried_by_write_all() {
        let dir = std::env::temp_dir().join(format!("parambench-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("eintr.bin");
        let seam = IoSeam::none();
        seam.inject(IoOp::Write, 0, Fault::Interrupt);
        let mut f = SeamFile::create(&path, &seam).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        // Two write attempts were made: the interrupted one and the retry.
        assert_eq!(seam.log().iter().filter(|op| **op == IoOp::Write).count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_persists_prefix_then_fails() {
        let dir = std::env::temp_dir().join(format!("parambench-fault-sw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.bin");
        let seam = IoSeam::none();
        seam.inject(IoOp::Write, 0, Fault::ShortWrite { keep: 3 });
        let mut f = SeamFile::create(&path, &seam).unwrap();
        let err = f.write_all(b"hello").unwrap_err();
        assert!(err.to_string().contains("torn"), "unexpected error: {err}");
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hel");
        std::fs::remove_dir_all(&dir).ok();
    }
}
