//! BSBM-like product-catalog generator (Berlin SPARQL Benchmark, BI use case).
//!
//! Reproduces the structural properties the paper's E1/E3 examples rely on:
//!
//! * a **product-type hierarchy** — a B-ary tree; every product is typed
//!   with its leaf type *and all ancestors*, so a generic (high) type covers
//!   a large fraction of all products while a leaf type covers a sliver.
//!   The type parameter of BI Q4 therefore swings the touched data volume by
//!   orders of magnitude — the paper's "clustered runtime" effect;
//! * **type-correlated product features** — each type node owns a feature
//!   pool and products draw features along their ancestor path, so feature
//!   co-occurrence (BI Q2's similarity join) is skewed;
//! * offers and reviews for realistic bulk and extra workloads.
//!
//! The paper's exact Q4 ("ratio between price with and without the feature")
//! needs correlated subqueries outside our engine subset; our Q4 keeps the
//! same parameter → the same data-volume behaviour (per-feature average
//! price over the products of the type), which is what E1/E3 measure.

use parambench_rdf::store::{Dataset, StoreBuilder};
use parambench_rdf::term::Term;
use parambench_sparql::template::QueryTemplate;
use rand::Rng;

use crate::dist::{stream_rng, weighted_index, Zipf};

/// Vocabulary of the generated BSBM-like data.
pub mod schema {
    pub const NS: &str = "http://bsbm.example/";
    pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    pub const SUBCLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    pub const PRODUCT_FEATURE: &str = "http://bsbm.example/productFeature";
    pub const PRICE: &str = "http://bsbm.example/price";
    pub const LABEL: &str = "http://bsbm.example/label";
    pub const OFFER_PRODUCT: &str = "http://bsbm.example/offerProduct";
    pub const OFFER_VENDOR: &str = "http://bsbm.example/offerVendor";
    pub const OFFER_PRICE: &str = "http://bsbm.example/offerPrice";
    pub const REVIEW_FOR: &str = "http://bsbm.example/reviewFor";
    pub const RATING: &str = "http://bsbm.example/rating";
    pub const REVIEWER: &str = "http://bsbm.example/reviewer";

    pub fn product(i: usize) -> String {
        format!("{NS}Product{i}")
    }
    pub fn product_type(i: usize) -> String {
        format!("{NS}ProductType{i}")
    }
    pub fn feature(i: usize) -> String {
        format!("{NS}ProductFeature{i}")
    }
    pub fn vendor(i: usize) -> String {
        format!("{NS}Vendor{i}")
    }
    pub fn offer(i: usize) -> String {
        format!("{NS}Offer{i}")
    }
    pub fn review(i: usize) -> String {
        format!("{NS}Review{i}")
    }
    pub fn person(i: usize) -> String {
        format!("{NS}Reviewer{i}")
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct BsbmConfig {
    /// Number of products.
    pub products: usize,
    /// Depth of the type tree (root = level 0).
    pub type_depth: usize,
    /// Branching factor of the type tree.
    pub type_branching: usize,
    /// Features owned by each type node's pool.
    pub features_per_type: usize,
    /// Features attached to each product.
    pub features_per_product: usize,
    /// Offers per product (average).
    pub offers_per_product: usize,
    /// Reviews per product (average).
    pub reviews_per_product: usize,
    /// Number of vendors.
    pub vendors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BsbmConfig {
    fn default() -> Self {
        BsbmConfig {
            products: 2_000,
            type_depth: 5,
            type_branching: 3,
            features_per_type: 6,
            features_per_product: 6,
            offers_per_product: 2,
            reviews_per_product: 2,
            vendors: 20,
            seed: 42,
        }
    }
}

impl BsbmConfig {
    /// A configuration scaled to approximately `triples` triples.
    pub fn with_scale(triples: usize) -> Self {
        // ~30 triples per product with the default knobs.
        let products = (triples / 30).max(50);
        BsbmConfig { products, ..Default::default() }
    }
}

/// The type tree: nodes in BFS order, `parent[0] = None`.
#[derive(Debug, Clone)]
pub struct TypeTree {
    parent: Vec<Option<usize>>,
    depth: Vec<usize>,
    children: Vec<Vec<usize>>,
}

impl TypeTree {
    fn build(depth: usize, branching: usize) -> Self {
        let mut parent = vec![None];
        let mut depths = vec![0usize];
        let mut level_start = 0;
        let mut level_len = 1;
        for d in 1..=depth {
            let next_start = parent.len();
            for p in level_start..level_start + level_len {
                for _ in 0..branching {
                    parent.push(Some(p));
                    depths.push(d);
                }
            }
            level_start = next_start;
            level_len = parent.len() - next_start;
        }
        let mut children = vec![Vec::new(); parent.len()];
        for (i, &p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p].push(i);
            }
        }
        TypeTree { parent, depth: depths, children }
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the tree is trivial (single root only).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Indices of leaf nodes.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.children[i].is_empty()).collect()
    }

    /// Node → root ancestor path, inclusive of both endpoints.
    pub fn ancestors(&self, mut node: usize) -> Vec<usize> {
        let mut path = vec![node];
        while let Some(p) = self.parent[node] {
            path.push(p);
            node = p;
        }
        path
    }

    /// Depth of a node (root = 0).
    pub fn depth_of(&self, node: usize) -> usize {
        self.depth[node]
    }
}

/// The generated benchmark instance: dataset + everything needed to pose
/// the workload (templates, parameter domains).
pub struct Bsbm {
    /// The frozen RDF dataset.
    pub dataset: Dataset,
    /// The configuration it was generated from.
    pub config: BsbmConfig,
    /// The product type tree (for inspecting generality of a type).
    pub types: TypeTree,
}

impl Bsbm {
    /// Generates a dataset. Deterministic in `config.seed`.
    pub fn generate(config: BsbmConfig) -> Self {
        let types = TypeTree::build(config.type_depth, config.type_branching);
        let mut b = StoreBuilder::new();

        let rdf_type = Term::iri(schema::RDF_TYPE);
        let subclass = Term::iri(schema::SUBCLASS_OF);
        let has_feature = Term::iri(schema::PRODUCT_FEATURE);
        let price_p = Term::iri(schema::PRICE);
        let label_p = Term::iri(schema::LABEL);

        // Type hierarchy triples.
        for i in 0..types.len() {
            if let Some(p) = types.parent[i] {
                b.insert(
                    Term::iri(schema::product_type(i)),
                    subclass.clone(),
                    Term::iri(schema::product_type(p)),
                );
            }
        }

        // Feature pools: node i owns features [i*fpt, (i+1)*fpt).
        let fpt = config.features_per_type;
        let pool_of = |node: usize| -> Vec<usize> { (node * fpt..(node + 1) * fpt).collect() };

        let leaves = types.leaves();
        let leaf_pop = Zipf::new(leaves.len(), 0.6);
        let mut rng = stream_rng(config.seed, "bsbm-products");

        let mut product_leaf = Vec::with_capacity(config.products);
        for pi in 0..config.products {
            let product = Term::iri(schema::product(pi));
            let leaf = leaves[leaf_pop.sample(&mut rng)];
            product_leaf.push(leaf);

            // Type triples: leaf + all ancestors (the generality lever).
            for t in types.ancestors(leaf) {
                b.insert(product.clone(), rdf_type.clone(), Term::iri(schema::product_type(t)));
            }
            b.insert(product.clone(), label_p.clone(), Term::literal(format!("product {pi}")));

            // Features drawn along the ancestor path, weighted toward the
            // leaf (specific features more likely than generic ones), and
            // Zipf-skewed within each pool: a handful of generic features
            // end up on a large fraction of all products, giving BI Q2 its
            // heavy-tailed similarity-join costs (the paper's E1).
            let path = types.ancestors(leaf);
            let weights: Vec<f64> = path.iter().map(|&n| (types.depth_of(n) + 1) as f64).collect();
            let pool_zipf = Zipf::new(fpt.max(1), 1.0);
            let mut picked = Vec::with_capacity(config.features_per_product);
            let mut price = 100.0 + (leaf % 50) as f64;
            for _ in 0..config.features_per_product {
                let node = path[weighted_index(&weights, &mut rng)];
                let pool = pool_of(node);
                let f = pool[pool_zipf.sample(&mut rng)];
                if picked.contains(&f) {
                    continue;
                }
                picked.push(f);
                b.insert(product.clone(), has_feature.clone(), Term::iri(schema::feature(f)));
                // Premium features (every 7th) raise the price.
                price += if f % 7 == 0 { 120.0 } else { 15.0 };
            }
            price += rng.gen_range(0.0..30.0);
            b.insert(
                product.clone(),
                price_p.clone(),
                Term::double((price * 100.0).round() / 100.0),
            );
        }

        // Offers.
        let mut rng = stream_rng(config.seed, "bsbm-offers");
        let offer_product = Term::iri(schema::OFFER_PRODUCT);
        let offer_vendor = Term::iri(schema::OFFER_VENDOR);
        let offer_price = Term::iri(schema::OFFER_PRICE);
        let mut offer_id = 0;
        for pi in 0..config.products {
            let n = rng.gen_range(0..=config.offers_per_product * 2);
            for _ in 0..n {
                let offer = Term::iri(schema::offer(offer_id));
                offer_id += 1;
                b.insert(offer.clone(), offer_product.clone(), Term::iri(schema::product(pi)));
                b.insert(
                    offer.clone(),
                    offer_vendor.clone(),
                    Term::iri(schema::vendor(rng.gen_range(0..config.vendors))),
                );
                b.insert(
                    offer,
                    offer_price.clone(),
                    Term::double(rng.gen_range(50.0..500.0_f64).round()),
                );
            }
        }

        // Reviews.
        let mut rng = stream_rng(config.seed, "bsbm-reviews");
        let review_for = Term::iri(schema::REVIEW_FOR);
        let rating_p = Term::iri(schema::RATING);
        let reviewer_p = Term::iri(schema::REVIEWER);
        let reviewer_pool = (config.products / 10).max(5);
        let mut review_id = 0;
        for pi in 0..config.products {
            let n = rng.gen_range(0..=config.reviews_per_product * 2);
            for _ in 0..n {
                let review = Term::iri(schema::review(review_id));
                review_id += 1;
                b.insert(review.clone(), review_for.clone(), Term::iri(schema::product(pi)));
                b.insert(review.clone(), rating_p.clone(), Term::integer(rng.gen_range(1..=10)));
                b.insert(
                    review,
                    reviewer_p.clone(),
                    Term::iri(schema::person(rng.gen_range(0..reviewer_pool))),
                );
            }
        }

        Bsbm { dataset: b.freeze(), config, types }
    }

    /// IRIs of every product type (the Q4 parameter domain).
    pub fn type_iris(&self) -> Vec<Term> {
        (0..self.types.len()).map(|i| Term::iri(schema::product_type(i))).collect()
    }

    /// IRIs of every product (the Q2 parameter domain).
    pub fn product_iris(&self) -> Vec<Term> {
        (0..self.config.products).map(schema::product).map(Term::iri).collect()
    }

    /// BI Q2: the ten products most similar to `%product`
    /// (shared-feature count).
    pub fn q2_similar_products() -> QueryTemplate {
        QueryTemplate::parse(
            "BSBM-BI-Q2",
            &format!(
                "SELECT ?other (COUNT(?f) AS ?shared) WHERE {{ \
                   %product <{pf}> ?f . \
                   ?other <{pf}> ?f . \
                   FILTER(?other != %product) \
                 }} GROUP BY ?other ORDER BY DESC(?shared) LIMIT 10",
                pf = schema::PRODUCT_FEATURE
            ),
        )
        .expect("static template parses")
    }

    /// BI Q4 (engine-subset variant): per-feature average price over the
    /// products of `%type`, highest first. The parameter (`ProductType`)
    /// plays the paper's role: its position in the hierarchy dictates how
    /// much data the query touches.
    pub fn q4_feature_price_by_type() -> QueryTemplate {
        QueryTemplate::parse(
            "BSBM-BI-Q4",
            &format!(
                "SELECT ?f (AVG(?price) AS ?avgPrice) (COUNT(?p) AS ?cnt) WHERE {{ \
                   ?p <{ty}> %type . \
                   ?p <{pf}> ?f . \
                   ?p <{pr}> ?price \
                 }} GROUP BY ?f ORDER BY DESC(?avgPrice) LIMIT 10",
                ty = schema::RDF_TYPE,
                pf = schema::PRODUCT_FEATURE,
                pr = schema::PRICE
            ),
        )
        .expect("static template parses")
    }

    /// Explore-style template: the products of `%type`, cheapest first —
    /// a pure ORDER BY + LIMIT query (no aggregation). This is the
    /// streaming TopK case: the engine keeps only the ten best rows in a
    /// bounded heap instead of materializing and sorting every product of
    /// the type.
    pub fn q_cheapest_products_of_type() -> QueryTemplate {
        QueryTemplate::parse(
            "BSBM-CHEAPEST",
            &format!(
                "SELECT ?p ?price WHERE {{ \
                   ?p <{ty}> %type . \
                   ?p <{pr}> ?price \
                 }} ORDER BY ASC(?price) LIMIT 10",
                ty = schema::RDF_TYPE,
                pr = schema::PRICE
            ),
        )
        .expect("static template parses")
    }

    /// Catalog listing: every product of `%type` with its price, in
    /// product-IRI order — the ORDER-BY-matching-index template: the type
    /// scan already delivers products sorted (value-ordered dictionary +
    /// POS index), so the order-aware engine executes it with the sort
    /// provably skipped (`ExecStats::sorted_rows == 0`).
    pub fn q_catalog_of_type() -> QueryTemplate {
        QueryTemplate::parse(
            "BSBM-CATALOG",
            &format!(
                "SELECT ?p ?price WHERE {{ \
                   ?p <{ty}> %type . \
                   ?p <{pr}> ?price \
                 }} ORDER BY ASC(?p)",
                ty = schema::RDF_TYPE,
                pr = schema::PRICE
            ),
        )
        .expect("static template parses")
    }

    /// Extra BI-style template: average review rating of `%type` products.
    pub fn q_rating_by_type() -> QueryTemplate {
        QueryTemplate::parse(
            "BSBM-RATING",
            &format!(
                "SELECT (AVG(?rating) AS ?avgRating) (COUNT(?rev) AS ?n) WHERE {{ \
                   ?p <{ty}> %type . \
                   ?rev <{rf}> ?p . \
                   ?rev <{rt}> ?rating \
                 }}",
                ty = schema::RDF_TYPE,
                rf = schema::REVIEW_FOR,
                rt = schema::RATING
            ),
        )
        .expect("static template parses")
    }

    /// Extra template with two correlated parameters: products of `%type`
    /// carrying `%feature` and their offers — the two-parameter analogue of
    /// the paper's intro example (type and feature are correlated by
    /// construction).
    pub fn q_type_feature_offers() -> QueryTemplate {
        QueryTemplate::parse(
            "BSBM-TYPE-FEATURE",
            &format!(
                "SELECT ?p (MIN(?op) AS ?bestPrice) WHERE {{ \
                   ?p <{ty}> %type . \
                   ?p <{pf}> %feature . \
                   ?o <{opd}> ?p . \
                   ?o <{opr}> ?op \
                 }} GROUP BY ?p ORDER BY ASC(?bestPrice) LIMIT 5",
                ty = schema::RDF_TYPE,
                pf = schema::PRODUCT_FEATURE,
                opd = schema::OFFER_PRODUCT,
                opr = schema::OFFER_PRICE
            ),
        )
        .expect("static template parses")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parambench_sparql::engine::Engine;
    use parambench_sparql::template::Binding;

    fn small() -> Bsbm {
        Bsbm::generate(BsbmConfig {
            products: 300,
            type_depth: 3,
            type_branching: 2,
            ..Default::default()
        })
    }

    #[test]
    fn type_tree_shape() {
        let t = TypeTree::build(3, 2);
        assert_eq!(t.len(), 1 + 2 + 4 + 8);
        assert_eq!(t.leaves().len(), 8);
        let leaf = t.leaves()[0];
        let anc = t.ancestors(leaf);
        assert_eq!(anc.len(), 4);
        assert_eq!(*anc.last().unwrap(), 0);
        assert_eq!(t.depth_of(0), 0);
        assert_eq!(t.depth_of(leaf), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.dataset.len(), b.dataset.len());
    }

    #[test]
    fn root_type_covers_all_products() {
        let g = small();
        let rdf_type = g.dataset.lookup(&Term::iri(schema::RDF_TYPE)).unwrap();
        let root = g.dataset.lookup(&Term::iri(schema::product_type(0))).unwrap();
        let n = g.dataset.count([None, Some(rdf_type), Some(root)]);
        assert_eq!(n, g.config.products, "every product is typed with the root");
        // A leaf type covers far fewer.
        let leaf = *g.types.leaves().last().unwrap();
        let leaf_id = g.dataset.lookup(&Term::iri(schema::product_type(leaf))).unwrap();
        let leaf_n = g.dataset.count([None, Some(rdf_type), Some(leaf_id)]);
        assert!(leaf_n < n / 2, "leaf {leaf_n} vs root {n}");
    }

    #[test]
    fn q4_runtime_scales_with_type_generality() {
        let g = small();
        let engine = Engine::new(&g.dataset);
        let t = Bsbm::q4_feature_price_by_type();
        let root = Binding::new().with("type", Term::iri(schema::product_type(0)));
        let leaf = Binding::new()
            .with("type", Term::iri(schema::product_type(*g.types.leaves().last().unwrap())));
        let out_root = engine.run_template(&t, &root).unwrap();
        let out_leaf = engine.run_template(&t, &leaf).unwrap();
        assert!(
            out_root.cout > out_leaf.cout * 2,
            "root cout {} should dwarf leaf cout {}",
            out_root.cout,
            out_leaf.cout
        );
    }

    #[test]
    fn q2_returns_similar_products() {
        let g = small();
        let engine = Engine::new(&g.dataset);
        let t = Bsbm::q2_similar_products();
        let b = Binding::new().with("product", Term::iri(schema::product(0)));
        let out = engine.run_template(&t, &b).unwrap();
        assert!(out.results.len() <= 10);
        assert!(!out.results.is_empty(), "some product shares a feature with product 0");
        // Sorted by shared count descending.
        let shared: Vec<f64> = out.results.rows.iter().map(|r| r[1].as_num().unwrap()).collect();
        assert!(shared.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn rating_template_runs() {
        let g = small();
        let engine = Engine::new(&g.dataset);
        let t = Bsbm::q_rating_by_type();
        let b = Binding::new().with("type", Term::iri(schema::product_type(0)));
        let out = engine.run_template(&t, &b).unwrap();
        assert_eq!(out.results.len(), 1);
        let avg = out.results.rows[0][0].as_num().unwrap();
        assert!((1.0..=10.0).contains(&avg), "avg rating {avg}");
    }

    #[test]
    fn domains_exist_in_dataset() {
        let g = small();
        for t in g.type_iris() {
            assert!(g.dataset.lookup(&t).is_some(), "{t} missing");
        }
        for p in g.product_iris().iter().take(20) {
            assert!(g.dataset.lookup(p).is_some());
        }
    }
}
