//! Error type for the query engine.
//!
//! All query-shape problems (parse errors, unknown variables, unsupported
//! constructs, unbound `%parameters`, invalid modifier combinations) are
//! raised at parse or prepare time; in-memory execution itself never fails
//! — a missing constant just yields an empty scan. This split is what lets
//! the curation pipeline probe thousands of candidate bindings cheaply
//! without running them. The one execution-time failure class is
//! out-of-core spilling ([`crate::spill`]): a temp-dir or run-file I/O
//! problem surfaces as a typed [`ExecError`], never a panic.

use std::fmt;
use std::path::PathBuf;

/// A runtime failure of the out-of-core execution layer (spill directory
/// creation, run-file writes/reads). Carries the operation, the path and
/// the rendered I/O error (`std::io::Error` is not `Clone`, so the message
/// is captured as text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// What the engine was doing (e.g. `"create spill dir"`).
    pub op: &'static str,
    /// The file or directory involved.
    pub path: PathBuf,
    /// The underlying I/O error, rendered.
    pub message: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.op, self.path.display(), self.message)
    }
}

impl std::error::Error for ExecError {}

/// Errors raised while parsing, planning or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Query text could not be parsed.
    Parse(String),
    /// A template was planned/executed with unsubstituted parameters.
    UnboundParameter(String),
    /// A projection, order key or filter references an unknown variable.
    UnknownVariable(String),
    /// Query shape not supported by the engine (documented subset).
    Unsupported(String),
    /// Instantiation was given a binding for a parameter the template lacks,
    /// or lacked a binding for one it has.
    BindingMismatch(String),
    /// Out-of-core execution failed (spill I/O).
    Exec(ExecError),
    /// Opening a persisted store snapshot failed (missing file, foreign
    /// bytes, checksum mismatch — see [`parambench_rdf::SnapshotError`]).
    Snapshot(parambench_rdf::SnapshotError),
}

impl From<ExecError> for QueryError {
    fn from(e: ExecError) -> Self {
        QueryError::Exec(e)
    }
}

impl From<parambench_rdf::SnapshotError> for QueryError {
    fn from(e: parambench_rdf::SnapshotError) -> Self {
        QueryError::Snapshot(e)
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
            QueryError::UnboundParameter(p) => write!(f, "unbound parameter %{p}"),
            QueryError::UnknownVariable(v) => write!(f, "unknown variable ?{v}"),
            QueryError::Unsupported(msg) => write!(f, "unsupported query shape: {msg}"),
            QueryError::BindingMismatch(msg) => write!(f, "binding mismatch: {msg}"),
            QueryError::Exec(e) => write!(f, "execution error: {e}"),
            QueryError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}
