//! Workload execution and measurement.
//!
//! Runs a list of parameter bindings against a template and records, per
//! run: wall-clock time, measured `Cout` (sum of join output cardinalities)
//! and the executed plan's signature. These measurements feed every
//! experiment table (E1–E3), the §III correlation (C1) and the P1–P3
//! validation.

use parambench_sparql::engine::Engine;
use parambench_sparql::plan::PlanSignature;
use parambench_sparql::template::{Binding, QueryTemplate};
use parambench_sparql::ExecConfig;

use crate::error::CurationError;

/// One executed query instance.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The parameter binding used.
    pub binding: Binding,
    /// Wall-clock execution time in milliseconds.
    pub millis: f64,
    /// Measured `Cout` (total intermediate join tuples).
    pub cout: u64,
    /// Peak intermediate tuples resident at once during execution — the
    /// memory-side companion of `Cout` (streaming keeps it near the hash
    /// build sides; materialized execution near `Cout` itself).
    pub peak_tuples: u64,
    /// Estimated `Cout` the optimizer predicted.
    pub est_cout: f64,
    /// Result rows returned.
    pub rows: usize,
    /// Signature of the executed plan.
    pub signature: PlanSignature,
}

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Untimed warm-up executions before the measured run (amortizes
    /// allocator/cache effects like a real benchmark driver would).
    pub warmup: usize,
    /// Worker-pool size for morsel-driven parallel execution. Defaults to
    /// the machine's available parallelism. Measured `Cout`, rows and row
    /// order are identical at any value (the engine's determinism
    /// guarantee); only wall-clock measurements change.
    pub threads: usize,
    /// Out-of-core memory budget (resident rows for GROUP BY accumulators
    /// and LIMIT-less sorts; `None` = unlimited). Defaults to the
    /// `SPARQL_MEM_BUDGET_ROWS` environment override. Like `threads`,
    /// this knob cannot change measured `Cout`, rows or row order — only
    /// wall time and spill volume.
    pub mem_budget_rows: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup: 0,
            threads: parambench_sparql::available_parallelism(),
            mem_budget_rows: parambench_sparql::env_mem_budget_rows(),
        }
    }
}

/// Runs every binding once (after `warmup` untimed runs each) and collects
/// measurements in input order.
pub fn run_workload(
    engine: &Engine<'_>,
    template: &QueryTemplate,
    bindings: &[Binding],
    config: &RunConfig,
) -> Result<Vec<Measurement>, CurationError> {
    let exec = ExecConfig {
        threads: config.threads.max(1),
        mem_budget_rows: config.mem_budget_rows,
        ..engine.exec_config()
    };
    let mut out = Vec::with_capacity(bindings.len());
    for b in bindings {
        let prepared = engine.prepare_template(template, b)?;
        for _ in 0..config.warmup {
            let _ = engine.execute_with(&prepared, &exec)?;
        }
        let result = engine.execute_with(&prepared, &exec)?;
        out.push(Measurement {
            binding: b.clone(),
            millis: result.wall_time.as_secs_f64() * 1e3,
            cout: result.cout,
            peak_tuples: result.stats.peak_tuples,
            est_cout: prepared.est_cout,
            rows: result.results.len(),
            signature: prepared.signature,
        });
    }
    Ok(out)
}

/// Wall-clock runtimes (ms) of a measurement batch.
pub fn runtimes_ms(measurements: &[Measurement]) -> Vec<f64> {
    measurements.iter().map(|m| m.millis).collect()
}

/// Measured `Cout` values of a batch (deterministic runtime proxy).
pub fn couts(measurements: &[Measurement]) -> Vec<f64> {
    measurements.iter().map(|m| m.cout as f64).collect()
}

/// Peak intermediate-tuple counts of a batch (deterministic memory proxy).
pub fn peaks(measurements: &[Measurement]) -> Vec<f64> {
    measurements.iter().map(|m| m.peak_tuples as f64).collect()
}

/// The metric a validation or experiment aggregates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Wall-clock milliseconds — what the paper reports, noisy on shared
    /// hardware.
    WallMillis,
    /// Measured `Cout` — the paper's runtime proxy (≈85% Pearson), exactly
    /// reproducible; used by deterministic tests.
    Cout,
    /// Peak intermediate tuples resident at once — the memory-side metric
    /// the streaming executor minimizes; also exactly reproducible.
    PeakTuples,
}

impl Metric {
    /// Extracts the metric series from measurements.
    pub fn series(self, measurements: &[Measurement]) -> Vec<f64> {
        match self {
            Metric::WallMillis => runtimes_ms(measurements),
            Metric::Cout => couts(measurements),
            Metric::PeakTuples => peaks(measurements),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parambench_rdf::store::StoreBuilder;
    use parambench_rdf::term::Term;

    fn data() -> parambench_rdf::store::Dataset {
        let mut b = StoreBuilder::new();
        for i in 0..50 {
            b.insert(
                Term::iri(format!("s/{i}")),
                Term::iri("p"),
                Term::iri(format!("o/{}", i % 5)),
            );
            b.insert(Term::iri(format!("s/{i}")), Term::iri("q"), Term::integer(i as i64));
        }
        b.freeze()
    }

    #[test]
    fn measurements_align_with_bindings() {
        let ds = data();
        let engine = Engine::new(&ds);
        let t = QueryTemplate::parse("t", "SELECT ?s ?v WHERE { ?s <p> %o . ?s <q> ?v }").unwrap();
        let bindings: Vec<Binding> =
            (0..5).map(|i| Binding::new().with("o", Term::iri(format!("o/{i}")))).collect();
        let ms = run_workload(&engine, &t, &bindings, &RunConfig::default()).unwrap();
        assert_eq!(ms.len(), 5);
        for (m, b) in ms.iter().zip(&bindings) {
            assert_eq!(&m.binding, b);
            assert_eq!(m.rows, 10);
            assert!(m.millis >= 0.0);
            assert!(m.peak_tuples > 0, "executions hold at least one tuple");
        }
        // Cout and peak tuples are deterministic across repeated runs.
        let again =
            run_workload(&engine, &t, &bindings, &RunConfig { warmup: 1, ..Default::default() })
                .unwrap();
        assert_eq!(couts(&ms), couts(&again));
        assert_eq!(peaks(&ms), peaks(&again));
    }

    #[test]
    fn metric_series_shapes() {
        let ds = data();
        let engine = Engine::new(&ds);
        let t = QueryTemplate::parse("t", "SELECT ?s WHERE { ?s <p> %o }").unwrap();
        let bindings = vec![Binding::new().with("o", Term::iri("o/0"))];
        let ms = run_workload(&engine, &t, &bindings, &RunConfig::default()).unwrap();
        assert_eq!(Metric::WallMillis.series(&ms).len(), 1);
        assert_eq!(Metric::Cout.series(&ms).len(), 1);
        assert_eq!(Metric::PeakTuples.series(&ms).len(), 1);
    }

    #[test]
    fn bad_binding_is_reported() {
        let ds = data();
        let engine = Engine::new(&ds);
        let t = QueryTemplate::parse("t", "SELECT ?s WHERE { ?s <p> %o }").unwrap();
        let bad = vec![Binding::new().with("wrong", Term::iri("o/0"))];
        assert!(run_workload(&engine, &t, &bad, &RunConfig::default()).is_err());
    }
}
