//! Mann–Whitney U test (Wilcoxon rank-sum).
//!
//! A robust alternative to the two-sample KS test for the P2 stability
//! check: runtime distributions are heavy-tailed, and rank statistics are
//! insensitive to the tail magnitudes that dominate KS on small samples.
//! Uses the normal approximation with tie correction (adequate for the
//! benchmark's n ≥ 20 samples).

use crate::correlation::ranks;
use crate::normal::std_normal_cdf;

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitneyResult {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Two-sided p-value (normal approximation, tie-corrected).
    pub p_value: f64,
    /// Common-language effect size `U / (n·m)` — the probability that a
    /// random element of `a` exceeds a random element of `b` (0.5 = none).
    pub effect: f64,
}

/// Two-sided Mann–Whitney U test of `a` vs `b`.
///
/// Returns `None` if either sample is empty or both are entirely constant
/// and equal (no ordering information).
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MannWhitneyResult> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let n = a.len() as f64;
    let m = b.len() as f64;
    let pooled: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    let r = ranks(&pooled);
    let ra: f64 = r[..a.len()].iter().sum();
    let u = ra - n * (n + 1.0) / 2.0;

    // Tie correction for the variance.
    let mut sorted = pooled.clone();
    sorted.sort_unstable_by(|x, y| x.partial_cmp(y).expect("finite samples"));
    let total = n + m;
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let var = n * m / 12.0 * (total + 1.0 - tie_term / (total * (total - 1.0)));
    if var <= 0.0 {
        // All observations identical: distributions indistinguishable.
        return Some(MannWhitneyResult { u, p_value: 1.0, effect: 0.5 });
    }
    let mean_u = n * m / 2.0;
    // Continuity correction.
    let z = (u - mean_u - 0.5 * (u - mean_u).signum()) / var.sqrt();
    let p = 2.0 * (1.0 - std_normal_cdf(z.abs()));
    Some(MannWhitneyResult { u, p_value: p.clamp(0.0, 1.0), effect: u / (n * m) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_indistinct() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
        assert!((r.effect - 0.5).abs() < 0.01);
    }

    #[test]
    fn shifted_samples_are_detected() {
        let a: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| i as f64 + 100.0).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert!(r.effect < 0.05, "effect = {}", r.effect);
    }

    #[test]
    fn symmetric_in_direction() {
        let a: Vec<f64> = (0..30).map(|i| (i * 7 % 13) as f64).collect();
        let b: Vec<f64> = (0..25).map(|i| (i * 5 % 11) as f64 + 0.3).collect();
        let ab = mann_whitney_u(&a, &b).unwrap();
        let ba = mann_whitney_u(&b, &a).unwrap();
        assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        assert!((ab.effect + ba.effect - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_equal_samples() {
        let a = vec![5.0; 20];
        let r = mann_whitney_u(&a, &a).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.effect, 0.5);
    }

    #[test]
    fn empty_is_none() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
    }

    #[test]
    fn small_shift_weaker_than_large_shift() {
        let a: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let small: Vec<f64> = a.iter().map(|x| x + 3.0).collect();
        let large: Vec<f64> = a.iter().map(|x| x + 60.0).collect();
        let ps = mann_whitney_u(&a, &small).unwrap().p_value;
        let pl = mann_whitney_u(&a, &large).unwrap().p_value;
        assert!(pl < ps, "{pl} vs {ps}");
    }
}
