//! Bootstrap confidence intervals for benchmark aggregates.
//!
//! The paper's E2 compares *point* aggregates (mean, median, percentiles)
//! between independently drawn binding groups. Bootstrap intervals make the
//! same comparison honest: two groups "agree" when their aggregate
//! intervals overlap, and the uniform-sampling instability shows up as
//! wide, non-overlapping intervals. Deterministic via an explicit seed
//! (xorshift resampling — no external RNG dependency for this crate).

/// A two-sided confidence interval for a sample statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    pub lo: f64,
    pub hi: f64,
    /// The statistic on the original (non-resampled) sample.
    pub point: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True when the two intervals share any point.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// * `data` — the sample (must be non-empty),
/// * `statistic` — a function of a sample (mean, median, q95, …),
/// * `resamples` — bootstrap iterations (≥ 100 recommended),
/// * `confidence` — e.g. 0.95,
/// * `seed` — determinism handle.
pub fn bootstrap_ci(
    data: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Option<ConfidenceInterval> {
    if data.is_empty() || resamples == 0 || !(0.0..1.0).contains(&confidence) {
        return None;
    }
    let point = statistic(data);
    let mut state = seed | 1; // xorshift must not start at 0
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; data.len()];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            *slot = data[(r % data.len() as u64) as usize];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite statistic"));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((stats.len() as f64) * alpha).floor() as usize;
    let hi_idx = (((stats.len() as f64) * (1.0 - alpha)).ceil() as usize).min(stats.len()) - 1;
    Some(ConfidenceInterval { lo: stats[lo_idx], hi: stats[hi_idx.max(lo_idx)], point })
}

/// Convenience: bootstrap CI of the mean.
pub fn bootstrap_mean_ci(
    data: &[f64],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Option<ConfidenceInterval> {
    bootstrap_ci(data, |s| s.iter().sum::<f64>() / s.len() as f64, resamples, confidence, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_point_for_smooth_statistics() {
        let data: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
        let ci = bootstrap_mean_ci(&data, 300, 0.95, 42).unwrap();
        assert!(ci.lo <= ci.point && ci.point <= ci.hi, "{ci:?}");
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn constant_data_gives_degenerate_interval() {
        let data = vec![7.0; 50];
        let ci = bootstrap_mean_ci(&data, 200, 0.95, 1).unwrap();
        assert_eq!(ci.lo, 7.0);
        assert_eq!(ci.hi, 7.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let data: Vec<f64> = (0..100).map(|i| (i * i % 31) as f64).collect();
        let a = bootstrap_mean_ci(&data, 200, 0.9, 5).unwrap();
        let b = bootstrap_mean_ci(&data, 200, 0.9, 5).unwrap();
        let c = bootstrap_mean_ci(&data, 200, 0.9, 6).unwrap();
        assert_eq!(a, b);
        assert!(a != c || a.width() == 0.0);
    }

    #[test]
    fn wider_confidence_wider_interval() {
        let data: Vec<f64> = (0..150).map(|i| ((i * 13) % 47) as f64).collect();
        let narrow = bootstrap_mean_ci(&data, 400, 0.5, 3).unwrap();
        let wide = bootstrap_mean_ci(&data, 400, 0.99, 3).unwrap();
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn disjoint_populations_have_disjoint_intervals() {
        let a: Vec<f64> = (0..80).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..80).map(|i| (i % 10) as f64 + 100.0).collect();
        let ca = bootstrap_mean_ci(&a, 300, 0.95, 11).unwrap();
        let cb = bootstrap_mean_ci(&b, 300, 0.95, 11).unwrap();
        assert!(!ca.overlaps(&cb));
        assert!(ca.overlaps(&ca));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(bootstrap_mean_ci(&[], 100, 0.95, 1).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0, 0.95, 1).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 1.5, 1).is_none());
    }

    #[test]
    fn works_with_median_statistic() {
        let mut data: Vec<f64> = (0..99).map(|i| i as f64).collect();
        data.push(1e9); // outlier barely moves the median CI
        let median = |s: &[f64]| {
            let mut v = s.to_vec();
            v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let ci = bootstrap_ci(&data, median, 300, 0.95, 2).unwrap();
        assert!(ci.hi < 1e6, "median CI should resist the outlier: {ci:?}");
    }
}
