//! E2 — "Sampling is not stable".
//!
//! Paper table (LDBC Q2, 4 independent groups of 100 bindings):
//!
//! ```text
//! Time     Group 1   Group 2   Group 3   Group 4
//! q10      0.14 s    0.07 s    0.08 s    0.09 s
//! Median   1.33 s    0.75 s    0.78 s    1.04 s
//! q90      4.18 s    3.41 s    3.63 s    3.07 s
//! Average  1.80 s    1.33 s    1.53 s    1.30 s
//! ```
//!
//! plus: average deviates up to 40%, percentiles/median up to 100%; for
//! BSBM-BI Q2, mean differs up to 15% and median up to 25% between groups.

use parambench_bench::{bsbm, fmt_ms, header, row, snb};
use parambench_core::{run_workload, Metric, ParameterDomain, RunConfig};
use parambench_datagen::{Bsbm, Snb};
use parambench_sparql::Engine;
use parambench_stats::{bootstrap_mean_ci, relative_spread, Summary};

const GROUPS: u64 = 4;
const GROUP_SIZE: usize = 100;

fn run_groups(
    engine: &Engine<'_>,
    template: &parambench_sparql::QueryTemplate,
    domain: &ParameterDomain,
    seed0: u64,
) -> Vec<(Summary, Summary)> {
    let run_cfg = RunConfig { warmup: 0, ..Default::default() };
    (0..GROUPS)
        .map(|g| {
            let bindings = domain.sample_uniform(GROUP_SIZE, seed0 + g);
            let ms = run_workload(engine, template, &bindings, &run_cfg).expect("workload");
            (
                Summary::new(&Metric::WallMillis.series(&ms)).expect("summary"),
                Summary::new(&Metric::Cout.series(&ms)).expect("summary"),
            )
        })
        .collect()
}

fn print_table(groups: &[(Summary, Summary)]) {
    let cells = |f: &dyn Fn(&Summary) -> f64| -> String {
        groups.iter().map(|(w, _)| format!("{:>10}", fmt_ms(f(w)))).collect::<String>()
    };
    println!(
        "time     {}",
        (1..=GROUPS).map(|g| format!("{:>10}", format!("group {g}"))).collect::<String>()
    );
    println!("q10      {}", cells(&|s| s.quantile(0.1)));
    println!("median   {}", cells(&|s| s.median()));
    println!("q90      {}", cells(&|s| s.quantile(0.9)));
    println!("average  {}", cells(&|s| s.mean()));
    // Bootstrap 95% CIs of the group means: non-overlap between groups is
    // the statistically honest form of the paper's "deviation up to 40%".
    let cis: Vec<String> = groups
        .iter()
        .enumerate()
        .map(|(g, (w, _))| match bootstrap_mean_ci(w.sorted(), 300, 0.95, 77 + g as u64) {
            Some(ci) => format!("[{}, {}]", fmt_ms(ci.lo), fmt_ms(ci.hi)),
            None => "n/a".to_string(),
        })
        .collect();
    println!("mean 95% CI  {}", cis.join("  "));
}

fn spreads(groups: &[(Summary, Summary)]) -> (f64, f64, f64) {
    let wall_means: Vec<f64> = groups.iter().map(|(w, _)| w.mean()).collect();
    let wall_medians: Vec<f64> = groups.iter().map(|(w, _)| w.median()).collect();
    let cout_means: Vec<f64> = groups.iter().map(|(_, c)| c.mean()).collect();
    (relative_spread(&wall_means), relative_spread(&wall_medians), relative_spread(&cout_means))
}

fn main() {
    // --- E2a: LDBC Q2. ---
    let social = snb();
    println!(
        "SNB-like dataset: {} triples, {} persons",
        social.dataset.len(),
        social.config.persons
    );
    let engine = Engine::new(&social.dataset);
    header("E2a: LDBC Q2, 4 independent groups x 100 uniform %person bindings");
    let domain = ParameterDomain::single("person", social.person_iris());
    let groups = run_groups(&engine, &Snb::q2_friend_posts(), &domain, 100);
    print_table(&groups);
    let (avg_dev, med_dev, cout_dev) = spreads(&groups);
    println!();
    row("paper: average deviation", "up to 40%");
    row("measured: average deviation (wall)", format!("{:.0}%", avg_dev * 100.0));
    row("measured: median deviation (wall)", format!("{:.0}%", med_dev * 100.0));
    row("measured: average deviation (Cout)", format!("{:.0}%", cout_dev * 100.0));
    row(
        "shape check (avg dev >= 10% expected)",
        if avg_dev.max(cout_dev) >= 0.10 { "REPRODUCED" } else { "NOT reproduced" },
    );

    // --- E2b: BSBM-BI Q2. ---
    let catalog = bsbm();
    let engine = Engine::new(&catalog.dataset);
    header("E2b: BSBM-BI Q2, 4 independent groups x 100 uniform %product bindings");
    let domain = ParameterDomain::single("product", catalog.product_iris());
    let groups = run_groups(&engine, &Bsbm::q2_similar_products(), &domain, 200);
    print_table(&groups);
    let (avg_dev, med_dev, cout_dev) = spreads(&groups);
    println!();
    row("paper: mean diff / median diff", "up to 15% / up to 25%");
    row("measured: mean diff (wall)", format!("{:.0}%", avg_dev * 100.0));
    row("measured: median diff (wall)", format!("{:.0}%", med_dev * 100.0));
    row("measured: mean diff (Cout)", format!("{:.0}%", cout_dev * 100.0));
    row(
        "shape check (mean diff >= 5% expected)",
        if avg_dev.max(cout_dev) >= 0.05 { "REPRODUCED" } else { "NOT reproduced" },
    );
}
