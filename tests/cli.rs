//! Black-box tests of the `parambench` CLI binary: generate → query →
//! curate round trip through real process invocations.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parambench"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = bin().output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn templates_lists_workloads() {
    let out = bin().arg("templates").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["bsbm", "snb", "lubm", "%type", "%person"] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
}

#[test]
fn generate_then_query_round_trip() {
    let dir = std::env::temp_dir().join(format!("parambench-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.nt");

    let out = bin()
        .args(["generate", "bsbm", "--triples", "8000", "--out"])
        .arg(&data)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(data.exists());

    let out = bin()
        .arg("query")
        .arg(&data)
        .args([
            "--text",
            "SELECT (COUNT(?p) AS ?n) WHERE { ?p <http://bsbm.example/price> ?x }",
            "--explain",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("signature:"), "{stdout}");
    assert!(stdout.contains('n'), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn curate_prints_classes() {
    let out = bin()
        .args(["curate", "bsbm", "q4", "--triples", "15000", "--epsilon", "1.0"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("class  0:"), "{stdout}");
    assert!(stdout.contains("sample from class 0:"), "{stdout}");
}

#[test]
fn unknown_workload_is_reported() {
    let out = bin().args(["curate", "bsbm", "nope"]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown workload"), "{stderr}");
}
