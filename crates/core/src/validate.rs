//! P1–P3 validation of parameter classes.
//!
//! The paper's §I requirements for a useful parameter-selection scheme:
//!
//! * **P1** — bounded variance: "the average runtime should correspond to
//!   the behavior of the majority of the queries". Checked as a bound on
//!   the coefficient of variation of the per-class metric.
//! * **P2** — stable distribution: "a different sample of 100 parameter
//!   bindings should result in an identical runtime distribution". Checked
//!   by a two-sample Kolmogorov–Smirnov test between two independently
//!   drawn within-class samples.
//! * **P3** — plan stability: "the query plan for all the parameters is the
//!   same". Checked by counting distinct executed-plan signatures.
//!
//! Validation runs real queries (not estimates), so it is the expensive,
//! honest check that the cheap plan/cost clustering actually delivered the
//! promised runtime behaviour.

use parambench_sparql::engine::Engine;
use parambench_stats::ks::ks_two_sample;
use parambench_stats::mannwhitney::mann_whitney_u;
use parambench_stats::summary::Summary;

use crate::curation::CuratedWorkload;
use crate::error::CurationError;
use crate::workload::{run_workload, Metric, RunConfig};

/// The statistical test backing the P2 stability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StabilityTest {
    /// Two-sample Kolmogorov–Smirnov (the paper's distribution-distance
    /// view; sensitive everywhere, including the tails).
    #[default]
    KolmogorovSmirnov,
    /// Mann–Whitney U rank-sum (robust to the heavy tails of runtime
    /// distributions; tests location shift rather than the full shape).
    MannWhitney,
}

/// Validation configuration.
#[derive(Debug, Clone, Copy)]
pub struct ValidationConfig {
    /// Bindings per independent sample (the paper uses 100).
    pub sample_size: usize,
    /// Metric to validate on (wall time for reports, `Cout` for
    /// deterministic CI).
    pub metric: Metric,
    /// P1 bound on the coefficient of variation.
    pub cv_bound: f64,
    /// P2 significance level: a p-value below this rejects stability.
    pub ks_alpha: f64,
    /// Which two-sample test implements P2.
    pub stability_test: StabilityTest,
    /// Seed for the two independent samples.
    pub seed: u64,
    /// Warm-up executions per binding.
    pub warmup: usize,
    /// Worker threads for the validation runs (default: available
    /// parallelism). Keep it equal to the measured workload's thread count
    /// so wall-time validation sees the same execution it validates.
    pub threads: usize,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            sample_size: 50,
            metric: Metric::Cout,
            cv_bound: 0.5,
            ks_alpha: 0.05,
            stability_test: StabilityTest::KolmogorovSmirnov,
            seed: 42,
            warmup: 0,
            threads: parambench_sparql::available_parallelism(),
        }
    }
}

/// Validation verdict for one parameter class.
#[derive(Debug, Clone)]
pub struct ClassValidation {
    /// The validated class id.
    pub class_id: usize,
    /// Metric summary over both samples pooled.
    pub summary: Summary,
    /// P1: coefficient of variation of the pooled metric.
    pub p1_cv: f64,
    /// P1 verdict.
    pub p1_ok: bool,
    /// P2: KS p-value between the two independent samples (None when a
    /// sample was degenerate — trivially stable).
    pub p2_ks_p: Option<f64>,
    /// P2 verdict.
    pub p2_ok: bool,
    /// P3: number of distinct executed plan signatures.
    pub p3_distinct_plans: usize,
    /// P3 verdict.
    pub p3_ok: bool,
}

impl ClassValidation {
    /// True when all three properties hold.
    pub fn all_ok(&self) -> bool {
        self.p1_ok && self.p2_ok && self.p3_ok
    }
}

/// Validates every class of a curated workload.
pub fn validate_workload(
    engine: &Engine<'_>,
    workload: &CuratedWorkload,
    config: &ValidationConfig,
) -> Result<Vec<ClassValidation>, CurationError> {
    let mut out = Vec::with_capacity(workload.classes().len());
    for class in workload.classes() {
        out.push(validate_class(engine, workload, class.id, config)?);
    }
    Ok(out)
}

/// Validates one class: draws two independent samples, executes both,
/// checks P1 on the pooled metric, P2 across the samples, P3 on signatures.
pub fn validate_class(
    engine: &Engine<'_>,
    workload: &CuratedWorkload,
    class_id: usize,
    config: &ValidationConfig,
) -> Result<ClassValidation, CurationError> {
    let run_cfg =
        RunConfig { warmup: config.warmup, threads: config.threads, ..RunConfig::default() };
    let sample_a = workload.sample_class(class_id, config.sample_size, config.seed)?;
    let sample_b =
        workload.sample_class(class_id, config.sample_size, config.seed.wrapping_add(1))?;
    let meas_a = run_workload(engine, workload.template(), &sample_a, &run_cfg)?;
    let meas_b = run_workload(engine, workload.template(), &sample_b, &run_cfg)?;

    let series_a = config.metric.series(&meas_a);
    let series_b = config.metric.series(&meas_b);
    let pooled: Vec<f64> = series_a.iter().chain(series_b.iter()).copied().collect();
    let summary = Summary::new(&pooled)
        .ok_or_else(|| CurationError::EmptyDomain("no measurements".into()))?;

    let p1_cv = summary.coeff_of_variation();
    let p1_ok = p1_cv <= config.cv_bound;

    // A degenerate (constant) sample is trivially stable.
    let degenerate = series_a.windows(2).all(|w| w[0] == w[1])
        && series_b.windows(2).all(|w| w[0] == w[1])
        && series_a.first() == series_b.first();
    let (p2_ks_p, p2_ok) = if degenerate {
        (None, true)
    } else {
        let p = match config.stability_test {
            StabilityTest::KolmogorovSmirnov => {
                ks_two_sample(&series_a, &series_b).map(|r| r.p_value)
            }
            StabilityTest::MannWhitney => mann_whitney_u(&series_a, &series_b).map(|r| r.p_value),
        };
        match p {
            Some(p) => (Some(p), p >= config.ks_alpha),
            None => (None, true),
        }
    };

    let mut signatures: Vec<_> =
        meas_a.iter().chain(meas_b.iter()).map(|m| m.signature.clone()).collect();
    signatures.sort();
    signatures.dedup();
    let p3_distinct_plans = signatures.len();
    let p3_ok = p3_distinct_plans == 1;

    Ok(ClassValidation {
        class_id,
        summary,
        p1_cv,
        p1_ok,
        p2_ks_p,
        p2_ok,
        p3_distinct_plans,
        p3_ok,
    })
}

/// Renders validations as an aligned report table.
pub fn render_report(validations: &[ClassValidation]) -> String {
    let mut out = String::from(
        "class |   n  | median       | mean         | P1 cv   | P1 | P2 ks-p  | P2 | plans | P3\n",
    );
    for v in validations {
        out.push_str(&format!(
            "{:>5} | {:>4} | {:>12.2} | {:>12.2} | {:>7.3} | {} | {} | {} | {:>5} | {}\n",
            v.class_id,
            v.summary.len(),
            v.summary.median(),
            v.summary.mean(),
            v.p1_cv,
            tick(v.p1_ok),
            match v.p2_ks_p {
                Some(p) => format!("{p:>8.4}"),
                None => "   const".to_string(),
            },
            tick(v.p2_ok),
            v.p3_distinct_plans,
            tick(v.p3_ok),
        ));
    }
    out
}

fn tick(ok: bool) -> &'static str {
    if ok {
        "ok "
    } else {
        "FAIL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::curation::{curate, CurationConfig};
    use crate::domain::ParameterDomain;
    use parambench_rdf::store::StoreBuilder;
    use parambench_rdf::term::Term;
    use parambench_sparql::template::QueryTemplate;

    /// Two populations of types: "small" types with ~5 products each and
    /// "large" types with ~200 each. Within a class, behaviour is uniform.
    fn bimodal_dataset() -> parambench_rdf::store::Dataset {
        let mut b = StoreBuilder::new();
        let mut prod = 0;
        for ty in 0..10 {
            let count = if ty < 5 { 5 } else { 200 };
            for _ in 0..count {
                let p = Term::iri(format!("prod/{prod}"));
                prod += 1;
                b.insert(p.clone(), Term::iri("type"), Term::iri(format!("class/{ty}")));
                b.insert(p.clone(), Term::iri("feature"), Term::iri(format!("f/{}", prod % 13)));
                b.insert(p, Term::iri("price"), Term::integer((prod % 90) as i64));
            }
        }
        b.freeze()
    }

    fn template() -> QueryTemplate {
        QueryTemplate::parse(
            "t",
            "SELECT ?f (AVG(?price) AS ?a) WHERE { ?p <type> %type . ?p <feature> ?f . ?p <price> ?price } GROUP BY ?f",
        )
        .unwrap()
    }

    #[test]
    fn curated_classes_pass_p1_p2_p3_on_cout() {
        let ds = bimodal_dataset();
        let engine = Engine::new(&ds);
        let domain = ParameterDomain::from_objects(&ds, "type", &Term::iri("type")).unwrap();
        let workload = curate(
            &engine,
            &template(),
            &domain,
            &CurationConfig {
                cluster: ClusterConfig { epsilon: 1.0, min_class_size: 2 },
                ..Default::default()
            },
        )
        .unwrap();
        let cfg = ValidationConfig { sample_size: 20, ..Default::default() };
        let report = validate_workload(&engine, &workload, &cfg).unwrap();
        assert!(!report.is_empty());
        for v in &report {
            assert!(v.p1_ok, "P1 failed for class {}: cv={}", v.class_id, v.p1_cv);
            assert!(v.p2_ok, "P2 failed for class {}: p={:?}", v.class_id, v.p2_ks_p);
            assert!(v.p3_ok, "P3 failed for class {}: {} plans", v.class_id, v.p3_distinct_plans);
        }
        let text = render_report(&report);
        assert!(text.contains("class"));
    }

    #[test]
    fn mann_whitney_stability_test_also_passes() {
        let ds = bimodal_dataset();
        let engine = Engine::new(&ds);
        let domain = ParameterDomain::from_objects(&ds, "type", &Term::iri("type")).unwrap();
        let workload = curate(
            &engine,
            &template(),
            &domain,
            &CurationConfig {
                cluster: ClusterConfig { epsilon: 1.0, min_class_size: 2 },
                ..Default::default()
            },
        )
        .unwrap();
        let cfg = ValidationConfig {
            sample_size: 20,
            stability_test: StabilityTest::MannWhitney,
            ..Default::default()
        };
        let report = validate_workload(&engine, &workload, &cfg).unwrap();
        for v in &report {
            assert!(v.p2_ok, "MWU P2 failed for class {}: p={:?}", v.class_id, v.p2_ks_p);
        }
    }

    #[test]
    fn uniform_baseline_fails_p1_on_bimodal_data() {
        let ds = bimodal_dataset();
        let engine = Engine::new(&ds);
        let domain = ParameterDomain::from_objects(&ds, "type", &Term::iri("type")).unwrap();
        // Uniform sample across ALL types — the broken baseline.
        let bindings = domain.sample_uniform(40, 9);
        let ms = run_workload(&engine, &template(), &bindings, &RunConfig::default()).unwrap();
        let s = Summary::new(&Metric::Cout.series(&ms)).unwrap();
        assert!(
            s.coeff_of_variation() > 0.5,
            "uniform sampling over bimodal types should violate P1 (cv={})",
            s.coeff_of_variation()
        );
    }
}
