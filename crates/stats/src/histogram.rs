//! Equi-width histograms and ASCII rendering for experiment reports.

/// A fixed-bin equi-width histogram over `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width buckets spanning the data
    /// range. Returns `None` for empty data, non-finite values or zero bins.
    pub fn new(data: &[f64], bins: usize) -> Option<Self> {
        if data.is_empty() || bins == 0 || data.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut counts = vec![0usize; bins];
        let width = (max - min) / bins as f64;
        for &x in data {
            let idx = if width == 0.0 { 0 } else { (((x - min) / width) as usize).min(bins - 1) };
            counts[idx] += 1;
        }
        Some(Histogram { min, max, counts })
    }

    /// Builds a histogram over log10 of the data (positive values only),
    /// which is how heavy-tailed runtime distributions are best inspected.
    pub fn log10(data: &[f64], bins: usize) -> Option<Self> {
        let logs: Vec<f64> = data.iter().filter(|&&x| x > 0.0).map(|x| x.log10()).collect();
        Self::new(&logs, bins)
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The `(lo, hi)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.max - self.min) / self.counts.len() as f64;
        (self.min + width * i as f64, self.min + width * (i + 1) as f64)
    }

    /// Number of local maxima ("modes") in the smoothed bin profile: a bin
    /// run strictly higher than its non-empty neighbors. Used to report the
    /// E3 "two clusters, nothing in between" shape.
    pub fn mode_count(&self) -> usize {
        // Collapse consecutive equal counts, drop zero bins at the ends of
        // comparisons (a zero gap still separates modes).
        let mut modes = 0;
        let n = self.counts.len();
        for i in 0..n {
            if self.counts[i] == 0 {
                continue;
            }
            let left_lower = (0..i)
                .rev()
                .find(|&j| self.counts[j] != self.counts[i])
                .is_none_or(|j| self.counts[j] < self.counts[i]);
            let right_lower = (i + 1..n)
                .find(|&j| self.counts[j] != self.counts[i])
                .is_none_or(|j| self.counts[j] < self.counts[i]);
            // Count only the first bin of a plateau.
            let first_of_plateau = i == 0 || self.counts[i - 1] != self.counts[i];
            if left_lower && right_lower && first_of_plateau {
                modes += 1;
            }
        }
        modes
    }

    /// Renders an ASCII bar chart (one line per bin), for experiment logs.
    pub fn render(&self, width: usize) -> String {
        let max_count = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar_len = c * width / max_count;
            out.push_str(&format!("[{lo:>10.3}, {hi:>10.3}) {:>6} {}\n", c, "#".repeat(bar_len)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_cover_all_points() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::new(&data, 10).unwrap();
        assert_eq!(h.counts().iter().sum::<usize>(), 100);
        assert!(h.counts().iter().all(|&c| c == 10));
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let h = Histogram::new(&[0.0, 1.0], 4).unwrap();
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.counts()[0], 1);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(Histogram::new(&[], 4).is_none());
        assert!(Histogram::new(&[1.0], 0).is_none());
        assert!(Histogram::new(&[f64::NAN], 4).is_none());
        // All-equal data: everything in bin 0.
        let h = Histogram::new(&[5.0, 5.0, 5.0], 3).unwrap();
        assert_eq!(h.counts(), &[3, 0, 0]);
    }

    #[test]
    fn bimodal_mode_count() {
        let mut data = vec![1.0; 40];
        data.extend(vec![100.0; 40]);
        let h = Histogram::new(&data, 20).unwrap();
        assert_eq!(h.mode_count(), 2);

        let unimodal: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let h = Histogram::new(&unimodal, 5).unwrap();
        assert_eq!(h.mode_count(), 1);
    }

    #[test]
    fn log_histogram_skips_nonpositive() {
        let h = Histogram::log10(&[0.0, -1.0, 1.0, 10.0, 100.0], 2).unwrap();
        assert_eq!(h.counts().iter().sum::<usize>(), 3);
    }

    #[test]
    fn render_shape() {
        let h = Histogram::new(&[0.0, 0.1, 0.9, 1.0], 2).unwrap();
        let text = h.render(10);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains('#'));
    }
}
