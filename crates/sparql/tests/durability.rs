//! Server-level crash-recovery differential suite.
//!
//! A durable [`SparqlServer`] journals every update before publishing it;
//! these tests crash it at every journal record boundary and every torn-
//! tail byte length, reopen the store directory through
//! [`SparqlServer::open_durable`], and require the recovered server to be
//! **bit-identical** to an oracle that replays the committed prefix of
//! the same scripted workload from scratch: same rows, same row order,
//! same measured `Cout` and `scanned`, same plan signatures. They also
//! pin the commit discipline itself: a panicking update closure leaves
//! server and journal untouched, a failed checkpoint is recoverable at
//! whichever step it died, and an orphaned journal is a typed error.

use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parambench_rdf::store::{Dataset, StoreBuilder};
use parambench_rdf::term::Term;
use parambench_rdf::wal::{scan_records, WalError, WAL_HEADER_LEN};
use parambench_rdf::{Fault, IoOp, IoSeam};
use parambench_sparql::engine::Engine;
use parambench_sparql::serve::{ServeConfig, SparqlServer, JOURNAL_FILE, SNAPSHOT_FILE};
use parambench_sparql::template::{Binding, QueryTemplate};
use parambench_sparql::QueryError;

fn iri(s: &str) -> Term {
    Term::iri(s.to_string())
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parambench-durab-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Small product/review base store. `freeze_in_memory` keeps it echo-free
/// so the saved snapshot and every from-scratch oracle start identical.
fn base_dataset() -> Dataset {
    let mut b = StoreBuilder::new();
    for i in 0..16 {
        let p = Term::iri(format!("prod/{i:02}"));
        b.insert(p.clone(), iri("type"), Term::iri(format!("ptype/{}", i % 4)));
        b.insert(p.clone(), iri("num"), Term::integer((i % 7) as i64));
        if i % 2 == 0 {
            b.insert(p, iri("feature"), Term::iri(format!("feat/{}", i % 5)));
        }
    }
    b.freeze_in_memory()
}

/// One scripted update step. Every step changes the visible set, so each
/// maps to exactly one journal record — the boundary sweep relies on that.
enum Step {
    Insert(Vec<(Term, Term, Term)>),
    Delete(Vec<(Term, Term, Term)>),
    Compact,
}

fn product(i: usize) -> (Term, Term, Term) {
    (Term::iri(format!("prod/{i:02}")), iri("type"), Term::iri(format!("ptype/{}", i % 4)))
}

/// Mixed workload: inserts of brand-new subjects and terms (dictionary
/// overflow on the live side), deletes of frozen triples, a mid-script
/// compaction, and a delete of a previously-inserted triple.
fn script() -> Vec<Step> {
    vec![
        Step::Insert(vec![
            (Term::iri("prod/90"), iri("type"), Term::iri("ptype/1")),
            (Term::iri("prod/90"), iri("num"), Term::integer(42)),
        ]),
        Step::Delete(vec![product(0), product(1)]),
        Step::Insert(vec![
            (Term::iri("prod/91"), iri("feature"), Term::iri("feat/new")),
            (Term::iri("prod/91"), iri("num"), Term::integer(-3)),
        ]),
        Step::Compact,
        Step::Insert(vec![(Term::iri("prod/92"), iri("num"), Term::integer(5))]),
        Step::Delete(vec![(Term::iri("prod/90"), iri("num"), Term::integer(42))]),
        Step::Insert(vec![
            (Term::iri("prod/93"), iri("type"), Term::iri("ptype/0")),
            (Term::iri("prod/93"), iri("num"), Term::integer(99)),
        ]),
        Step::Delete(vec![product(2)]),
    ]
}

fn apply_step(ds: &mut Dataset, step: &Step) {
    match step {
        Step::Insert(t) => {
            ds.insert_batch(t.clone());
        }
        Step::Delete(t) => {
            ds.delete_batch(t.clone());
        }
        Step::Compact => ds.compact(),
    }
}

/// The query mix the differential runs: scans, a join, ORDER BY over
/// numerics, aggregation.
fn requests() -> Vec<(QueryTemplate, Binding)> {
    let mix = vec![
        ("q1", "SELECT ?p ?n WHERE { ?p <type> %t . ?p <num> ?n } ORDER BY ASC(?n) ?p"),
        ("q2", "SELECT ?p ?f WHERE { ?p <type> ?t . ?p <feature> ?f } ORDER BY ?p"),
        ("q3", "SELECT ?t (COUNT(?p) AS ?c) WHERE { ?p <type> ?t } GROUP BY ?t ORDER BY ?t"),
    ];
    let mut out = Vec::new();
    for (name, text) in mix {
        let template = QueryTemplate::parse(name, text).expect("template parses");
        for v in 0..2 {
            let binding = if name == "q1" {
                Binding::new().with("t", Term::iri(format!("ptype/{v}")))
            } else {
                Binding::new()
            };
            out.push((template.clone(), binding));
            if name != "q1" {
                break; // parameterless templates need one variant
            }
        }
    }
    out
}

fn config() -> ServeConfig {
    ServeConfig::default()
}

/// Full bit-identity between two servers that followed the same update
/// sequence through the same APIs: rows, row order, Cout, scanned, and
/// the prepared plan's signature per request.
fn assert_bit_identical(a: &SparqlServer, b: &SparqlServer, label: &str) {
    for (template, binding) in requests() {
        let name = template.name().to_string();
        let oa = a.run(&template, &binding).unwrap_or_else(|e| panic!("[{label}] a/{name}: {e}"));
        let ob = b.run(&template, &binding).unwrap_or_else(|e| panic!("[{label}] b/{name}: {e}"));
        assert_eq!(oa.output.results, ob.output.results, "[{label}] rows diverge for {name}");
        assert_eq!(oa.output.cout, ob.output.cout, "[{label}] Cout diverges for {name}");
        assert_eq!(
            oa.output.stats.scanned, ob.output.stats.scanned,
            "[{label}] scanned diverges for {name}"
        );
        let sig = |server: &SparqlServer| {
            let engine = Engine::with_exec_config(server.dataset(), server.exec_config());
            let query = template.instantiate(&binding).expect("instantiates");
            engine.prepare(&query).expect("prepares").signature
        };
        assert_eq!(sig(a), sig(b), "[{label}] plan signatures diverge for {name}");
    }
}

/// Decoded visible triple set (id-independent).
fn visible(ds: &Dataset) -> BTreeSet<String> {
    ds.scan([None, None, None])
        .map(|[s, p, o]| format!("{:?} {:?} {:?}", ds.decode(s), ds.decode(p), ds.decode(o)))
        .collect()
}

/// Builds a durable store dir, applies the whole script through journaled
/// updates, and returns the dir (server dropped — a "crash" leaves exactly
/// the on-disk state behind).
fn journaled_dir(name: &str) -> PathBuf {
    let dir = temp_dir(name);
    let mut server = SparqlServer::create_durable(Arc::new(base_dataset()), &dir, config())
        .expect("creates durable store");
    for step in &script() {
        server.try_update(|ds| apply_step(ds, step)).expect("journaled update commits");
    }
    assert_eq!(server.journal_len(), std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len());
    drop(server);
    dir
}

/// The oracle for a crash after `committed` records: reload the same
/// snapshot and apply the first `committed` script steps from scratch
/// through a non-durable server (each step is exactly one record).
fn oracle_server(dir: &Path, committed: usize) -> SparqlServer {
    let ds = Dataset::load(&dir.join(SNAPSHOT_FILE)).expect("snapshot loads");
    let mut server = SparqlServer::new(Arc::new(ds), config());
    for step in script().iter().take(committed) {
        server.update(|ds| apply_step(ds, step));
    }
    server
}

/// Byte offset of each record boundary in the journal (offset `i` = end of
/// the first `i` records), derived by scanning every prefix — the same
/// pure oracle the rdf-level sweep uses.
fn record_boundaries(journal: &[u8]) -> Vec<u64> {
    let full = scan_records(journal).expect("journal scans clean");
    let mut boundaries = vec![WAL_HEADER_LEN as u64];
    for k in WAL_HEADER_LEN..=journal.len() {
        let scan = scan_records(&journal[..k]).expect("prefix scans");
        if !scan.torn && scan.records.len() == boundaries.len() && scan.committed_len == k as u64 {
            boundaries.push(k as u64);
        }
    }
    assert_eq!(boundaries.len(), full.records.len() + 1);
    boundaries
}

#[test]
fn crash_at_every_record_boundary_recovers_bit_identically() {
    let dir = journaled_dir("boundary");
    let journal = std::fs::read(dir.join(JOURNAL_FILE)).expect("journal bytes");
    let boundaries = record_boundaries(&journal);
    assert_eq!(boundaries.len(), script().len() + 1, "each step must journal exactly one record");
    for (committed, &end) in boundaries.iter().enumerate() {
        let crash = temp_dir(&format!("boundary-{committed}"));
        std::fs::create_dir_all(&crash).unwrap();
        std::fs::copy(dir.join(SNAPSHOT_FILE), crash.join(SNAPSHOT_FILE)).unwrap();
        std::fs::write(crash.join(JOURNAL_FILE), &journal[..end as usize]).unwrap();
        let recovered =
            SparqlServer::open_durable(&crash, config()).expect("recovers at a record boundary");
        assert_eq!(recovered.recovered_records(), committed as u64);
        assert_eq!(recovered.journal_len(), end);
        let oracle = oracle_server(&dir, committed);
        assert_bit_identical(&recovered, &oracle, &format!("boundary {committed}"));
        drop(recovered);
        std::fs::remove_dir_all(&crash).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_at_every_torn_tail_length_recovers_the_committed_prefix() {
    let dir = journaled_dir("torn");
    let journal = std::fs::read(dir.join(JOURNAL_FILE)).expect("journal bytes");
    for cut in WAL_HEADER_LEN..=journal.len() {
        let prefix_oracle = scan_records(&journal[..cut]).expect("prefix scans");
        let crash = temp_dir("torn-crash");
        std::fs::create_dir_all(&crash).unwrap();
        std::fs::copy(dir.join(SNAPSHOT_FILE), crash.join(SNAPSHOT_FILE)).unwrap();
        std::fs::write(crash.join(JOURNAL_FILE), &journal[..cut]).unwrap();
        let recovered =
            SparqlServer::open_durable(&crash, config()).expect("torn tails are tolerated");
        assert_eq!(recovered.recovered_records(), prefix_oracle.records.len() as u64, "cut {cut}");
        // The torn tail was physically truncated back to the boundary.
        assert_eq!(
            std::fs::metadata(crash.join(JOURNAL_FILE)).unwrap().len(),
            prefix_oracle.committed_len,
            "cut {cut}"
        );
        let oracle = oracle_server(&dir, prefix_oracle.records.len());
        assert_eq!(
            visible(recovered.dataset()),
            visible(oracle.dataset()),
            "visible set diverges at cut {cut}"
        );
        assert_eq!(
            recovered.dataset().stats().total_triples,
            oracle.dataset().stats().total_triples,
            "cut {cut}"
        );
        drop(recovered);
        std::fs::remove_dir_all(&crash).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn acknowledged_updates_survive_an_uncheckpointed_crash() {
    let dir = temp_dir("acked");
    let mut server = SparqlServer::create_durable(Arc::new(base_dataset()), &dir, config())
        .expect("creates durable store");
    for step in &script() {
        server.try_update(|ds| apply_step(ds, step)).expect("commits");
    }
    let live_visible = visible(server.dataset());
    let live_epochs = server.epoch();
    drop(server); // crash: no checkpoint, no save
    let recovered = SparqlServer::open_durable(&dir, config()).expect("recovers");
    assert_eq!(recovered.recovered_records(), live_epochs);
    assert_eq!(visible(recovered.dataset()), live_visible);
    let oracle = oracle_server(&dir, script().len());
    assert_bit_identical(&recovered, &oracle, "acked");
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn panicking_update_closure_leaves_server_and_journal_untouched() {
    let dir = temp_dir("panic");
    let mut server = SparqlServer::create_durable(Arc::new(base_dataset()), &dir, config())
        .expect("creates durable store");
    server.try_update(|ds| apply_step(ds, &script()[0])).expect("first commit");
    let epoch = server.epoch();
    let journal_len = server.journal_len();
    let before = visible(server.dataset());
    let baseline: Vec<_> =
        requests().iter().map(|(t, b)| server.run(t, b).unwrap().output.results).collect();

    let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
        server.update(|ds| {
            // Mutates the working clone, then dies mid-update.
            ds.insert_batch(vec![(Term::iri("prod/99"), iri("num"), Term::integer(1))]);
            panic!("client bug mid-update");
        })
    }));
    assert!(panicked.is_err());

    // Nothing published, nothing journaled, nothing invalidated.
    assert_eq!(server.epoch(), epoch);
    assert_eq!(server.journal_len(), journal_len);
    assert_eq!(std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(), journal_len);
    assert_eq!(visible(server.dataset()), before);
    let after: Vec<_> =
        requests().iter().map(|(t, b)| server.run(t, b).unwrap().output.results).collect();
    assert_eq!(baseline, after, "queries diverged after an aborted update");
    // And the server still commits cleanly afterwards.
    server.try_update(|ds| apply_step(ds, &script()[1])).expect("post-panic commit");
    assert_eq!(server.epoch(), epoch + 1);
    drop(server);
    let recovered = SparqlServer::open_durable(&dir, config()).expect("recovers");
    assert_eq!(recovered.recovered_records(), 2, "only the committed updates were journaled");
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn orphaned_journal_is_a_typed_error() {
    let dir = journaled_dir("orphan");
    std::fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();
    let Err(err) = SparqlServer::open_durable(&dir, config()) else {
        panic!("orphan journal must not open");
    };
    let QueryError::Wal(WalError::OrphanJournal { journal, snapshot }) = err else {
        panic!("expected OrphanJournal, got {err:?}");
    };
    assert_eq!(journal, dir.join(JOURNAL_FILE));
    assert_eq!(snapshot, dir.join(SNAPSHOT_FILE));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_truncates_the_journal_and_preserves_the_store() {
    let dir = temp_dir("ckpt");
    let mut server = SparqlServer::create_durable(Arc::new(base_dataset()), &dir, config())
        .expect("creates durable store");
    for step in &script() {
        server.try_update(|ds| apply_step(ds, step)).expect("commits");
    }
    assert!(server.journal_len() > WAL_HEADER_LEN as u64);
    server.checkpoint().expect("checkpoints");
    assert_eq!(server.journal_len(), WAL_HEADER_LEN as u64);
    assert_eq!(std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(), WAL_HEADER_LEN as u64);
    let live_visible = visible(server.dataset());
    drop(server);
    let recovered = SparqlServer::open_durable(&dir, config()).expect("reopens");
    assert_eq!(recovered.recovered_records(), 0, "a checkpointed store replays nothing");
    assert_eq!(visible(recovered.dataset()), live_visible);
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpoint dies *between* the snapshot publish and the journal
/// truncation (injected `set_len` failure). The stale journal replayed
/// over the already-updated snapshot must be idempotent: the reopened
/// store serves the same decoded rows as the live one. (Plan signatures
/// are not compared here: replaying inserts of since-deleted terms can
/// legitimately intern overflow ids the compacted live store lacks.)
#[test]
fn checkpoint_crash_after_snapshot_publish_recovers_idempotently() {
    let dir = temp_dir("ckpt-setlen");
    let seam = IoSeam::none();
    let mut server =
        SparqlServer::create_durable_with_seam(Arc::new(base_dataset()), &dir, config(), &seam)
            .expect("creates durable store");
    for step in &script() {
        server.try_update(|ds| apply_step(ds, step)).expect("commits");
    }
    // No set_len has run yet (appends only extend); the next one is the
    // checkpoint's journal reset.
    let setlens = seam.log().iter().filter(|op| **op == IoOp::SetLen).count();
    seam.inject(IoOp::SetLen, setlens, Fault::Err("Input/output error"));
    let err = server.checkpoint().expect_err("reset failure must surface");
    assert!(matches!(err, QueryError::Wal(WalError::Io { .. })), "got {err:?}");
    assert_eq!(seam.unfired(), 0);
    let live_rows: Vec<_> =
        requests().iter().map(|(t, b)| server.run(t, b).unwrap().output.results).collect();
    let live_visible = visible(server.dataset());
    drop(server);
    // The journal still holds every record; the snapshot already contains
    // their effects. Replay must converge to the same state anyway.
    assert!(std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len() > WAL_HEADER_LEN as u64);
    let recovered = SparqlServer::open_durable(&dir, config()).expect("recovers");
    assert!(recovered.recovered_records() > 0);
    assert_eq!(visible(recovered.dataset()), live_visible);
    let recovered_rows: Vec<_> =
        requests().iter().map(|(t, b)| recovered.run(t, b).unwrap().output.results).collect();
    assert_eq!(recovered_rows, live_rows, "idempotent replay diverged");
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpoint dies during the snapshot *save* (injected rename failure —
/// the atomic-publication step). The old snapshot must be intact, the
/// journal untruncated, and recovery must still reach the live state:
/// the serve-level regression for atomic snapshot replacement.
#[test]
fn checkpoint_crash_during_snapshot_save_keeps_old_snapshot_and_journal() {
    let dir = temp_dir("ckpt-save");
    let seam = IoSeam::none();
    let mut server =
        SparqlServer::create_durable_with_seam(Arc::new(base_dataset()), &dir, config(), &seam)
            .expect("creates durable store");
    for step in &script() {
        server.try_update(|ds| apply_step(ds, step)).expect("commits");
    }
    let old_snapshot = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
    let journal_len = server.journal_len();
    // Rename #0 was create_durable's initial snapshot publish; #1 is the
    // checkpoint's.
    seam.inject(IoOp::Rename, 1, Fault::Err("Input/output error"));
    let err = server.checkpoint().expect_err("failed snapshot publish must surface");
    assert!(matches!(err, QueryError::Snapshot(_)), "got {err:?}");
    assert_eq!(seam.unfired(), 0);
    // Old snapshot untouched byte-for-byte; journal still carries every
    // record (plus the checkpoint's compaction record).
    assert_eq!(std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap(), old_snapshot);
    assert!(std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len() > journal_len);
    let live_visible = visible(server.dataset());
    drop(server);
    let recovered = SparqlServer::open_durable(&dir, config()).expect("recovers");
    assert_eq!(visible(recovered.dataset()), live_visible);
    let oracle = oracle_server(&dir, script().len());
    // The failed checkpoint still committed its compaction record, so the
    // oracle needs the same compaction applied.
    let mut oracle = oracle;
    oracle.update(|ds| ds.compact());
    assert_bit_identical(&recovered, &oracle, "ckpt-save-crash");
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn create_durable_discards_a_stale_journal() {
    let dir = journaled_dir("stale");
    assert!(std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len() > WAL_HEADER_LEN as u64);
    let server = SparqlServer::create_durable(Arc::new(base_dataset()), &dir, config())
        .expect("re-creates over an existing dir");
    assert_eq!(server.journal_len(), WAL_HEADER_LEN as u64);
    assert_eq!(server.recovered_records(), 0);
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}
