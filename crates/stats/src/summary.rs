//! Descriptive statistics of a runtime (or cost) sample.
//!
//! The paper reports min / median / mean / q10 / q90 / q95 / max and
//! variance for each group of parameter bindings; [`Summary`] computes all
//! of them in one pass plus a sort, and is the common currency between the
//! experiment binaries and EXPERIMENTS.md tables.

/// Descriptive statistics of a non-empty f64 sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    /// Sample variance (n-1 denominator); 0 for singleton samples.
    variance: f64,
}

impl Summary {
    /// Builds a summary; returns `None` for an empty sample or any
    /// non-finite value.
    pub fn new(data: &[f64]) -> Option<Self> {
        if data.is_empty() || data.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let variance = if sorted.len() > 1 {
            sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Some(Summary { sorted, mean, variance })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples (never: construction forbids it, kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Quantile by linear interpolation between order statistics
    /// (type-7 / NumPy default). `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let h = q * (n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        let frac = h - lo as f64;
        self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Coefficient of variation `std_dev / mean` — the paper's P1 ("bounded
    /// variance") is naturally expressed as a bound on this scale-free ratio.
    pub fn coeff_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }

    /// Sample skewness (g1, biased).
    pub fn skewness(&self) -> f64 {
        let n = self.sorted.len() as f64;
        let sd = (self.variance * (n - 1.0) / n).sqrt(); // population sd
        if sd == 0.0 {
            return 0.0;
        }
        self.sorted.iter().map(|x| ((x - self.mean) / sd).powi(3)).sum::<f64>() / n
    }

    /// Sample excess kurtosis (g2, biased).
    pub fn excess_kurtosis(&self) -> f64 {
        let n = self.sorted.len() as f64;
        let var_pop = self.variance * (n - 1.0) / n;
        if var_pop == 0.0 {
            return 0.0;
        }
        self.sorted.iter().map(|x| (x - self.mean).powi(4)).sum::<f64>() / (n * var_pop * var_pop)
            - 3.0
    }

    /// Sarle's bimodality coefficient
    /// `BC = (g1² + 1) / (g2 + 3(n−1)² / ((n−2)(n−3)))`.
    /// Values above ~0.555 (the uniform distribution's BC) suggest
    /// bi-/multi-modality — the paper's E3 "clustered runtimes" diagnosis.
    pub fn bimodality_coefficient(&self) -> f64 {
        let n = self.sorted.len() as f64;
        if self.sorted.len() < 4 {
            return 0.0;
        }
        let g1 = self.skewness();
        let g2 = self.excess_kurtosis();
        (g1 * g1 + 1.0) / (g2 + 3.0 * (n - 1.0) * (n - 1.0) / ((n - 2.0) * (n - 3.0)))
    }

    /// The sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Relative spread of a set of group aggregates: `(max − min) / min`.
///
/// E2 reports that the *average* runtime across four independently drawn
/// groups deviates by up to 40% and percentiles by up to 100%; this is the
/// metric those percentages use.
pub fn relative_spread(values: &[f64]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || !max.is_finite() || min == 0.0 {
        return 0.0;
    }
    (max - min) / min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::new(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.len(), 8);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1: sum sq dev = 32, / 7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_type7() {
        let s = Summary::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert!((s.quantile(1.0 / 3.0) - 2.0).abs() < 1e-12);
        // Clamping
        assert_eq!(s.quantile(-1.0), 1.0);
        assert_eq!(s.quantile(2.0), 4.0);
    }

    #[test]
    fn singleton() {
        let s = Summary::new(&[3.5]).unwrap();
        assert_eq!(s.median(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.quantile(0.9), 3.5);
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(Summary::new(&[]).is_none());
        assert!(Summary::new(&[1.0, f64::NAN]).is_none());
        assert!(Summary::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn skewness_sign() {
        let right = Summary::new(&[1.0, 1.0, 1.0, 1.0, 10.0]).unwrap();
        assert!(right.skewness() > 1.0, "long right tail should be positively skewed");
        let sym = Summary::new(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(sym.skewness().abs() < 1e-9);
    }

    #[test]
    fn bimodality_detects_two_clusters() {
        // Two tight clusters, the paper's E3 picture.
        let mut data = vec![0.3; 50];
        data.extend(vec![17.0; 50]);
        let bimodal = Summary::new(&data).unwrap();
        assert!(
            bimodal.bimodality_coefficient() > 0.555,
            "bc = {}",
            bimodal.bimodality_coefficient()
        );

        // A single bell is far below the threshold.
        let unimodal: Vec<f64> =
            (0..100).map(|i| ((i as f64) / 99.0 * 2.0 - 1.0).powi(3) + 1.5).collect();
        let s = Summary::new(&unimodal).unwrap();
        assert!(s.bimodality_coefficient() < 0.9);
    }

    #[test]
    fn relative_spread_basics() {
        assert!((relative_spread(&[1.0, 1.4]) - 0.4).abs() < 1e-12);
        assert_eq!(relative_spread(&[2.0, 2.0, 2.0]), 0.0);
        assert_eq!(relative_spread(&[]), 0.0);
    }

    #[test]
    fn coeff_of_variation() {
        let s = Summary::new(&[10.0, 10.0, 10.0]).unwrap();
        assert_eq!(s.coeff_of_variation(), 0.0);
        let s = Summary::new(&[1.0, 100.0]).unwrap();
        assert!(s.coeff_of_variation() > 1.0);
    }
}
