//! Edge-case integration tests of the query engine: solution modifiers,
//! mixed-type ordering, OPTIONAL/UNION interplay, instrumentation
//! determinism — behaviours a downstream benchmark driver depends on.

use parambench_rdf::store::{Dataset, StoreBuilder};
use parambench_rdf::term::Term;
use parambench_sparql::engine::Engine;
use parambench_sparql::error::QueryError;
use parambench_sparql::results::OutVal;
use parambench_sparql::{ExecConfig, MORSELS_PER_WAVE};

fn dataset() -> Dataset {
    let mut b = StoreBuilder::new();
    for i in 0..10 {
        let s = Term::iri(format!("item/{i}"));
        b.insert(s.clone(), Term::iri("rank"), Term::integer(i as i64));
        b.insert(s.clone(), Term::iri("group"), Term::iri(format!("g/{}", i % 3)));
        if i % 2 == 0 {
            b.insert(s.clone(), Term::iri("label"), Term::literal(format!("label {i}")));
        }
        if i == 7 {
            b.insert(s, Term::iri("special"), Term::literal("yes"));
        }
    }
    b.freeze()
}

#[test]
fn offset_beyond_result_is_empty() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine.run_text("SELECT ?s WHERE { ?s <rank> ?r } OFFSET 100").unwrap();
    assert!(out.results.is_empty());
}

#[test]
fn offset_and_limit_slice_sorted_output() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text("SELECT ?r WHERE { ?s <rank> ?r } ORDER BY ASC(?r) LIMIT 3 OFFSET 2")
        .unwrap();
    let vals: Vec<f64> = out.results.rows.iter().map(|r| r[0].as_num().unwrap()).collect();
    assert_eq!(vals, vec![2.0, 3.0, 4.0]);
}

#[test]
fn order_by_unbound_sorts_last() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text("SELECT ?s ?l WHERE { ?s <rank> ?r OPTIONAL { ?s <label> ?l } } ORDER BY ASC(?l)")
        .unwrap();
    let first = &out.results.rows[0][1];
    let last = &out.results.rows[out.results.len() - 1][1];
    assert!(matches!(first, OutVal::Term(_)));
    assert!(matches!(last, OutVal::Unbound));
}

#[test]
fn distinct_collapses_duplicates_after_projection() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let all = engine.run_text("SELECT ?g WHERE { ?s <group> ?g }").unwrap();
    assert_eq!(all.results.len(), 10);
    let distinct = engine.run_text("SELECT DISTINCT ?g WHERE { ?s <group> ?g }").unwrap();
    assert_eq!(distinct.results.len(), 3);
}

#[test]
fn count_distinct_vs_count() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text("SELECT (COUNT(?g) AS ?n) (COUNT(DISTINCT ?g) AS ?d) WHERE { ?s <group> ?g }")
        .unwrap();
    assert_eq!(out.results.rows[0][0].as_num(), Some(10.0));
    assert_eq!(out.results.rows[0][1].as_num(), Some(3.0));
}

#[test]
fn group_by_with_empty_input_yields_no_groups() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text(
            "SELECT ?g (COUNT(?s) AS ?n) WHERE { ?s <group> ?g . ?s <rank> ?r . FILTER(?r > 99) } GROUP BY ?g",
        )
        .unwrap();
    assert!(out.results.is_empty());
}

#[test]
fn optional_after_union_extends_rows() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text(
            "SELECT ?s ?l WHERE { { ?s <group> <g/0> } UNION { ?s <group> <g/1> } OPTIONAL { ?s <label> ?l } }",
        )
        .unwrap();
    // groups 0 and 1 cover items 0,1,3,4,6,7,9 → 7 rows.
    assert_eq!(out.results.len(), 7);
    let bound = out.results.rows.iter().filter(|r| matches!(r[1], OutVal::Term(_))).count();
    assert_eq!(bound, 3, "items 0, 4, 6 have labels");
}

#[test]
fn filter_on_optional_var_with_bound_guard() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    // Keep rows where the label is missing — the BOUND() idiom.
    let out = engine
        .run_text("SELECT ?s WHERE { ?s <rank> ?r OPTIONAL { ?s <label> ?l } FILTER(!BOUND(?l)) }")
        .unwrap();
    assert_eq!(out.results.len(), 5); // odd ranks have no label
}

#[test]
fn cout_is_deterministic_across_runs() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?s WHERE { ?s <rank> ?r . ?s <group> ?g . ?s <label> ?l }",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let a = engine.execute(&prepared).unwrap();
    let b = engine.execute(&prepared).unwrap();
    assert_eq!(a.cout, b.cout);
    assert_eq!(a.results, b.results);
}

#[test]
fn est_cout_nonnegative_and_signature_nonempty() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    for text in [
        "SELECT ?s WHERE { ?s <rank> ?r }",
        "SELECT ?s WHERE { ?s <rank> ?r . ?s <group> ?g }",
        "SELECT ?s WHERE { { ?s <group> <g/0> } UNION { ?s <group> <g/2> } }",
        "SELECT ?s WHERE { ?s <special> ?x OPTIONAL { ?s <label> ?l } }",
    ] {
        let q = parambench_sparql::parse_query(text).unwrap();
        let p = engine.prepare(&q).unwrap();
        assert!(p.est_cout >= 0.0, "{text}");
        assert!(!p.signature.0.is_empty(), "{text}");
    }
}

#[test]
fn var_predicate_patterns_work() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine.run_text("SELECT DISTINCT ?p WHERE { <item/7> ?p ?o }").unwrap();
    assert_eq!(out.results.len(), 3); // rank, group, special
}

#[test]
fn fully_bound_pattern_acts_as_existence_check() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let hit =
        engine.run_text("SELECT ?s WHERE { ?s <rank> ?r . <item/7> <special> \"yes\" }").unwrap();
    assert_eq!(hit.results.len(), 10, "existence holds: join keeps all rows");
    let miss =
        engine.run_text("SELECT ?s WHERE { ?s <rank> ?r . <item/7> <special> \"no\" }").unwrap();
    assert!(miss.results.is_empty());
}

#[test]
fn order_by_var_not_in_projection() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out =
        engine.run_text("SELECT ?s WHERE { ?s <rank> ?r } ORDER BY DESC(?r) LIMIT 2").unwrap();
    let names: Vec<String> =
        out.results.rows.iter().map(|r| r[0].as_term().unwrap().to_string()).collect();
    assert_eq!(names, vec!["<item/9>", "<item/8>"]);
    assert_eq!(out.results.columns, vec!["s"]);
}

#[test]
fn limit_zero_is_empty_and_does_no_work() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query("SELECT ?s WHERE { ?s <rank> ?r } LIMIT 0").unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let out = engine.execute(&prepared).unwrap();
    assert!(out.results.is_empty());
    // The pushed pipeline never runs: nothing is ever scanned.
    assert_eq!(out.stats.scanned, 0, "LIMIT 0 must not touch the store");
    assert_eq!(out.stats.peak_tuples, 0);
    // The short-circuit covers the aggregate and ORDER BY shapes too.
    for text in [
        "SELECT ?g (COUNT(?s) AS ?n) WHERE { ?s <group> ?g } GROUP BY ?g LIMIT 0",
        "SELECT ?s WHERE { ?s <rank> ?r } ORDER BY ASC(?r) LIMIT 0 OFFSET 5",
    ] {
        let q = parambench_sparql::parse_query(text).unwrap();
        let out = engine.execute(&engine.prepare(&q).unwrap()).unwrap();
        assert!(out.results.is_empty(), "{text}");
        assert_eq!(out.stats.scanned, 0, "LIMIT 0 must do no work: {text}");
    }
}

#[test]
fn offset_past_end_with_limit_is_empty() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine.run_text("SELECT ?s WHERE { ?s <rank> ?r } LIMIT 5 OFFSET 1000").unwrap();
    assert!(out.results.is_empty());
    let sorted = engine
        .run_text("SELECT ?s WHERE { ?s <rank> ?r } ORDER BY ASC(?r) LIMIT 5 OFFSET 1000")
        .unwrap();
    assert!(sorted.results.is_empty());
}

#[test]
fn distinct_over_union_duplicates() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    // Both branches produce the same subjects: UNION concatenates (bag
    // semantics), DISTINCT collapses the duplicates.
    let all = engine
        .run_text("SELECT ?s WHERE { { ?s <group> <g/0> } UNION { ?s <group> <g/0> } }")
        .unwrap();
    assert_eq!(all.results.len(), 8, "items 0,3,6,9 twice");
    let distinct = engine
        .run_text("SELECT DISTINCT ?s WHERE { { ?s <group> <g/0> } UNION { ?s <group> <g/0> } }")
        .unwrap();
    assert_eq!(distinct.results.len(), 4);
}

#[test]
fn ungrouped_aggregates_over_zero_rows_yield_one_row() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text(
            "SELECT (COUNT(?r) AS ?n) (SUM(?r) AS ?sum) (AVG(?r) AS ?avg) (MIN(?r) AS ?mn) \
             WHERE { ?s <rank> ?r . FILTER(?r > 99) }",
        )
        .unwrap();
    // SPARQL: the implicit group always yields one row; COUNT/SUM are 0,
    // value aggregates are unbound.
    assert_eq!(out.results.len(), 1);
    assert_eq!(out.results.rows[0][0].as_num(), Some(0.0));
    assert_eq!(out.results.rows[0][1].as_num(), Some(0.0));
    assert!(matches!(out.results.rows[0][2], OutVal::Unbound));
    assert!(matches!(out.results.rows[0][3], OutVal::Unbound));
}

#[test]
fn avg_and_min_on_non_numeric_values_are_unbound() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    // Labels are plain string literals: COUNT counts them, the numeric
    // folds find nothing to fold.
    let out = engine
        .run_text(
            "SELECT ?g (COUNT(?l) AS ?n) (AVG(?l) AS ?avg) (MIN(?l) AS ?mn) \
             WHERE { ?s <group> ?g . ?s <label> ?l } GROUP BY ?g ORDER BY DESC(?n)",
        )
        .unwrap();
    assert!(!out.results.is_empty());
    for row in &out.results.rows {
        assert!(row[1].as_num().unwrap() >= 1.0);
        assert!(matches!(row[2], OutVal::Unbound), "AVG of strings is unbound");
        assert!(matches!(row[3], OutVal::Unbound), "MIN of strings is unbound");
    }
}

#[test]
fn order_by_ties_keep_pipeline_order_and_topk_matches_full_sort() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    // ?g has only 3 distinct values over 10 rows: heavy ties.
    let full_q = parambench_sparql::parse_query(
        "SELECT ?s ?g WHERE { ?s <group> ?g . ?s <rank> ?r } ORDER BY ASC(?g)",
    )
    .unwrap();
    let full_prepared = engine.prepare(&full_q).unwrap();
    let full = engine.execute(&full_prepared).unwrap();
    // The pinned tie-break (pipeline row order) makes the pushed and the
    // materialize-then-sort paths produce the same sequence, not just the
    // same multiset.
    let unpushed = engine.execute_unpushed(&full_prepared).unwrap();
    assert_eq!(full.results, unpushed.results);

    // A LIMIT-ed run goes through the bounded-heap TopK instead of the
    // full sort — it must reproduce the stable sort's prefix exactly.
    for limit in [1, 4, 7, 10, 15] {
        let q = parambench_sparql::parse_query(&format!(
            "SELECT ?s ?g WHERE {{ ?s <group> ?g . ?s <rank> ?r }} ORDER BY ASC(?g) LIMIT {limit}"
        ))
        .unwrap();
        let limited = engine.execute(&engine.prepare(&q).unwrap()).unwrap();
        let want: Vec<_> = full.results.rows.iter().take(limit).cloned().collect();
        assert_eq!(limited.results.rows, want, "LIMIT {limit} breaks tie order");
    }
}

#[test]
fn topk_peak_is_strictly_below_full_sort_peak() {
    // Enough rows that the TopK heap (offset+limit rows) is visibly
    // smaller than the materialized sort input.
    let mut b = StoreBuilder::new();
    for i in 0..5000 {
        b.insert(
            Term::iri(format!("row/{i}")),
            Term::iri("score"),
            Term::integer(((i * 37) % 1000) as i64),
        );
    }
    let ds = b.freeze();
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?s ?v WHERE { ?s <score> ?v } ORDER BY DESC(?v) LIMIT 10",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let pushed = engine.execute(&prepared).unwrap();
    let unpushed = engine.execute_unpushed(&prepared).unwrap();
    assert_eq!(pushed.results, unpushed.results);
    assert!(
        pushed.stats.peak_tuples < unpushed.stats.peak_tuples,
        "TopK peak {} must be strictly below the materialized sort peak {}",
        pushed.stats.peak_tuples,
        unpushed.stats.peak_tuples
    );
    // And not just lower: bounded by the heap + one in-flight batch.
    assert!(
        pushed.stats.peak_tuples <= (10 + parambench_sparql::BATCH_SIZE) as u64,
        "TopK peak {} should be heap + batch bounded",
        pushed.stats.peak_tuples
    );
}

#[test]
fn parallel_limit_early_exit_stops_workers_promptly() {
    // Plain LIMIT queries are output-bound: the engine must not spawn a
    // worker pool it would immediately have to stop, so even under a
    // forced-parallel config the pipeline stays serial and the LIMIT exits
    // batch-granularly — scanned stays near one batch of driving rows, not
    // a whole wave (MORSELS_PER_WAVE × morsel_rows) of surplus work.
    let morsel_rows = 64;
    let n = MORSELS_PER_WAVE * morsel_rows * 4; // 4 waves' worth of rows
    let mut b = StoreBuilder::new();
    for i in 0..n {
        let s = Term::iri(format!("row/{i}"));
        b.insert(s.clone(), Term::iri("cat"), Term::iri(format!("c/{}", i % 7)));
        b.insert(s, Term::iri("val"), Term::integer(i as i64));
    }
    let ds = b.freeze();
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?s ?c ?v WHERE { ?s <cat> ?c . ?s <val> ?v } LIMIT 9",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let exec = ExecConfig {
        threads: 4,
        morsel_rows,
        min_driver_rows: 1,
        min_est_cost: 0.0,
        mem_budget_rows: None,
    };
    let out = engine.execute_with(&prepared, &exec).unwrap();
    assert_eq!(out.results.len(), 9);
    // Rows and order equal the default path's.
    let serial = engine.execute(&prepared).unwrap();
    assert_eq!(out.results, serial.results);
    assert_eq!(out.stats.scanned, serial.stats.scanned);
    assert_eq!(out.cout, serial.cout);
    // Batch-granular early exit: one lazily-built side (≤ n) plus a few
    // batches of driving rows — nowhere near the 2n of a full drain, and
    // strictly tighter than even one parallel wave of surplus driving rows.
    let bound = n as u64 + 4 * parambench_sparql::BATCH_SIZE as u64;
    assert!(
        out.stats.scanned <= bound,
        "LIMIT early exit did too much work: scanned {} (bound {bound}, total {})",
        out.stats.scanned,
        2 * n
    );
    // The same query WITH an ORDER BY drains everything and therefore does
    // use the pool — and stays bit-identical at any thread count.
    let sorted = parambench_sparql::parse_query(
        "SELECT ?s ?c ?v WHERE { ?s <cat> ?c . ?s <val> ?v } ORDER BY ASC(?v) LIMIT 9",
    )
    .unwrap();
    let prepared_sorted = engine.prepare(&sorted).unwrap();
    let par = engine.execute_with(&prepared_sorted, &exec).unwrap();
    let one = engine.execute_with(&prepared_sorted, &ExecConfig { threads: 1, ..exec }).unwrap();
    assert_eq!(par.results.len(), 9);
    assert_eq!(par.results, one.results);
    assert_eq!(par.cout, one.cout);
    assert_eq!(par.stats.scanned, one.stats.scanned);
}

/// `n` rows spread over `groups` groups with integer ranks — enough group
/// cardinality to push any small memory budget onto the spill path.
fn grouped_dataset(n: usize, groups: usize) -> Dataset {
    let mut b = StoreBuilder::new();
    for i in 0..n {
        let s = Term::iri(format!("row/{i}"));
        b.insert(s.clone(), Term::iri("grp"), Term::iri(format!("g/{}", i % groups)));
        b.insert(s, Term::iri("rank"), Term::integer(((i * 31) % 97) as i64));
    }
    b.freeze()
}

fn budget_cfg(budget: Option<usize>) -> ExecConfig {
    ExecConfig { mem_budget_rows: budget, ..ExecConfig::default() }
}

#[test]
fn group_by_exceeding_budget_spills_bit_identically_with_lower_peak() {
    let ds = grouped_dataset(4000, 400);
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?g (COUNT(?s) AS ?n) (SUM(?r) AS ?sum) (AVG(?r) AS ?avg) \
         WHERE { ?s <grp> ?g . ?s <rank> ?r } GROUP BY ?g ORDER BY DESC(?sum)",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let inmem = engine.execute_with(&prepared, &budget_cfg(None)).unwrap();
    assert_eq!(inmem.results.len(), 400);
    assert_eq!(inmem.stats.spilled_rows, 0);
    for budget in [2usize, 16, 64] {
        let spilled = engine.execute_with(&prepared, &budget_cfg(Some(budget))).unwrap();
        // The acceptance gate: identical rows/order/Cout/scanned, real
        // spill volume, and a strictly lower in-memory peak.
        assert_eq!(spilled.results, inmem.results, "budget {budget} changed results");
        assert_eq!(spilled.cout, inmem.cout, "budget {budget} changed Cout");
        assert_eq!(spilled.stats.scanned, inmem.stats.scanned, "budget {budget} changed scanned");
        assert!(spilled.stats.spilled_rows > 0, "budget {budget} did not spill");
        assert!(spilled.stats.spill_runs > 0);
        assert!(spilled.stats.spill_bytes > 0);
        assert!(
            spilled.stats.peak_tuples < inmem.stats.peak_tuples,
            "budget {budget}: spilled peak {} not below in-memory {}",
            spilled.stats.peak_tuples,
            inmem.stats.peak_tuples
        );
    }
}

#[test]
fn order_by_without_limit_spills_sorted_runs_bit_identically() {
    let ds = grouped_dataset(3000, 50);
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?s ?r WHERE { ?s <rank> ?r . ?s <grp> ?g } ORDER BY ASC(?r) OFFSET 7",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let inmem = engine.execute_with(&prepared, &budget_cfg(None)).unwrap();
    let spilled = engine.execute_with(&prepared, &budget_cfg(Some(16))).unwrap();
    assert_eq!(spilled.results, inmem.results);
    assert_eq!(spilled.cout, inmem.cout);
    assert_eq!(spilled.stats.scanned, inmem.stats.scanned);
    assert!(spilled.stats.spill_runs >= 2, "external sort must write several runs");
    assert!(
        spilled.stats.peak_tuples < inmem.stats.peak_tuples,
        "external sort peak {} not below in-memory {}",
        spilled.stats.peak_tuples,
        inmem.stats.peak_tuples
    );
}

#[test]
fn budget_of_zero_and_one_rows_complete_correctly() {
    let ds = grouped_dataset(300, 40);
    let engine = Engine::new(&ds);
    for text in [
        "SELECT ?g (COUNT(?s) AS ?n) WHERE { ?s <grp> ?g } GROUP BY ?g ORDER BY DESC(?n)",
        "SELECT ?s ?r WHERE { ?s <rank> ?r } ORDER BY DESC(?r)",
        "SELECT (COUNT(DISTINCT ?g) AS ?d) WHERE { ?s <grp> ?g }",
    ] {
        let q = parambench_sparql::parse_query(text).unwrap();
        let prepared = engine.prepare(&q).unwrap();
        let want = engine.execute_with(&prepared, &budget_cfg(None)).unwrap();
        for budget in [0usize, 1] {
            let got = engine.execute_with(&prepared, &budget_cfg(Some(budget))).unwrap();
            assert_eq!(got.results, want.results, "budget {budget} broke {text}");
            assert_eq!(got.cout, want.cout, "budget {budget} changed Cout of {text}");
        }
    }
}

#[test]
fn empty_input_aggregate_over_the_spill_path_yields_one_row() {
    let ds = grouped_dataset(100, 10);
    let engine = Engine::new(&ds);
    // The filter rejects every row; budget 0 arms the external fold
    // eagerly, so the implicit-group rule must hold on the spill path too.
    let q = parambench_sparql::parse_query(
        "SELECT (COUNT(?r) AS ?n) (SUM(?r) AS ?sum) (AVG(?r) AS ?avg) \
         WHERE { ?s <rank> ?r . FILTER(?r > 1000) }",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let out = engine.execute_with(&prepared, &budget_cfg(Some(0))).unwrap();
    assert_eq!(out.results.len(), 1);
    assert_eq!(out.results.rows[0][0].as_num(), Some(0.0));
    assert_eq!(out.results.rows[0][1].as_num(), Some(0.0));
    assert!(matches!(out.results.rows[0][2], OutVal::Unbound));
}

#[test]
fn spill_runs_are_cleaned_up_and_limit_exits_promptly_under_budget() {
    let morsel_rows = 64;
    let n = MORSELS_PER_WAVE * morsel_rows * 2;
    let ds = grouped_dataset(n, 300);
    let mut engine = Engine::new(&ds);
    let spill_base = std::env::temp_dir().join(format!("parambench-test-{}", std::process::id()));
    engine.set_spill_dir(&spill_base);

    // A spilling GROUP BY + ORDER BY + LIMIT under a forced-parallel
    // config: workers drain (aggregation needs all input), the fold
    // spills, and every run file is gone once the query returns.
    let q = parambench_sparql::parse_query(
        "SELECT ?g (COUNT(?s) AS ?n) WHERE { ?s <grp> ?g . ?s <rank> ?r } \
         GROUP BY ?g ORDER BY DESC(?n) LIMIT 5",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let exec = ExecConfig {
        threads: 4,
        morsel_rows,
        min_driver_rows: 1,
        min_est_cost: 0.0,
        mem_budget_rows: Some(8),
    };
    let spilled = engine.execute_with(&prepared, &exec).unwrap();
    let serial = engine.execute_with(&prepared, &budget_cfg(None)).unwrap();
    assert_eq!(spilled.results, serial.results);
    assert!(spilled.stats.spilled_rows > 0, "400 groups must overflow a budget of 8");
    let leftovers: Vec<_> = std::fs::read_dir(&spill_base)
        .map(|d| d.filter_map(|e| e.ok()).collect())
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "spill runs not cleaned up: {leftovers:?}");

    // A plain LIMIT under the same budget: output-bound queries never
    // block, so nothing spills and the early exit stays batch-granular —
    // upstream workers stop promptly instead of draining the scan.
    let q = parambench_sparql::parse_query(
        "SELECT ?s ?g ?r WHERE { ?s <grp> ?g . ?s <rank> ?r } LIMIT 9",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let out = engine.execute_with(&prepared, &exec).unwrap();
    assert_eq!(out.results.len(), 9);
    assert_eq!(out.stats.spilled_rows, 0, "LIMIT early exit must not spill");
    let bound = n as u64 + 4 * parambench_sparql::BATCH_SIZE as u64;
    assert!(
        out.stats.scanned <= bound,
        "LIMIT early exit under a budget did too much work: scanned {} (bound {bound})",
        out.stats.scanned
    );
    let _ = std::fs::remove_dir_all(&spill_base);
}

#[test]
fn spill_write_failure_surfaces_as_typed_exec_error() {
    let ds = grouped_dataset(500, 100);
    let mut engine = Engine::new(&ds);
    // Point the spill base at a regular file: creating the per-run spill
    // directory under it must fail, and the failure must come back as the
    // typed error — not a panic, not a generic Unsupported.
    let bogus = std::env::temp_dir().join(format!("parambench-not-a-dir-{}", std::process::id()));
    std::fs::write(&bogus, b"occupied").unwrap();
    engine.set_spill_dir(&bogus);
    let q = parambench_sparql::parse_query(
        "SELECT ?g (COUNT(?s) AS ?n) WHERE { ?s <grp> ?g } GROUP BY ?g",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let err = engine.execute_with(&prepared, &budget_cfg(Some(4))).unwrap_err();
    match err {
        QueryError::Exec(e) => {
            assert_eq!(e.op, "create spill dir");
            assert!(e.path.starts_with(&bogus), "error path {:?} not under {bogus:?}", e.path);
            assert!(!e.message.is_empty());
        }
        other => panic!("expected QueryError::Exec, got {other:?}"),
    }
    // In-memory execution of the same prepared query is unaffected.
    assert!(engine.execute_with(&prepared, &budget_cfg(None)).is_ok());
    let _ = std::fs::remove_file(&bogus);
}

#[test]
fn distinct_under_unprojected_sort_key_streams_with_bounded_peak() {
    // 6000 input rows collapse to 10 distinct groups; the sort key ?r is
    // not projected. The sort-aware dedup must reproduce the materializing
    // fallback row-for-row while holding only the distinct values.
    let ds = grouped_dataset(6000, 10);
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT DISTINCT ?g WHERE { ?s <grp> ?g . ?s <rank> ?r } ORDER BY ASC(?r)",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let pushed = engine.execute(&prepared).unwrap();
    let unpushed = engine.execute_unpushed(&prepared).unwrap();
    assert_eq!(pushed.results, unpushed.results, "sort-aware dedup diverged from fallback");
    assert_eq!(pushed.results.len(), 10);
    assert_eq!(pushed.cout, unpushed.cout);
    // Regression gate: the streaming dedup holds one entry per distinct
    // value plus in-flight batches — nowhere near the 6000 materialized
    // rows of the old fallback path.
    assert!(
        pushed.stats.peak_tuples <= (10 + 2 * parambench_sparql::BATCH_SIZE) as u64,
        "sort-aware DISTINCT peak {} should be bounded by distinct values + batches",
        pushed.stats.peak_tuples
    );
    assert!(
        pushed.stats.peak_tuples < unpushed.stats.peak_tuples,
        "streaming dedup peak {} not below materializing peak {}",
        pushed.stats.peak_tuples,
        unpushed.stats.peak_tuples
    );
}

#[test]
fn error_messages_are_actionable() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let err = engine.run_text("SELECT ?s WHERE { }").unwrap_err();
    assert!(matches!(err, QueryError::Unsupported(_)));
    let err =
        engine.run_text("SELECT ?s WHERE { ?s <rank> ?r } ORDER BY ASC(?missing)").unwrap_err();
    assert!(matches!(err, QueryError::UnknownVariable(v) if v == "missing"));
    let err = engine
        .run_text("SELECT ?g (AVG(?r) AS ?a) WHERE { ?s <rank> ?r . ?s <group> ?g }")
        .unwrap_err();
    assert!(matches!(err, QueryError::Unsupported(_)), "projected var without GROUP BY");
}
