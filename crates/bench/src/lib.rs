//! # parambench-bench
//!
//! Experiment harness regenerating **every table and numeric claim** of
//! "How to generate query parameters in RDF benchmarks?"
//! (Gubichev, Angles, Boncz — ICDE 2014).
//!
//! One binary per experiment (see DESIGN.md's experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `e1_variance` | E1: runtime variance of BSBM-BI Q4; KS distance of Q2 vs normal |
//! | `e2_stability` | E2: 4×100-binding group table for LDBC Q2 + BSBM Q2 deltas |
//! | `e3_bimodal` | E3: Min/Median/Mean/q95/Max table for BSBM-BI Q4, bimodality |
//! | `e4_plans` | E4: optimal-plan flips of LDBC Q3 across country pairs |
//! | `cost_correlation` | §III: Pearson(Cout, runtime) ≈ 0.85 |
//! | `curation_validation` | §III solution: P1–P3 before/after curation |
//!
//! Run each with `cargo run --release -p parambench-bench --bin <name>`.
//! Dataset scale defaults to ~150k triples per benchmark and can be raised
//! with the `PARAMBENCH_TRIPLES` environment variable.

use parambench_datagen::{Bsbm, BsbmConfig, Snb, SnbConfig};

/// Scale (approximate triples per generated dataset) honoring
/// `PARAMBENCH_TRIPLES`.
pub fn scale() -> usize {
    std::env::var("PARAMBENCH_TRIPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(150_000)
}

/// The standard BSBM instance used by all experiments.
pub fn bsbm() -> Bsbm {
    Bsbm::generate(BsbmConfig::with_scale(scale()))
}

/// The standard SNB instance used by all experiments.
pub fn snb() -> Snb {
    Snb::generate(SnbConfig::with_scale(scale()))
}

/// Formats milliseconds like the paper's tables (ms below 1 s, seconds above).
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1_000.0 {
        format!("{:.2} s", ms / 1_000.0)
    } else {
        format!("{ms:.1} ms")
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a key/value result row, aligned.
pub fn row(key: &str, value: impl std::fmt::Display) {
    println!("{key:<44} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ms_switches_units() {
        assert_eq!(fmt_ms(3.15), "3.1 ms");
        assert_eq!(fmt_ms(2_500.0), "2.50 s");
    }

    #[test]
    fn scale_is_positive() {
        assert!(scale() >= 1_000);
    }
}
