//! # parambench-datagen
//!
//! Deterministic dataset generators for the *parambench* reproduction of
//! "How to generate query parameters in RDF benchmarks?"
//! (Gubichev, Angles, Boncz — ICDE 2014).
//!
//! Three generators, the first two mirroring the paper's two benchmarks:
//!
//! * [`bsbm`] — a Berlin-SPARQL-Benchmark-like product catalog with a
//!   product-type hierarchy (the E1/E3 "type generality" lever) and
//!   type-correlated features;
//! * [`lubm`] — a LUBM-like university graph with size-skewed universities
//!   (the related-work benchmark family, exercising curation generality);
//! * [`snb`] — an LDBC-Social-Network-Benchmark-like graph with S3G2-style
//!   correlations: country-correlated names, location-correlated power-law
//!   friendships, activity-correlated posts, region-correlated travel
//!   (the E2 instability and E4 plan-flip levers).
//!
//! All generators also export their query templates (parameterized in the
//! paper's `%param` notation) and parameter domains.

pub mod bsbm;
pub mod dist;
pub mod lubm;
pub mod names;
pub mod snb;
pub mod updates;

pub use bsbm::{Bsbm, BsbmConfig};
pub use lubm::{Lubm, LubmConfig};
pub use snb::{Snb, SnbConfig};
pub use updates::{MixedWorkload, MixedWorkloadConfig, WorkloadStep};
