//! # parambench-core
//!
//! The primary contribution of the *parambench* reproduction of
//! "How to generate query parameters in RDF benchmarks?"
//! (Gubichev, Angles, Boncz — ICDE 2014): **parameter curation**.
//!
//! The paper shows that drawing query-template parameters uniformly at
//! random over correlated/skewed RDF data yields benchmark numbers that are
//! high-variance (E1), unstable across samples (E2), unrepresentative (E3)
//! and even optimized with different plans (E4). It then formalizes the
//! fix: split the parameter domain `P = P1 × … × Pn` into classes with (a)
//! one `Cout`-optimal plan per class, (b) one cost per class, (c) distinct
//! plans across classes — and sample within classes.
//!
//! This crate implements the full pipeline:
//!
//! ```text
//! ParameterDomain ──profile──▶ BindingProfile* ──cluster──▶ ParameterClass*
//!       │                     (plan signature,               (conditions
//!       │                      estimated Cout)                a, b, c)
//!       └──sample_uniform (baseline)      sample_class (curated) ──▶ Binding*
//!                                                                      │
//!                                 run_workload ◀──────────────────────┘
//!                                      │
//!                              validate (P1 variance, P2 KS-stability,
//!                                        P3 plan uniqueness)
//! ```
//!
//! * [`domain`] — parameter domains: extraction from the dataset,
//!   enumeration, uniform (baseline) sampling;
//! * [`profile`] — one optimizer run per candidate binding (cheap, no
//!   execution);
//! * [`mod@cluster`] — the §III clustering heuristic: signature groups ×
//!   geometric cost bands;
//! * [`curation`] — the end-to-end pipeline and stratified samplers;
//! * [`workload`] — instrumented execution (wall time + measured `Cout`);
//! * [`validate`] — P1–P3 checks with real executions;
//! * [`driver`] — the whole methodology (uniform baseline vs curated
//!   classes, validated) as a one-call suite with Markdown reports.

pub mod cluster;
pub mod curation;
pub mod domain;
pub mod driver;
pub mod error;
pub mod export;
pub mod profile;
pub mod validate;
pub mod workload;

pub use cluster::{cluster, ClusterConfig, Clustering, ParameterClass};
pub use curation::{curate, CuratedWorkload, CurationConfig};
pub use domain::ParameterDomain;
pub use driver::{run_suite, BenchmarkSpec, SuiteConfig, SuiteReport};
pub use error::CurationError;
pub use export::{export_workload, manifest, parse_workload_bindings, ClassArtifact};
pub use profile::{profile_bindings, profile_domain, BindingProfile, CostSource, ProfileConfig};
pub use validate::{
    validate_class, validate_workload, ClassValidation, StabilityTest, ValidationConfig,
};
pub use workload::{run_workload, Measurement, Metric, RunConfig};
