//! The normal distribution and the error function.
//!
//! Self-contained implementations (no external math crates): `erf` uses the
//! Abramowitz–Stegun 7.1.26 rational approximation refined by a couple of
//! Newton-style correction terms — absolute error below 1.5e-7, far below
//! what a Kolmogorov–Smirnov comparison of 100-sample runtimes can resolve.

/// Error function `erf(x)` with absolute error < 1.5e-7.
pub fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun formula 7.1.26.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal probability density function.
pub fn std_normal_pdf(z: f64) -> f64 {
    (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// A normal distribution parameterized by mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    pub mean: f64,
    pub std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be positive and finite.
    pub fn new(mean: f64, std_dev: f64) -> Option<Self> {
        if std_dev > 0.0 && std_dev.is_finite() && mean.is_finite() {
            Some(Normal { mean, std_dev })
        } else {
            None
        }
    }

    /// Fits mean and (population) standard deviation from data; `None` if
    /// fewer than two samples or zero variance.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 {
            return None;
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Normal::new(mean, var.sqrt())
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.std_dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_88),
            (1.0, 0.842_700_79),
            (2.0, 0.995_322_27),
            (-1.0, -0.842_700_79),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {} want {want}", erf(x));
        }
    }

    #[test]
    fn cdf_symmetry_and_bounds() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        for z in [-3.0, -1.0, -0.25, 0.25, 1.0, 3.0] {
            let c = std_normal_cdf(z);
            assert!((0.0..=1.0).contains(&c));
            assert!((c + std_normal_cdf(-z) - 1.0).abs() < 3e-7, "symmetry at {z}");
        }
        assert!(std_normal_cdf(8.0) > 0.999_999);
        assert!(std_normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn pdf_peak_and_decay() {
        assert!((std_normal_pdf(0.0) - 0.398_942_28).abs() < 1e-7);
        assert!(std_normal_pdf(1.0) < std_normal_pdf(0.0));
        assert!(std_normal_pdf(5.0) < 1e-5);
    }

    #[test]
    fn normal_fit() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let n = Normal::fit(&data).unwrap();
        assert!((n.mean - 5.0).abs() < 1e-12);
        assert!((n.std_dev - 2.0).abs() < 1e-12);
        assert!((n.cdf(5.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn fit_rejects_degenerate() {
        assert!(Normal::fit(&[]).is_none());
        assert!(Normal::fit(&[1.0]).is_none());
        assert!(Normal::fit(&[3.0, 3.0, 3.0]).is_none());
        assert!(Normal::new(0.0, 0.0).is_none());
        assert!(Normal::new(0.0, f64::NAN).is_none());
    }
}
