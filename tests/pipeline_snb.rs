//! End-to-end integration: SNB generation → engine → curation, asserting
//! the paper's E2 (instability) and E4 (plan flips) effects and their
//! resolution, all on the deterministic `Cout` metric.

use parambench::curation::{
    curate, profile_bindings, run_workload, CostSource, CurationConfig, Metric, ParameterDomain,
    ProfileConfig, RunConfig,
};
use parambench::datagen::{snb::schema, Snb, SnbConfig};
use parambench::rdf::Term;
use parambench::sparql::Engine;
use parambench::stats::{relative_spread, Summary};

fn small_snb() -> Snb {
    Snb::generate(SnbConfig { persons: 1_500, ..Default::default() })
}

#[test]
fn e2_uniform_groups_disagree_curated_groups_agree() {
    let social = small_snb();
    let engine = Engine::new(&social.dataset);
    let template = Snb::q2_friend_posts();
    let domain = ParameterDomain::single("person", social.person_iris());

    // Uniform baseline: 4 independent groups.
    let uniform_means: Vec<f64> = (0..4)
        .map(|g| {
            let bindings = domain.sample_uniform(80, 300 + g);
            let ms = run_workload(&engine, &template, &bindings, &RunConfig::default()).unwrap();
            Summary::new(&Metric::Cout.series(&ms)).unwrap().mean()
        })
        .collect();
    let uniform_spread = relative_spread(&uniform_means);

    // Curated (measured-cost profiling), 4 groups within class 0.
    let workload = curate(
        &engine,
        &template,
        &domain,
        &CurationConfig {
            profile: ProfileConfig {
                max_bindings: 800,
                cost_source: CostSource::MeasuredCout,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let curated_means: Vec<f64> = (0..4)
        .map(|g| {
            let bindings = workload.sample_class(0, 80, 400 + g).unwrap();
            let ms = run_workload(&engine, &template, &bindings, &RunConfig::default()).unwrap();
            Summary::new(&Metric::Cout.series(&ms)).unwrap().mean()
        })
        .collect();
    let curated_spread = relative_spread(&curated_means);

    assert!(uniform_spread > 0.05, "uniform sampling should be unstable (spread {uniform_spread})");
    assert!(
        curated_spread < uniform_spread,
        "curation should stabilize: {curated_spread} vs {uniform_spread}"
    );
}

#[test]
fn e4_q3_has_multiple_optimal_plans_over_country_pairs() {
    let social = small_snb();
    let engine = Engine::new(&social.dataset);
    let template = Snb::q3_two_countries();
    let persons: Vec<Term> = social.person_iris().into_iter().take(3).collect();
    let countries = social.country_iris();
    let domain = ParameterDomain::new()
        .with("person", persons)
        .with("countryX", countries.clone())
        .with("countryY", countries);
    let bindings = domain.enumerate(600, 9);
    let profiles =
        profile_bindings(&engine, &template, &bindings, CostSource::EstimatedCout).unwrap();
    let mut sigs: Vec<String> = profiles.iter().map(|p| p.signature.to_string()).collect();
    sigs.sort();
    sigs.dedup();
    assert!(sigs.len() >= 2, "expected plan flips, got only {sigs:?}");
}

#[test]
fn e4_curated_classes_isolate_plans() {
    let social = small_snb();
    let engine = Engine::new(&social.dataset);
    let template = Snb::q3_two_countries();
    let persons: Vec<Term> = social.person_iris().into_iter().take(3).collect();
    let countries = social.country_iris();
    let domain = ParameterDomain::new()
        .with("person", persons)
        .with("countryX", countries.clone())
        .with("countryY", countries);
    let workload = curate(&engine, &template, &domain, &CurationConfig::default()).unwrap();
    // Executing any sample of a class must reproduce exactly the class plan.
    for class in workload.classes().iter().take(3) {
        let sample = workload.sample_class(class.id, 10, 5).unwrap();
        let ms = run_workload(&engine, &template, &sample, &RunConfig::default()).unwrap();
        for m in &ms {
            assert_eq!(m.signature, class.signature, "P3 violated inside class {}", class.id);
        }
    }
}

#[test]
fn q2_results_are_posts_of_friends() {
    let social = small_snb();
    let ds = &social.dataset;
    let engine = Engine::new(ds);
    let template = Snb::q2_friend_posts();
    let person = Term::iri(schema::person(2));
    let out = engine
        .run_template(&template, &parambench::sparql::Binding::new().with("person", person.clone()))
        .unwrap();
    let knows = ds.lookup(&Term::iri(schema::KNOWS)).unwrap();
    let creator = ds.lookup(&Term::iri(schema::HAS_CREATOR)).unwrap();
    let pid = ds.lookup(&person).unwrap();
    let friends: std::collections::HashSet<_> =
        ds.scan([Some(pid), Some(knows), None]).map(|t| t[2]).collect();
    assert!(out.results.len() <= 20);
    for row in &out.results.rows {
        let post = ds.lookup(row[0].as_term().unwrap()).unwrap();
        let author = ds.scan([Some(post), Some(creator), None]).next().unwrap()[2];
        assert!(friends.contains(&author), "post not by a friend");
    }
}

#[test]
fn intro_example_name_country_correlation_shows_in_cardinalities() {
    let social = Snb::generate(SnbConfig { persons: 3_000, ..Default::default() });
    let engine = Engine::new(&social.dataset);
    let template = Snb::q1_name_country();
    let li_china = parambench::sparql::Binding::new()
        .with("name", Term::literal("Li"))
        .with("country", Term::iri(schema::country("China")));
    let john_china = parambench::sparql::Binding::new()
        .with("name", Term::literal("John"))
        .with("country", Term::iri(schema::country("China")));
    let li = engine.run_template(&template, &li_china).unwrap();
    let john = engine.run_template(&template, &john_china).unwrap();
    assert!(
        li.results.len() > john.results.len(),
        "Li/China {} should exceed John/China {}",
        li.results.len(),
        john.results.len()
    );
}

#[test]
fn snb_dataset_round_trips_through_ntriples() {
    let social = Snb::generate(SnbConfig { persons: 120, ..Default::default() });
    let mut buf = Vec::new();
    parambench::rdf::ntriples::write_dataset(&social.dataset, &mut buf).unwrap();
    let mut builder = parambench::rdf::StoreBuilder::new();
    parambench::rdf::ntriples::read_into(std::io::Cursor::new(&buf), &mut builder).unwrap();
    let ds2 = builder.freeze();
    assert_eq!(ds2.len(), social.dataset.len());
    // Queries agree on both copies.
    let engine1 = Engine::new(&social.dataset);
    let engine2 = Engine::new(&ds2);
    let q =
        format!("SELECT ?p WHERE {{ ?p <{}> <{}> }}", schema::LIVES_IN, schema::country("China"));
    assert_eq!(
        engine1.run_text(&q).unwrap().results.len(),
        engine2.run_text(&q).unwrap().results.len()
    );
}
