//! End-to-end persistence integration at BSBM scale: generate → freeze →
//! save → load, then serve the full BSBM template suite from the loaded
//! store and demand **bit-identical** output against the in-memory store —
//! rows, row order, `Cout` and the deterministic execution counters. Also
//! asserts the structural zero-rebuild contract (no index builds, no
//! dictionary reorders during load) and exercises the serving layer's
//! warm-start entry point ([`SparqlServer::open`]).

use std::sync::Arc;

use parambench::datagen::{bsbm::schema, Bsbm, BsbmConfig};
use parambench::rdf::store::Dataset;
use parambench::rdf::Term;
use parambench::sparql::serve::{ServeConfig, SparqlServer};
use parambench::sparql::template::{Binding, QueryTemplate};
use parambench::sparql::{Engine, QueryError};

fn suite() -> Vec<(QueryTemplate, Binding)> {
    let root_type = Binding::new().with("type", Term::iri(schema::product_type(0)));
    vec![
        (
            Bsbm::q2_similar_products(),
            Binding::new().with("product", Term::iri(schema::product(0))),
        ),
        (Bsbm::q4_feature_price_by_type(), root_type.clone()),
        (Bsbm::q_cheapest_products_of_type(), root_type.clone()),
        (Bsbm::q_catalog_of_type(), root_type.clone()),
        (Bsbm::q_rating_by_type(), root_type.clone()),
        (Bsbm::q_type_feature_offers(), root_type.with("feature", Term::iri(schema::feature(0)))),
    ]
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("parambench-snapbsbm-{}-{name}", std::process::id()))
}

/// Serializes this binary's tests: the zero-rebuild assertion reads the
/// process-global `diag` counters, and a concurrent test freezing its own
/// dataset would move them.
static DIAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn bsbm_suite_is_bit_identical_on_a_loaded_snapshot() {
    let _guard = DIAG_LOCK.lock().unwrap();
    let data = Bsbm::generate(BsbmConfig { products: 250, ..Default::default() });
    let built = data.dataset;
    let path = temp("suite.pbsnap");
    built.save(&path).expect("snapshot saves");

    let builds = parambench::rdf::diag::index_builds();
    let reorders = parambench::rdf::diag::dict_reorders();
    let loaded = Dataset::load(&path).expect("snapshot loads");
    assert_eq!(parambench::rdf::diag::index_builds(), builds, "load must not build indexes");
    assert_eq!(parambench::rdf::diag::dict_reorders(), reorders, "load must not reorder the dict");
    assert!(loaded.is_loaded(), "all six indexes must come from the snapshot");

    let mem_engine = Engine::new(&built);
    let snap_engine = Engine::new(&loaded);
    let mut served = 0;
    for (template, binding) in suite() {
        let mem_prepared = match mem_engine.prepare_template(&template, &binding) {
            Ok(p) => p,
            Err(e) => panic!("{} fails to prepare in memory: {e}", template.name()),
        };
        let snap_prepared = snap_engine
            .prepare_template(&template, &binding)
            .unwrap_or_else(|e| panic!("{} fails to prepare on snapshot: {e}", template.name()));
        // Same store → same statistics → same plan.
        assert_eq!(mem_prepared.signature, snap_prepared.signature, "{}", template.name());
        let mem = mem_engine.execute(&mem_prepared).expect("in-memory run");
        let snap = snap_engine.execute(&snap_prepared).expect("snapshot run");
        assert_eq!(mem.results, snap.results, "{} rows diverge", template.name());
        assert_eq!(mem.cout, snap.cout, "{} Cout diverges", template.name());
        assert_eq!(mem.stats.scanned, snap.stats.scanned, "{} scanned diverges", template.name());
        assert_eq!(
            mem.stats.peak_tuples,
            snap.stats.peak_tuples,
            "{} peak diverges",
            template.name()
        );
        served += 1;
    }
    assert_eq!(served, 6, "every BSBM template must be served");
    std::fs::remove_file(&path).ok();
}

#[test]
fn server_warm_starts_from_a_snapshot() {
    let _guard = DIAG_LOCK.lock().unwrap();
    let data = Bsbm::generate(BsbmConfig { products: 120, ..Default::default() });
    let path = temp("serve.pbsnap");
    data.dataset.save(&path).expect("snapshot saves");

    let server = SparqlServer::open(&path, ServeConfig::default()).expect("server opens snapshot");
    let baseline = SparqlServer::new(Arc::new(data.dataset), ServeConfig::default());
    for (template, binding) in suite() {
        let warm = server.run(&template, &binding).expect("warm-start serve");
        let cold = baseline.run(&template, &binding).expect("in-memory serve");
        assert_eq!(warm.output.results, cold.output.results, "{}", template.name());
    }
    std::fs::remove_file(&path).ok();

    // And the typed-error path reaches the serving layer unchanged.
    let missing = temp("missing.pbsnap");
    match SparqlServer::open(&missing, ServeConfig::default()) {
        Err(QueryError::Snapshot(e)) => {
            assert!(e.to_string().contains("missing.pbsnap"), "{e}");
        }
        Err(other) => panic!("expected a typed snapshot error, got {other:?}"),
        Ok(_) => panic!("opening a missing snapshot must fail"),
    }
}
