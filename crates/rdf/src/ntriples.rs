//! Minimal N-Triples reader/writer.
//!
//! Supports the subset the generators emit: IRIs in angle brackets, blank
//! nodes, plain / language-tagged / typed literals with the standard string
//! escapes, `#` comment lines and blank lines. Enough to dump a generated
//! dataset to disk and reload it, which the examples use.

use std::io::{BufRead, Write};

use crate::error::RdfError;
use crate::store::StoreBuilder;
use crate::term::{unescape_literal, Literal, Term};

/// Serializes every triple of a frozen dataset in N-Triples syntax.
pub fn write_dataset<W: Write>(ds: &crate::store::Dataset, out: &mut W) -> std::io::Result<()> {
    for t in ds.scan([None, None, None]) {
        writeln!(out, "{} {} {} .", ds.decode(t[0]), ds.decode(t[1]), ds.decode(t[2]))?;
    }
    Ok(())
}

/// Parses N-Triples lines into a [`StoreBuilder`].
pub fn read_into<R: BufRead>(reader: R, builder: &mut StoreBuilder) -> Result<usize, RdfError> {
    let mut n = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| RdfError::Parse(format!("I/O error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (s, p, o) = parse_line(trimmed)
            .map_err(|msg| RdfError::Parse(format!("line {}: {msg}", lineno + 1)))?;
        builder.insert(s, p, o);
        n += 1;
    }
    Ok(n)
}

/// Parses one N-Triples statement (without trailing newline).
pub fn parse_line(line: &str) -> Result<(Term, Term, Term), String> {
    let mut cursor = Cursor { input: line, pos: 0 };
    let s = cursor.term()?;
    let p = cursor.term()?;
    let o = cursor.term()?;
    cursor.skip_ws();
    if !cursor.rest().starts_with('.') {
        return Err(format!("expected '.' at byte {}", cursor.pos));
    }
    cursor.pos += 1;
    cursor.skip_ws();
    if !cursor.rest().is_empty() {
        return Err(format!("trailing content after '.': {:?}", cursor.rest()));
    }
    Ok((s, p, o))
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let rest = self.rest();
        let skipped = rest.len() - rest.trim_start().len();
        self.pos += skipped;
    }

    fn term(&mut self) -> Result<Term, String> {
        self.skip_ws();
        let rest = self.rest();
        if let Some(stripped) = rest.strip_prefix('<') {
            let end = stripped.find('>').ok_or("unterminated IRI")?;
            let iri = &stripped[..end];
            self.pos += end + 2;
            Ok(Term::iri(iri))
        } else if let Some(stripped) = rest.strip_prefix("_:") {
            let end = stripped.find(|c: char| c.is_whitespace()).unwrap_or(stripped.len());
            let label = &stripped[..end];
            if label.is_empty() {
                return Err("empty blank node label".into());
            }
            self.pos += 2 + end;
            Ok(Term::Blank(label.to_string()))
        } else if rest.starts_with('"') {
            self.literal()
        } else {
            Err(format!("unexpected token at byte {}: {:?}", self.pos, rest.chars().next()))
        }
    }

    fn literal(&mut self) -> Result<Term, String> {
        let rest = self.rest();
        debug_assert!(rest.starts_with('"'));
        // Find the closing unescaped quote.
        let bytes = rest.as_bytes();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => break,
                _ => i += 1,
            }
        }
        if i >= bytes.len() {
            return Err("unterminated literal".into());
        }
        let lexical = unescape_literal(&rest[1..i]);
        let mut after = i + 1;
        let tail = &rest[after..];
        let lit = if let Some(stripped) = tail.strip_prefix("^^<") {
            let end = stripped.find('>').ok_or("unterminated datatype IRI")?;
            after += 3 + end + 1;
            Literal::typed(lexical, &stripped[..end])
        } else if let Some(stripped) = tail.strip_prefix('@') {
            let end = stripped.find(|c: char| c.is_whitespace()).unwrap_or(stripped.len());
            if end == 0 {
                return Err("empty language tag".into());
            }
            after += 1 + end;
            Literal::lang(lexical, &stripped[..end])
        } else {
            Literal::plain(lexical)
        };
        self.pos += after;
        Ok(Term::Literal(lit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::xsd;

    #[test]
    fn parse_iri_triple() {
        let (s, p, o) = parse_line("<http://e/a> <http://e/p> <http://e/b> .").unwrap();
        assert_eq!(s, Term::iri("http://e/a"));
        assert_eq!(p, Term::iri("http://e/p"));
        assert_eq!(o, Term::iri("http://e/b"));
    }

    #[test]
    fn parse_literals() {
        let (_, _, o) = parse_line(r#"<a> <p> "plain" ."#).unwrap();
        assert_eq!(o, Term::literal("plain"));
        let (_, _, o) = parse_line(r#"<a> <p> "hello"@en ."#).unwrap();
        assert_eq!(o, Term::Literal(Literal::lang("hello", "en")));
        let (_, _, o) = parse_line(&format!(r#"<a> <p> "42"^^<{}> ."#, xsd::INTEGER)).unwrap();
        assert_eq!(o, Term::integer(42));
        let (_, _, o) = parse_line(r#"<a> <p> "esc\"aped\n" ."#).unwrap();
        assert_eq!(o, Term::literal("esc\"aped\n"));
    }

    #[test]
    fn parse_blank_nodes() {
        let (s, _, o) = parse_line("_:b0 <p> _:b1 .").unwrap();
        assert_eq!(s, Term::Blank("b0".into()));
        assert_eq!(o, Term::Blank("b1".into()));
    }

    #[test]
    fn reject_malformed() {
        assert!(parse_line("<a> <p> .").is_err());
        assert!(parse_line("<a> <p> <b>").is_err());
        assert!(parse_line("<a> <p> \"unterminated .").is_err());
        assert!(parse_line("<a <p> <b> .").is_err());
        assert!(parse_line("<a> <p> <b> . extra").is_err());
    }

    #[test]
    fn round_trip_through_store() {
        let mut b = StoreBuilder::new();
        b.insert(Term::iri("http://e/a"), Term::iri("http://e/p"), Term::literal("x \"y\"\nz"));
        b.insert(Term::iri("http://e/a"), Term::iri("http://e/q"), Term::integer(-7));
        b.insert(Term::Blank("n".into()), Term::iri("http://e/p"), Term::iri("http://e/a"));
        let ds = b.freeze();

        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();

        let mut b2 = StoreBuilder::new();
        let n = read_into(std::io::Cursor::new(&buf), &mut b2).unwrap();
        assert_eq!(n, 3);
        let ds2 = b2.freeze();
        assert_eq!(ds2.len(), ds.len());
        for t in ds.scan([None, None, None]) {
            let s = ds.decode(t[0]).clone();
            let p = ds.decode(t[1]).clone();
            let o = ds.decode(t[2]).clone();
            let pat = [ds2.lookup(&s), ds2.lookup(&p), ds2.lookup(&o)];
            assert!(pat.iter().all(Option::is_some), "missing term after round trip");
            assert!(ds2.contains(pat));
        }
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let input = "# comment\n\n<a> <p> <b> .\n   \n# another\n<a> <p> <c> .\n";
        let mut b = StoreBuilder::new();
        let n = read_into(std::io::Cursor::new(input), &mut b).unwrap();
        assert_eq!(n, 2);
    }
}
