//! # parambench-rdf
//!
//! The RDF substrate of the *parambench* reproduction of
//! "How to generate query parameters in RDF benchmarks?"
//! (Gubichev, Angles, Boncz — ICDE 2014).
//!
//! This crate provides an in-memory, dictionary-encoded triple store with
//! the six classical SPO-permutation indexes (Hexastore / RDF-3X layout),
//! exact pattern cardinalities in `O(log n)`, per-predicate statistics for
//! the optimizer, and a small N-Triples reader/writer.
//!
//! The store is write-once: a [`store::StoreBuilder`] accumulates triples
//! and [`store::StoreBuilder::freeze`] produces an immutable
//! [`store::Dataset`] that is cheap to share across threads.
//!
//! ```
//! use parambench_rdf::store::StoreBuilder;
//! use parambench_rdf::term::Term;
//!
//! let mut b = StoreBuilder::new();
//! b.insert(Term::iri("http://e/alice"), Term::iri("http://e/knows"), Term::iri("http://e/bob"));
//! let ds = b.freeze();
//! let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
//! assert_eq!(ds.count([None, Some(knows), None]), 1);
//! ```

#![warn(missing_docs)]

pub mod dict;
pub mod error;
pub mod index;
pub mod ntriples;
pub mod stats;
pub mod store;
pub mod term;

pub use dict::{Dictionary, Id};
pub use error::RdfError;
pub use store::{Dataset, IdPattern, StoreBuilder};
pub use term::{Literal, LiteralKind, Term};
