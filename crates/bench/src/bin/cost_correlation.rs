//! C1 — §III's justification of `Cout`: "the cost function Cout of the
//! query strongly correlates with its running time (ca. 85% Pearson
//! correlation coefficient)".
//!
//! Reproduced over all four workload templates: per template and pooled,
//! Pearson and Spearman between measured `Cout` and wall-clock runtime.

use parambench_bench::{bsbm, header, row, snb};
use parambench_core::{run_workload, ParameterDomain, RunConfig};
use parambench_datagen::{Bsbm, Snb};
use parambench_sparql::{Engine, QueryTemplate};
use parambench_stats::{pearson, spearman};

fn measure(
    engine: &Engine<'_>,
    template: &QueryTemplate,
    domain: &ParameterDomain,
    n: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let bindings = domain.sample_uniform(n, seed);
    let ms =
        run_workload(engine, template, &bindings, &RunConfig { warmup: 1, ..Default::default() })
            .expect("workload");
    let cout: Vec<f64> = ms.iter().map(|m| m.cout as f64).collect();
    let wall: Vec<f64> = ms.iter().map(|m| m.millis).collect();
    (cout, wall)
}

fn report(name: &str, cout: &[f64], wall: &[f64]) {
    let p = pearson(cout, wall);
    let s = spearman(cout, wall);
    println!(
        "{name:<22} n = {:>4}   Pearson = {}   Spearman = {}",
        cout.len(),
        p.map_or("   n/a".to_string(), |v| format!("{v:+.3}")),
        s.map_or("   n/a".to_string(), |v| format!("{v:+.3}")),
    );
}

fn main() {
    let catalog = bsbm();
    let social = snb();
    println!(
        "datasets: BSBM {} triples, SNB {} triples",
        catalog.dataset.len(),
        social.dataset.len()
    );

    header("C1: Cout vs wall-clock runtime");
    row("paper: Pearson(Cout, runtime)", "≈ 0.85");
    println!();

    let mut pooled_cout = Vec::new();
    let mut pooled_wall = Vec::new();

    {
        let engine = Engine::new(&catalog.dataset);
        let q4 = Bsbm::q4_feature_price_by_type();
        let d = ParameterDomain::single("type", catalog.type_iris());
        let (c, w) = measure(&engine, &q4, &d, 120, 21);
        report("BSBM-BI Q4", &c, &w);
        pooled_cout.extend(&c);
        pooled_wall.extend(&w);

        let q2 = Bsbm::q2_similar_products();
        let d = ParameterDomain::single("product", catalog.product_iris());
        let (c, w) = measure(&engine, &q2, &d, 120, 22);
        report("BSBM-BI Q2", &c, &w);
        pooled_cout.extend(&c);
        pooled_wall.extend(&w);
    }
    {
        let engine = Engine::new(&social.dataset);
        let q2 = Snb::q2_friend_posts();
        let d = ParameterDomain::single("person", social.person_iris());
        let (c, w) = measure(&engine, &q2, &d, 120, 23);
        report("LDBC Q2", &c, &w);
        pooled_cout.extend(&c);
        pooled_wall.extend(&w);

        let q3 = Snb::q3_two_countries();
        let persons: Vec<_> = social.person_iris().into_iter().take(30).collect();
        let countries = social.country_iris();
        let d = ParameterDomain::new()
            .with("person", persons)
            .with("countryX", countries.clone())
            .with("countryY", countries);
        let (c, w) = measure(&engine, &q3, &d, 120, 24);
        report("LDBC Q3", &c, &w);
        pooled_cout.extend(&c);
        pooled_wall.extend(&w);
    }

    println!();
    report("pooled (4 templates)", &pooled_cout, &pooled_wall);
    let pooled = pearson(&pooled_cout, &pooled_wall).unwrap_or(0.0);
    row(
        "shape check (pooled Pearson >= 0.7 expected)",
        if pooled >= 0.7 { "REPRODUCED" } else { "NOT reproduced" },
    );
}
