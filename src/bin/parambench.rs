//! `parambench` — command-line front end.
//!
//! ```text
//! parambench generate <bsbm|snb|lubm> [--triples N] [--seed S] [--out FILE]
//! parambench query    <data.nt> (--text QUERY | --file QUERY.rq) [--explain]
//! parambench curate   <bsbm|snb|lubm> <template> [--triples N] [--epsilon E]
//!                     [--measured] [--sample N]
//! parambench templates
//! ```
//!
//! `generate` writes an N-Triples dump; `query` loads one and runs a SPARQL
//! (subset) query with EXPLAIN/instrumentation; `curate` runs the paper's
//! §III pipeline on a named built-in template and prints the parameter
//! classes plus a sample from the largest class.

use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

use parambench::curation::cluster::ClusterConfig;
use parambench::curation::{curate, CostSource, CurationConfig, ParameterDomain, ProfileConfig};
use parambench::datagen::{Bsbm, BsbmConfig, Lubm, LubmConfig, Snb, SnbConfig};
use parambench::rdf::{ntriples, Dataset, StoreBuilder, Term};
use parambench::sparql::{Engine, QueryTemplate};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  parambench generate <bsbm|snb|lubm> [--triples N] [--seed S] [--out FILE]
  parambench query <data.nt> (--text QUERY | --file QUERY.rq) [--explain]
  parambench curate <bsbm|snb|lubm> <template> [--triples N] [--epsilon E] [--measured] [--sample N]
  parambench templates";

/// Parses `--key value` flags (and bare `--flag` booleans) after the
/// positional arguments.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let key = arg.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {arg:?}"))?;
        let boolean = matches!(key, "explain" | "measured");
        if boolean {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?.clone();
            flags.insert(key.to_string(), value);
            i += 2;
        }
    }
    Ok(flags)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v:?}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("curate") => cmd_curate(&args[1..]),
        Some("templates") => {
            println!("{}", template_listing());
            Ok(())
        }
        _ => Err("missing or unknown subcommand".into()),
    }
}

/// The built-in templates, per generator family.
fn template_listing() -> String {
    "\
bsbm: q2 (similar products, %product)\n\
bsbm: q4 (feature price by type, %type)\n\
bsbm: rating (avg rating by type, %type)\n\
snb:  q1 (person by name+country, %name %country)\n\
snb:  q2 (newest posts of friends, %person)\n\
snb:  q3 (friends-of-friends in two countries, %person %countryX %countryY)\n\
lubm: students (students of professor, %prof)\n\
lubm: staff (university staff, %univ)\n\
lubm: people (department people via UNION, %dept)"
        .to_string()
}

fn generate_dataset(family: &str, triples: usize, seed: u64) -> Result<Dataset, String> {
    Ok(match family {
        "bsbm" => Bsbm::generate(BsbmConfig { seed, ..BsbmConfig::with_scale(triples) }).dataset,
        "snb" => Snb::generate(SnbConfig { seed, ..SnbConfig::with_scale(triples) }).dataset,
        "lubm" => Lubm::generate(LubmConfig { seed, ..LubmConfig::with_scale(triples) }).dataset,
        other => return Err(format!("unknown generator {other:?} (bsbm|snb|lubm)")),
    })
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let family = args.first().ok_or("generate needs a generator name")?;
    let flags = parse_flags(&args[1..])?;
    let triples = flag(&flags, "triples", 100_000usize)?;
    let seed = flag(&flags, "seed", 42u64)?;
    let ds = generate_dataset(family, triples, seed)?;
    eprintln!("generated {} triples ({family}, seed {seed})", ds.len());
    match flags.get("out") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            let mut w = std::io::BufWriter::new(file);
            ntriples::write_dataset(&ds, &mut w).map_err(|e| format!("write: {e}"))?;
            w.flush().map_err(|e| format!("flush: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = std::io::BufWriter::new(stdout.lock());
            ntriples::write_dataset(&ds, &mut lock).map_err(|e| format!("write: {e}"))?;
        }
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("query needs a data file")?;
    let flags = parse_flags(&args[1..])?;
    let text = match (flags.get("text"), flags.get("file")) {
        (Some(t), None) => t.clone(),
        (None, Some(f)) => std::fs::read_to_string(f).map_err(|e| format!("read {f}: {e}"))?,
        _ => return Err("query needs exactly one of --text or --file".into()),
    };

    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut builder = StoreBuilder::new();
    ntriples::read_into(std::io::BufReader::new(file), &mut builder)
        .map_err(|e| format!("parse {path}: {e}"))?;
    let ds = builder.freeze();
    eprintln!("loaded {} triples", ds.len());

    let engine = Engine::new(&ds);
    let query = parambench::sparql::parse_query(&text).map_err(|e| e.to_string())?;
    let prepared = engine.prepare(&query).map_err(|e| e.to_string())?;
    if flags.contains_key("explain") {
        println!("{}", prepared.explain());
    }
    let out = engine.execute(&prepared).map_err(|e| e.to_string())?;
    println!("{}", out.results.render(50));
    eprintln!(
        "{} rows in {:.2} ms, Cout = {}",
        out.results.len(),
        out.wall_time.as_secs_f64() * 1e3,
        out.cout
    );
    Ok(())
}

fn cmd_curate(args: &[String]) -> Result<(), String> {
    let family = args.first().ok_or("curate needs a generator name")?.as_str();
    let tname = args.get(1).ok_or("curate needs a template name (see `templates`)")?.as_str();
    let flags = parse_flags(&args[2..])?;
    let triples = flag(&flags, "triples", 100_000usize)?;
    let epsilon = flag(&flags, "epsilon", 1.0f64)?;
    let sample = flag(&flags, "sample", 10usize)?;
    let cost_source = if flags.contains_key("measured") {
        CostSource::MeasuredCout
    } else {
        CostSource::EstimatedCout
    };

    // Build dataset + template + domain for the requested workload.
    let (ds, template, domain): (Dataset, QueryTemplate, ParameterDomain) = match (family, tname) {
        ("bsbm", "q2") => {
            let g = Bsbm::generate(BsbmConfig::with_scale(triples));
            let d = ParameterDomain::single("product", g.product_iris());
            (g.dataset, Bsbm::q2_similar_products(), d)
        }
        ("bsbm", "q4") => {
            let g = Bsbm::generate(BsbmConfig::with_scale(triples));
            let d = ParameterDomain::single("type", g.type_iris());
            (g.dataset, Bsbm::q4_feature_price_by_type(), d)
        }
        ("bsbm", "rating") => {
            let g = Bsbm::generate(BsbmConfig::with_scale(triples));
            let d = ParameterDomain::single("type", g.type_iris());
            (g.dataset, Bsbm::q_rating_by_type(), d)
        }
        ("snb", "q1") => {
            let g = Snb::generate(SnbConfig::with_scale(triples));
            let names: Vec<Term> = g.name_literals();
            let d = ParameterDomain::new().with("name", names).with("country", g.country_iris());
            (g.dataset, Snb::q1_name_country(), d)
        }
        ("snb", "q2") => {
            let g = Snb::generate(SnbConfig::with_scale(triples));
            let d = ParameterDomain::single("person", g.person_iris());
            (g.dataset, Snb::q2_friend_posts(), d)
        }
        ("snb", "q3") => {
            let g = Snb::generate(SnbConfig::with_scale(triples));
            let persons: Vec<Term> = g.person_iris().into_iter().take(20).collect();
            let d = ParameterDomain::new()
                .with("person", persons)
                .with("countryX", g.country_iris())
                .with("countryY", g.country_iris());
            (g.dataset, Snb::q3_two_countries(), d)
        }
        ("lubm", "students") => {
            let g = Lubm::generate(LubmConfig::with_scale(triples));
            let d = ParameterDomain::single("prof", g.professor_iris());
            (g.dataset, Lubm::q_students_of_professor(), d)
        }
        ("lubm", "staff") => {
            let g = Lubm::generate(LubmConfig::with_scale(triples));
            let d = ParameterDomain::single("univ", g.university_iris());
            (g.dataset, Lubm::q_university_staff(), d)
        }
        ("lubm", "people") => {
            let g = Lubm::generate(LubmConfig::with_scale(triples));
            let d = ParameterDomain::single("dept", g.department_iris());
            (g.dataset, Lubm::q_department_people(), d)
        }
        _ => {
            return Err(format!(
                "unknown workload {family}/{tname}; available:\n{}",
                template_listing()
            ))
        }
    };

    eprintln!("dataset: {} triples; domain: {} bindings", ds.len(), domain.len());
    let engine = Engine::new(&ds);
    let cfg = CurationConfig {
        profile: ProfileConfig { cost_source, ..Default::default() },
        cluster: ClusterConfig { epsilon, ..Default::default() },
    };
    let workload = curate(&engine, &template, &domain, &cfg).map_err(|e| e.to_string())?;
    println!("{}", workload.describe());

    let bindings = workload.sample_class(0, sample, 7).map_err(|e| e.to_string())?;
    println!("sample from class 0:");
    for b in bindings {
        println!("  {b}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_flags_pairs_and_booleans() {
        let flags = parse_flags(&s(&["--triples", "500", "--explain", "--seed", "7"])).unwrap();
        assert_eq!(flags.get("triples").unwrap(), "500");
        assert_eq!(flags.get("seed").unwrap(), "7");
        assert!(flags.contains_key("explain"));
    }

    #[test]
    fn parse_flags_rejects_bad_shapes() {
        assert!(parse_flags(&s(&["triples", "500"])).is_err());
        assert!(parse_flags(&s(&["--triples"])).is_err());
    }

    #[test]
    fn flag_parses_with_default() {
        let flags = parse_flags(&s(&["--epsilon", "0.5"])).unwrap();
        assert_eq!(flag(&flags, "epsilon", 1.0f64).unwrap(), 0.5);
        assert_eq!(flag(&flags, "sample", 10usize).unwrap(), 10);
        assert!(flag::<usize>(&flags, "epsilon", 1).is_err());
    }

    #[test]
    fn unknown_subcommand_is_error() {
        assert!(run(&s(&["bogus"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn generate_dataset_families() {
        for fam in ["bsbm", "snb", "lubm"] {
            let ds = generate_dataset(fam, 5_000, 1).unwrap();
            assert!(ds.len() > 500, "{fam}: {}", ds.len());
        }
        assert!(generate_dataset("nope", 1000, 1).is_err());
    }

    #[test]
    fn templates_listing_mentions_all_families() {
        let text = template_listing();
        for fam in ["bsbm", "snb", "lubm"] {
            assert!(text.contains(fam));
        }
    }
}
