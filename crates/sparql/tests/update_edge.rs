//! Edge cases of the live-update overlay at the query-engine level:
//! the empty-overlay fast path really merges nothing (`ExecStats::
//! overlay_rows == 0`), overflow terms force real sorts instead of
//! misordered "eliminated" ones, a non-overflow overlay keeps sort
//! elimination, and `SparqlServer` invalidates cached plans across an
//! update epoch (the stale-plan regression: a cached sort-eliminated plan
//! must not survive an update that breaks the order invariant).
//!
//! (Store-level edge cases — delete of a never-inserted triple, re-insert
//! after delete, delete-then-compact — live in `rdf::store`'s unit tests.)

use std::sync::Arc;

use parambench_rdf::store::{Dataset, StoreBuilder};
use parambench_rdf::term::Term;
use parambench_sparql::engine::Engine;
use parambench_sparql::parse_query;
use parambench_sparql::serve::{ServeConfig, SparqlServer};
use parambench_sparql::template::{Binding, QueryTemplate};

fn iri(s: &str) -> Term {
    Term::iri(s.to_string())
}

fn run(ds: &Dataset, text: &str) -> parambench_sparql::engine::QueryOutput {
    let engine = Engine::new(ds);
    let query = parse_query(text).unwrap();
    engine.execute(&engine.prepare(&query).unwrap()).unwrap()
}

/// Base store: `s/i --p--> o/…` plus numeric prices.
fn base_store() -> Dataset {
    let mut b = StoreBuilder::new();
    for i in 0..20u32 {
        b.insert(iri(&format!("s/{i:02}")), iri("p"), iri(&format!("o/{:02}", i % 7)));
        b.insert(iri(&format!("s/{i:02}")), iri("price"), Term::integer((i as i64 * 13) % 50));
    }
    b.freeze_in_memory()
}

#[test]
fn empty_overlay_scans_report_zero_merge_overhead() {
    let mut ds = base_store();
    let text = "SELECT ?s ?v WHERE { ?s <p> ?v . }";
    let out = run(&ds, text);
    assert_eq!(out.stats.overlay_rows, 0, "frozen store must take the overlay-free fast path");
    assert_eq!(out.results.len(), 20);

    // The counter is live, not vacuous: the same scan over a non-empty
    // overlay reports the delta entries it merged.
    assert!(ds.insert(iri("s/99"), iri("p"), iri("o/00")));
    assert!(ds.delete(&iri("s/00"), &iri("p"), &iri("o/00")));
    let out = run(&ds, text);
    assert!(out.stats.overlay_rows >= 2, "overlay scan must report its delta entries");
    assert_eq!(out.results.len(), 20);

    // And compaction folds the deltas back in: fast path again.
    ds.compact();
    let out = run(&ds, text);
    assert_eq!(out.stats.overlay_rows, 0, "compacted store must take the fast path again");
}

#[test]
fn overflow_term_order_by_sorts_correctly_between_frozen_ids() {
    let mut ds = base_store();
    // `o/031` did not exist at freeze: it gets an overflow id, but sorts
    // between the frozen terms `o/03` and `o/04` by value.
    assert!(ds.insert(iri("s/00"), iri("p"), iri("o/031")));
    assert!(!ds.order_by_value_intact());

    let text = "SELECT ?v WHERE { ?s <p> ?v . } ORDER BY ASC(?v) LIMIT 30";
    let out = run(&ds, text);
    assert!(out.stats.sorted_rows > 0, "order service must decline under overflow: sort runs");

    // Reference: the same visible set frozen from scratch (value-ordered
    // dictionary includes the new term at its proper rank).
    let mut b = StoreBuilder::new();
    for t in ds.scan([None, None, None]).collect::<Vec<_>>() {
        b.insert(ds.decode(t[0]).clone(), ds.decode(t[1]).clone(), ds.decode(t[2]).clone());
    }
    let fresh = b.freeze_in_memory();
    let fresh_out = run(&fresh, text);
    assert_eq!(out.results, fresh_out.results, "overflow ORDER BY must deliver value order");

    // Compaction restores the invariant and sort elimination.
    ds.compact();
    assert!(ds.order_by_value_intact());
    let out = run(&ds, text);
    assert_eq!(out.stats.sorted_rows, 0, "compacted store eliminates the sort again");
    assert_eq!(out.results, fresh_out.results);
}

#[test]
fn non_overflow_overlay_keeps_sort_elimination() {
    let mut ds = base_store();
    let text = "SELECT ?v WHERE { ?s <p> ?v . } ORDER BY ASC(?v) LIMIT 30";
    let baseline = run(&ds, text);
    assert_eq!(baseline.stats.sorted_rows, 0, "base store eliminates this sort");

    // Updates over *existing* terms only: merged scans stay id-ordered and
    // ids still mean values, so elimination remains sound and active.
    assert!(ds.insert(iri("s/01"), iri("p"), iri("o/05")));
    assert!(ds.delete(&iri("s/02"), &iri("p"), &iri("o/02")));
    assert!(ds.order_by_value_intact());
    let out = run(&ds, text);
    assert_eq!(out.stats.sorted_rows, 0, "non-overflow overlay must keep the elimination");
    assert!(out.stats.overlay_rows > 0, "and the scan really merged overlay entries");

    // Cross-check the order against a from-scratch freeze.
    let mut b = StoreBuilder::new();
    for t in ds.scan([None, None, None]).collect::<Vec<_>>() {
        b.insert(ds.decode(t[0]).clone(), ds.decode(t[1]).clone(), ds.decode(t[2]).clone());
    }
    let fresh_out = run(&b.freeze_in_memory(), text);
    assert_eq!(out.results, fresh_out.results);
}

/// The stale-plan regression: a plan cached before an update must not be
/// served after it. The scenario is chosen so a stale plan would return
/// *wrong* results, not just stale statistics: the cached plan eliminated
/// its ORDER BY (valid at epoch 0), then the update introduces an
/// overflow term that breaks id-order ⇒ value-order — replaying the
/// cached plan would emit the new term last instead of value-sorted.
#[test]
fn server_invalidates_cached_plans_across_epoch_bump() {
    let template = QueryTemplate::parse(
        "catalog",
        "SELECT ?v WHERE { ?s <p> ?v . ?s <price> %min . } ORDER BY ASC(?v)",
    )
    .expect("template parses");
    let binding = Binding::new().with("min", Term::integer(0));

    let mut server = SparqlServer::new(Arc::new(base_store()), ServeConfig::default());
    let first = server.run(&template, &binding).expect("cold run");
    assert!(!first.cache_hit);
    let second = server.run(&template, &binding).expect("warm run");
    assert!(second.cache_hit, "repeat request must hit the plan cache");
    assert_eq!(server.stats().cache_misses, 1);
    assert_eq!(server.stats().epoch, 0);

    // The update: a brand-new object term (overflow id) on a subject with
    // price 0, so it lands in this template's result set.
    server.update(|ds| {
        assert!(ds.insert(iri("s/90"), iri("p"), iri("o/0a")));
        assert!(ds.insert(iri("s/90"), iri("price"), Term::integer(0)));
    });
    let stats = server.stats();
    assert_eq!(stats.epoch, 1);
    assert!(stats.plan_invalidations >= 1, "the cached plan must be discarded");

    let third = server.run(&template, &binding).expect("post-update run");
    assert!(!third.cache_hit, "post-update request must re-prepare, not reuse the stale plan");
    assert_eq!(server.stats().cache_misses, 2);

    // Correctness across the epoch: rows match a cold engine over a
    // from-scratch freeze of the updated visible set (value-sorted, the
    // new term at its proper rank — exactly what a stale sort-eliminated
    // plan would get wrong).
    let mut b = StoreBuilder::new();
    {
        let ds = server.dataset();
        for t in ds.scan([None, None, None]).collect::<Vec<_>>() {
            b.insert(ds.decode(t[0]).clone(), ds.decode(t[1]).clone(), ds.decode(t[2]).clone());
        }
    }
    let fresh = b.freeze_in_memory();
    let engine = Engine::new(&fresh);
    let expected = engine.run_template(&template, &binding).expect("reference run");
    assert_eq!(third.output.results, expected.results, "rows diverge across the epoch bump");
    assert!(
        third.output.results.rows.iter().any(|r| format!("{:?}", r).contains("o/0a")),
        "the update's new term must appear in the post-update result"
    );

    // Compaction through the server restores order service; the cache is
    // invalidated again and subsequent plans eliminate the sort.
    server.update(|ds| ds.compact());
    assert_eq!(server.stats().epoch, 2);
    let fourth = server.run(&template, &binding).expect("post-compact run");
    assert!(!fourth.cache_hit);
    assert_eq!(fourth.output.results, expected.results);
    assert_eq!(fourth.output.stats.sorted_rows, 0, "compacted store eliminates the sort");
}
