//! End-to-end comparison of the batched Volcano pipeline against the
//! retained materializing executor on the multi-join BSBM template (BI Q4:
//! a three-pattern star join plus aggregation) — the acceptance gate for
//! the streaming refactor.

use parambench::datagen::{bsbm::schema, Bsbm, BsbmConfig};
use parambench::rdf::Term;
use parambench::sparql::{Binding, Engine};

#[test]
fn q4_streaming_matches_materialized_with_strictly_lower_peak() {
    let data = Bsbm::generate(BsbmConfig { products: 1500, ..Default::default() });
    let engine = Engine::new(&data.dataset);
    let template = Bsbm::q4_feature_price_by_type();
    // The root product type selects every product: the worst case for the
    // materializing executor, which holds each join result in full.
    let binding = Binding::new().with("type", Term::iri(schema::product_type(0)));
    let prepared = engine.prepare_template(&template, &binding).unwrap();

    let streamed = engine.execute(&prepared).unwrap();
    let materialized = engine.execute_materialized(&prepared).unwrap();

    assert_eq!(streamed.results, materialized.results, "result sets must be identical");
    assert_eq!(streamed.cout, materialized.cout, "measured Cout must be identical");
    assert_eq!(streamed.stats.cout, materialized.stats.cout);
    assert_eq!(streamed.stats.cout_optional, materialized.stats.cout_optional);
    assert!(
        streamed.stats.peak_tuples < materialized.stats.peak_tuples,
        "streaming peak {} must be strictly below materialized peak {}",
        streamed.stats.peak_tuples,
        materialized.stats.peak_tuples
    );
}

#[test]
fn optional_queries_also_agree_end_to_end() {
    let data = Bsbm::generate(BsbmConfig { products: 400, ..Default::default() });
    let engine = Engine::new(&data.dataset);
    // Products with their type, optionally a feature — OPTIONAL exercises
    // the streaming left-outer join against the legacy one.
    let text = format!(
        "SELECT ?p ?t ?f WHERE {{ ?p <{ty}> ?t OPTIONAL {{ ?p <{pf}> ?f }} }}",
        ty = schema::RDF_TYPE,
        pf = schema::PRODUCT_FEATURE
    );
    let query = parambench::sparql::parse_query(&text).unwrap();
    let prepared = engine.prepare(&query).unwrap();
    let streamed = engine.execute(&prepared).unwrap();
    let materialized = engine.execute_materialized(&prepared).unwrap();
    let norm = |out: &parambench::sparql::QueryOutput| {
        let mut rows: Vec<String> = out.results.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    };
    assert_eq!(norm(&streamed), norm(&materialized));
    assert_eq!(streamed.cout, materialized.cout);
}
