//! Error type for the query engine.
//!
//! All query-shape problems (parse errors, unknown variables, unsupported
//! constructs, unbound `%parameters`, invalid modifier combinations) are
//! raised at parse or prepare time; in-memory execution almost never fails
//! — a missing constant just yields an empty scan. This split is what lets
//! the curation pipeline probe thousands of candidate bindings cheaply
//! without running them. The execution-time failure classes are
//! out-of-core spilling ([`crate::spill`]): a temp-dir or run-file I/O
//! problem surfaces as a typed [`ExecError`], never a panic — and runtime
//! invariant violations the pipeline checks unconditionally (a merge join
//! observing unsorted input), which surface the same way instead of
//! silently misjoining in release builds.

use std::fmt;
use std::path::PathBuf;

/// A runtime failure of execution: out-of-core spill I/O (directory
/// creation, run-file writes/reads) or a checked pipeline invariant
/// violation. Carries the operation, the path involved (empty for
/// non-I/O failures) and the rendered cause (`std::io::Error` is not
/// `Clone`, so the message is captured as text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// What the engine was doing (e.g. `"create spill dir"`).
    pub op: &'static str,
    /// The file or directory involved (empty for non-I/O failures).
    pub path: PathBuf,
    /// The underlying I/O error, rendered.
    pub message: String,
}

impl ExecError {
    /// A non-I/O execution failure: a checked pipeline invariant that did
    /// not hold at runtime (no path involved).
    pub fn invariant(op: &'static str, message: impl Into<String>) -> Self {
        ExecError { op, path: PathBuf::new(), message: message.into() }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.as_os_str().is_empty() {
            write!(f, "{}: {}", self.op, self.message)
        } else {
            write!(f, "{} {}: {}", self.op, self.path.display(), self.message)
        }
    }
}

impl std::error::Error for ExecError {}

/// Errors raised while parsing, planning or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Query text could not be parsed.
    Parse(String),
    /// A template was planned/executed with unsubstituted parameters.
    UnboundParameter(String),
    /// A projection, order key or filter references an unknown variable.
    UnknownVariable(String),
    /// Query shape not supported by the engine (documented subset).
    Unsupported(String),
    /// Instantiation was given a binding for a parameter the template lacks,
    /// or lacked a binding for one it has.
    BindingMismatch(String),
    /// Out-of-core execution failed (spill I/O).
    Exec(ExecError),
    /// Opening a persisted store snapshot failed (missing file, foreign
    /// bytes, checksum mismatch — see [`parambench_rdf::SnapshotError`]).
    Snapshot(parambench_rdf::SnapshotError),
    /// The write-ahead journal failed (append I/O, corrupt record on
    /// recovery, orphaned journal — see [`parambench_rdf::WalError`]). An
    /// update that surfaces this was **not** committed: the served store
    /// and the journal are both unchanged.
    Wal(parambench_rdf::WalError),
}

impl From<ExecError> for QueryError {
    fn from(e: ExecError) -> Self {
        QueryError::Exec(e)
    }
}

impl From<parambench_rdf::SnapshotError> for QueryError {
    fn from(e: parambench_rdf::SnapshotError) -> Self {
        QueryError::Snapshot(e)
    }
}

impl From<parambench_rdf::WalError> for QueryError {
    fn from(e: parambench_rdf::WalError) -> Self {
        QueryError::Wal(e)
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
            QueryError::UnboundParameter(p) => write!(f, "unbound parameter %{p}"),
            QueryError::UnknownVariable(v) => write!(f, "unknown variable ?{v}"),
            QueryError::Unsupported(msg) => write!(f, "unsupported query shape: {msg}"),
            QueryError::BindingMismatch(msg) => write!(f, "binding mismatch: {msg}"),
            QueryError::Exec(e) => write!(f, "execution error: {e}"),
            QueryError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            QueryError::Wal(e) => write!(f, "journal error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}
