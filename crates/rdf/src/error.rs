//! Error type for the RDF substrate.

use std::fmt;

/// Errors produced while building or loading datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A syntax or I/O problem while parsing serialized RDF.
    Parse(String),
    /// A term was referenced that the dictionary does not contain.
    UnknownTerm(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Parse(msg) => write!(f, "parse error: {msg}"),
            RdfError::UnknownTerm(term) => write!(f, "unknown term: {term}"),
        }
    }
}

impl std::error::Error for RdfError {}
