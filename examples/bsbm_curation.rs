//! BSBM BI Q4 end-to-end: show that uniform parameter sampling breaks
//! P1–P3 and that curation restores them — the paper's §III resolution of
//! its E1/E3 examples ("Q4 would turn into two queries, Q4a and Q4b").
//!
//! ```text
//! cargo run --release --example bsbm_curation
//! ```

use parambench::curation::validate::render_report;
use parambench::curation::{
    curate, run_workload, validate_workload, CurationConfig, Metric, ParameterDomain, RunConfig,
    ValidationConfig,
};
use parambench::datagen::{Bsbm, BsbmConfig};
use parambench::sparql::Engine;
use parambench::stats::Summary;

fn main() {
    let bsbm = Bsbm::generate(BsbmConfig::with_scale(150_000));
    println!(
        "BSBM-like dataset: {} triples, {} product types\n",
        bsbm.dataset.len(),
        bsbm.types.len()
    );
    let engine = Engine::new(&bsbm.dataset);
    let template = Bsbm::q4_feature_price_by_type();
    let domain = ParameterDomain::single("type", bsbm.type_iris());

    // --- The baseline the paper criticizes: uniform random parameters. ---
    let uniform = domain.sample_uniform(100, 1);
    let ms = run_workload(&engine, &template, &uniform, &RunConfig::default()).unwrap();
    let wall = Summary::new(&Metric::WallMillis.series(&ms)).unwrap();
    println!("uniform sampling of %type, 100 bindings (the paper's E1/E3):");
    println!(
        "  min {:.2} ms | median {:.2} ms | mean {:.2} ms | q95 {:.2} ms | max {:.2} ms",
        wall.min(),
        wall.median(),
        wall.mean(),
        wall.quantile(0.95),
        wall.max()
    );
    println!(
        "  variance {:.1} ms^2, coefficient of variation {:.2}, mean/median ratio {:.1}x",
        wall.variance(),
        wall.coeff_of_variation(),
        wall.mean() / wall.median().max(1e-9)
    );
    println!(
        "  bimodality coefficient {:.3} (uniform-distribution threshold 0.555)\n",
        wall.bimodality_coefficient()
    );

    // --- The paper's fix: curate the domain. ---
    let workload = curate(&engine, &template, &domain, &CurationConfig::default()).unwrap();
    println!("curated parameter classes:");
    println!("{}", workload.describe());

    // Validate P1 (variance), P2 (stability), P3 (plan uniqueness) per class.
    let report = validate_workload(
        &engine,
        &workload,
        &ValidationConfig { sample_size: 40, metric: Metric::Cout, ..Default::default() },
    )
    .unwrap();
    println!("P1-P3 validation (metric: measured Cout):");
    println!("{}", render_report(&report));

    let all_ok = report.iter().all(|v| v.all_ok());
    println!(
        "=> {}",
        if all_ok {
            "every curated class satisfies P1-P3"
        } else {
            "some class violates P1-P3 (inspect the table above)"
        }
    );
}
