//! Error type for the curation pipeline.

use std::fmt;

use parambench_sparql::error::QueryError;

/// Errors raised while profiling, clustering or validating parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum CurationError {
    /// A query failed to plan or execute.
    Query(QueryError),
    /// The parameter domain is empty (nothing to curate).
    EmptyDomain(String),
    /// The template's parameters and the domain's dimensions disagree.
    DomainMismatch(String),
    /// No class satisfied the configured constraints.
    NoClasses,
}

impl fmt::Display for CurationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurationError::Query(e) => write!(f, "query error: {e}"),
            CurationError::EmptyDomain(msg) => write!(f, "empty parameter domain: {msg}"),
            CurationError::DomainMismatch(msg) => write!(f, "domain mismatch: {msg}"),
            CurationError::NoClasses => write!(f, "curation produced no parameter classes"),
        }
    }
}

impl std::error::Error for CurationError {}

impl From<QueryError> for CurationError {
    fn from(e: QueryError) -> Self {
        CurationError::Query(e)
    }
}
