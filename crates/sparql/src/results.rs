//! Result-boundary finalization: decoding, precomputed sort keys, and the
//! solution-table fallback for modifiers the pipeline could not stream.
//!
//! Most modifier work now happens *inside* the physical pipeline
//! ([`crate::modifiers`]): DISTINCT, LIMIT/OFFSET early exit, TopK and
//! streaming aggregation all run over raw `Id` batches. What remains here
//! is (a) decoding `Id` rows to terms, (b) the full-sort fallback for
//! ORDER BY without LIMIT (or combined with modifiers that prevent
//! pushdown), and (c) laying out aggregate results as a solution table.
//!
//! Sorting always precomputes one [`SortAtom`] key vector per row — the
//! dictionary is consulted O(n) times, never inside the O(n log n)
//! comparator — and breaks ties by input row order, the same pinned order
//! the streaming [`crate::modifiers::TopK`] operator uses.

use std::cmp::Ordering;
use std::collections::HashSet;

use parambench_rdf::dict::Id;
use parambench_rdf::store::Dataset;
use parambench_rdf::term::Term;

use crate::ast::AggFunc;
use crate::error::QueryError;
use crate::exec::{Bindings, UNBOUND};
use crate::modifiers::{AggState, GroupFold};
use crate::plan::{AggregatePlan, ModifierPlan, TableColSource};

/// A value in a (pre-decoding) solution table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SolVal {
    Id(Id),
    Num(f64),
    Unbound,
}

/// A decoded output value.
#[derive(Debug, Clone, PartialEq)]
pub enum OutVal {
    /// An RDF term from the dataset.
    Term(Term),
    /// A computed numeric value (aggregate result).
    Num(f64),
    /// No binding (OPTIONAL mismatch).
    Unbound,
}

impl OutVal {
    /// Numeric view of the value, when it has one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            OutVal::Num(n) => Some(*n),
            OutVal::Term(t) => t.numeric_value(),
            OutVal::Unbound => None,
        }
    }

    /// The term, if this is one.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            OutVal::Term(t) => Some(t),
            _ => None,
        }
    }
}

impl std::fmt::Display for OutVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutVal::Term(t) => write!(f, "{t}"),
            OutVal::Num(n) => write!(f, "{n}"),
            OutVal::Unbound => write!(f, "UNDEF"),
        }
    }
}

/// The decoded result table of a query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names (projection order).
    pub columns: Vec<String>,
    /// Rows of decoded values.
    pub rows: Vec<Vec<OutVal>>,
}

impl ResultSet {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column index by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Renders a bar-separated table (for examples and reports).
    pub fn render(&self, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        out.push('\n');
        for row in self.rows.iter().take(max_rows) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!("... ({} more rows)\n", self.rows.len() - max_rows));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sort keys
// ---------------------------------------------------------------------------

/// One precomputed sort-key atom. Resolving a value to its atom touches
/// the dictionary (numeric cache + decode) exactly once; comparing two
/// atoms never does.
///
/// Ordering mirrors the engine's "benchmark order": numeric values first
/// (by value, regardless of lexical form), then non-numeric terms in
/// [`Term`] order, unbound last.
#[derive(Debug, Clone, Copy)]
pub enum SortAtom<'a> {
    /// A numeric value (sorts first, by value).
    Num(f64),
    /// A non-numeric term (sorts after numerics, in [`Term`] order).
    Term(&'a Term),
    /// Unbound (sorts last).
    Unbound,
}

impl<'a> SortAtom<'a> {
    /// Resolves an id (or the UNBOUND sentinel) to its sort atom.
    pub fn of_id(id: Id, ds: &'a Dataset) -> SortAtom<'a> {
        if id == UNBOUND {
            return SortAtom::Unbound;
        }
        match ds.dict().numeric(id) {
            Some(n) => SortAtom::Num(n),
            None => SortAtom::Term(ds.decode(id)),
        }
    }

    pub(crate) fn of_solval(v: &SolVal, ds: &'a Dataset) -> SortAtom<'a> {
        match v {
            SolVal::Num(n) => SortAtom::Num(*n),
            SolVal::Id(id) => SortAtom::of_id(*id, ds),
            SolVal::Unbound => SortAtom::Unbound,
        }
    }

    /// Sort atom of an evaluated ORDER BY expression: numbers by value,
    /// terms in term order, booleans as 0/1, unbound and errors last —
    /// the documented expression-key ordering.
    pub(crate) fn of_value(v: &crate::exec::Value, ds: &'a Dataset) -> SortAtom<'a> {
        match v {
            crate::exec::Value::Num(n) => SortAtom::Num(*n),
            crate::exec::Value::Term(id) => SortAtom::of_id(*id, ds),
            crate::exec::Value::Bool(b) => SortAtom::Num(if *b { 1.0 } else { 0.0 }),
            crate::exec::Value::Unbound | crate::exec::Value::Error => SortAtom::Unbound,
        }
    }
}

/// The [`SolVal`] of an evaluated ORDER BY expression (the solution-table
/// materialization of [`SortAtom::of_value`]).
pub(crate) fn solval_of_value(v: &crate::exec::Value) -> SolVal {
    match v {
        crate::exec::Value::Num(n) => SolVal::Num(*n),
        crate::exec::Value::Term(id) => SolVal::Id(*id),
        crate::exec::Value::Bool(b) => SolVal::Num(if *b { 1.0 } else { 0.0 }),
        crate::exec::Value::Unbound | crate::exec::Value::Error => SolVal::Unbound,
    }
}

/// Total order over sort atoms (see [`SortAtom`]).
pub fn cmp_atoms(a: &SortAtom<'_>, b: &SortAtom<'_>) -> Ordering {
    match (a, b) {
        // NaN-last total order: `unwrap_or(Equal)` would make NaN compare
        // equal to everything, which is not transitive and lets sort
        // results depend on the algorithm's comparison order.
        (SortAtom::Num(x), SortAtom::Num(y)) => parambench_rdf::cmp_numeric(*x, *y),
        (SortAtom::Num(_), _) => Ordering::Less,
        (_, SortAtom::Num(_)) => Ordering::Greater,
        (SortAtom::Term(x), SortAtom::Term(y)) => x.cmp(y),
        (SortAtom::Term(_), SortAtom::Unbound) => Ordering::Less,
        (SortAtom::Unbound, SortAtom::Term(_)) => Ordering::Greater,
        (SortAtom::Unbound, SortAtom::Unbound) => Ordering::Equal,
    }
}

/// Hashable identity of a solution value, for DISTINCT over mixed
/// id/numeric rows.
fn solval_key(v: &SolVal) -> u64 {
    match v {
        SolVal::Id(id) => (id.0 as u64) | (1 << 40),
        SolVal::Num(n) => n.to_bits(),
        SolVal::Unbound => u64::MAX - 1,
    }
}

// ---------------------------------------------------------------------------
// Solution tables
// ---------------------------------------------------------------------------

/// Builds the solution table (in [`ModifierPlan::table`] column order) from
/// fully materialized bindings — the non-aggregate fallback path. ORDER BY
/// expression helper columns are evaluated here, once per row.
pub(crate) fn table_from_bindings(
    bindings: &Bindings,
    m: &ModifierPlan,
    ds: &Dataset,
) -> Result<Vec<Vec<SolVal>>, QueryError> {
    enum Col {
        Bind(usize),
        Expr(usize),
    }
    let cols: Vec<Col> = m
        .table
        .iter()
        .map(|c| match c.source {
            TableColSource::Slot(slot) => bindings
                .col_of(slot)
                .map(Col::Bind)
                .ok_or_else(|| QueryError::UnknownVariable(c.name.clone())),
            TableColSource::Expr(i) => Ok(Col::Expr(i)),
            TableColSource::Agg(_) => unreachable!("aggregate column on the plain path"),
        })
        .collect::<Result<_, _>>()?;
    Ok(bindings
        .iter()
        .map(|row| {
            cols.iter()
                .map(|col| match col {
                    Col::Bind(c) => {
                        let id = row[*c];
                        if id == UNBOUND {
                            SolVal::Unbound
                        } else {
                            SolVal::Id(id)
                        }
                    }
                    Col::Expr(i) => {
                        solval_of_value(&m.order_exprs[*i].eval(row, bindings.cols(), ds))
                    }
                })
                .collect()
        })
        .collect())
}

/// Lays out one finished group's accumulators as a solution-table row —
/// shared by the batch layout below and the one-group-at-a-time ordered
/// fold, so the column mapping can never diverge.
pub(crate) fn group_row(
    key: &[Id],
    states: &[AggState],
    m: &ModifierPlan,
    agg: &AggregatePlan,
) -> Vec<SolVal> {
    m.table
        .iter()
        .map(|c| match c.source {
            TableColSource::Slot(slot) => {
                let gi = agg
                    .group_slots
                    .iter()
                    .position(|&g| g == slot)
                    .expect("table slot is a group slot under aggregation");
                let id = key[gi];
                if id == UNBOUND {
                    SolVal::Unbound
                } else {
                    SolVal::Id(id)
                }
            }
            TableColSource::Agg(i) => fold_result(agg.specs[i].func, &states[i]),
            TableColSource::Expr(_) => {
                unreachable!("expression ORDER BY keys are rejected under aggregation")
            }
        })
        .collect()
}

/// Lays out finished [`GroupFold`] accumulators as a solution table.
pub(crate) fn table_from_groups(
    keys: Vec<Vec<Id>>,
    states: Vec<Vec<AggState>>,
    m: &ModifierPlan,
    agg: &AggregatePlan,
) -> Vec<Vec<SolVal>> {
    keys.iter().zip(&states).map(|(key, states)| group_row(key, states, m, agg)).collect()
}

/// The final value of one aggregate accumulator (see [`GroupFold`] for the
/// subset semantics).
pub(crate) fn fold_result(func: AggFunc, st: &AggState) -> SolVal {
    match func {
        AggFunc::Count => SolVal::Num(st.count as f64),
        AggFunc::Sum => SolVal::Num(st.sum),
        AggFunc::Avg => {
            if st.num_count == 0 {
                SolVal::Unbound
            } else {
                SolVal::Num(st.sum / st.num_count as f64)
            }
        }
        AggFunc::Min => {
            if st.num_count == 0 {
                SolVal::Unbound
            } else {
                SolVal::Num(st.min)
            }
        }
        AggFunc::Max => {
            if st.num_count == 0 {
                SolVal::Unbound
            } else {
                SolVal::Num(st.max)
            }
        }
    }
}

/// Runs the modifier stack over a solution table and decodes the result:
/// stable sort by precomputed keys → project to the declared outputs →
/// DISTINCT (unless the pipeline already deduplicated) → OFFSET/LIMIT →
/// decode. `already_sorted` skips the sort (and its `sorted_rows`
/// accounting) when the caller proved the rows arrive in final order —
/// the sort-elimination path behind an order-compatible index scan.
pub(crate) fn finalize_table(
    rows: Vec<Vec<SolVal>>,
    m: &ModifierPlan,
    ds: &Dataset,
    already_distinct: bool,
    already_sorted: bool,
    stats: &mut crate::exec::ExecStats,
) -> ResultSet {
    let mut rows = rows;
    if !m.order_by.is_empty() && !already_sorted {
        stats.sorted_rows += rows.len() as u64;
        // Precompute per-row sort keys once: the dictionary (numeric cache
        // + decode) is touched n·k times total, not inside the comparator.
        let keyed: Vec<Vec<SortAtom<'_>>> = rows
            .iter()
            .map(|row| {
                m.order_by.iter().map(|&(col, _)| SortAtom::of_solval(&row[col], ds)).collect()
            })
            .collect();
        let mut idx: Vec<usize> = (0..rows.len()).collect();
        idx.sort_unstable_by(|&a, &b| {
            for (i, &(_, desc)) in m.order_by.iter().enumerate() {
                let ord = cmp_atoms(&keyed[a][i], &keyed[b][i]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            // Pinned tie-break: input (pipeline) row order.
            a.cmp(&b)
        });
        let mut reordered: Vec<Vec<SolVal>> = Vec::with_capacity(rows.len());
        let mut taken: Vec<Option<Vec<SolVal>>> = rows.into_iter().map(Some).collect();
        for i in idx {
            reordered.push(taken[i].take().expect("each index visited once"));
        }
        rows = reordered;
    }

    // Project to the declared outputs (drops helper sort columns).
    if m.has_helper_cols() {
        for row in &mut rows {
            row.truncate(m.out_width);
        }
    }

    if m.distinct && !already_distinct {
        let mut seen: HashSet<Vec<u64>> = HashSet::with_capacity(rows.len());
        rows.retain(|row| seen.insert(row.iter().map(solval_key).collect()));
    }

    let sliced: Vec<Vec<SolVal>> =
        rows.into_iter().skip(m.offset).take(m.limit.unwrap_or(usize::MAX)).collect();

    let decoded = sliced
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|v| match v {
                    SolVal::Id(id) => OutVal::Term(ds.decode(id).clone()),
                    SolVal::Num(n) => OutVal::Num(n),
                    SolVal::Unbound => OutVal::Unbound,
                })
                .collect()
        })
        .collect();
    ResultSet { columns: m.out_names(), rows: decoded }
}

/// Decodes already-modified pipeline output (the fully pushed plain path):
/// each output column reads the bindings column holding its slot.
pub(crate) fn decode_bindings(bindings: &Bindings, m: &ModifierPlan, ds: &Dataset) -> ResultSet {
    let cols: Vec<usize> = m.table[..m.out_width]
        .iter()
        .map(|c| match c.source {
            TableColSource::Slot(slot) => {
                bindings.col_of(slot).expect("projected slot in pipeline schema")
            }
            TableColSource::Agg(_) => unreachable!("aggregate column on the plain path"),
            TableColSource::Expr(_) => unreachable!("expression keys are never projected"),
        })
        .collect();
    let rows = bindings
        .iter()
        .map(|row| {
            cols.iter()
                .map(|&c| {
                    let id = row[c];
                    if id == UNBOUND {
                        OutVal::Unbound
                    } else {
                        OutVal::Term(ds.decode(id).clone())
                    }
                })
                .collect()
        })
        .collect();
    ResultSet { columns: m.out_names(), rows }
}

/// The materialize-then-modify fallback: applies the full modifier stack
/// of `m` to drained bindings. Used by the unpushed execution path (the
/// baseline the pushdown is measured against) and by pushed plans whose
/// modifier combination cannot stream (e.g. ORDER BY without LIMIT).
pub(crate) fn finalize_bindings(
    bindings: &Bindings,
    m: &ModifierPlan,
    ds: &Dataset,
    stats: &mut crate::exec::ExecStats,
) -> Result<ResultSet, QueryError> {
    let rows = match &m.aggregate {
        Some(agg) => {
            let mut fold = GroupFold::new(agg, bindings.cols(), ds);
            for row in bindings.iter() {
                fold.add_row(row, stats);
            }
            let resident = fold.resident();
            let (keys, states) = fold.finish();
            let rows = table_from_groups(keys, states, m, agg);
            stats.shrink(resident);
            rows
        }
        None => table_from_bindings(bindings, m, ds)?,
    };
    Ok(finalize_table(rows, m, ds, false, false, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outval_display_and_views() {
        assert_eq!(OutVal::Num(2.5).to_string(), "2.5");
        assert_eq!(OutVal::Unbound.to_string(), "UNDEF");
        assert_eq!(OutVal::Term(Term::iri("http://x")).to_string(), "<http://x>");
        assert_eq!(OutVal::Num(3.0).as_num(), Some(3.0));
        assert_eq!(OutVal::Term(Term::integer(4)).as_num(), Some(4.0));
        assert!(OutVal::Unbound.as_num().is_none());
    }

    #[test]
    fn resultset_render_truncates() {
        let rs = ResultSet {
            columns: vec!["a".into()],
            rows: vec![vec![OutVal::Num(1.0)], vec![OutVal::Num(2.0)], vec![OutVal::Num(3.0)]],
        };
        let text = rs.render(2);
        assert!(text.contains("1 more rows"));
        assert_eq!(rs.col("a"), Some(0));
        assert_eq!(rs.col("b"), None);
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn sort_atoms_order_numerics_terms_unbound() {
        let n = SortAtom::Num(3.0);
        let n2 = SortAtom::Num(10.0);
        let ta = Term::iri("a");
        let tb = Term::iri("b");
        let t1 = SortAtom::Term(&ta);
        let t2 = SortAtom::Term(&tb);
        let u = SortAtom::Unbound;
        assert_eq!(cmp_atoms(&n, &n2), Ordering::Less);
        assert_eq!(cmp_atoms(&n2, &t1), Ordering::Less, "numerics before terms");
        assert_eq!(cmp_atoms(&t1, &t2), Ordering::Less);
        assert_eq!(cmp_atoms(&t2, &u), Ordering::Less, "unbound last");
        assert_eq!(cmp_atoms(&u, &u), Ordering::Equal);
    }
}
