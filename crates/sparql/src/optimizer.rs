//! `Cout`-optimal join ordering.
//!
//! Implements dynamic programming over connected subsets (a bitset DP in the
//! DPsize/DPsub family) minimizing the paper's cost function
//!
//! ```text
//! Cout(T) = 0                                if T is a scan
//! Cout(T) = |T| + Cout(T1) + Cout(T2)        if T = T1 ⋈ T2
//! ```
//!
//! Cross products are considered only when no variable-sharing partition
//! exists (disconnected join graphs). Beyond [`EXACT_LIMIT`] patterns the
//! optimizer falls back to a greedy heuristic (cheapest-result-first), which
//! is also exposed for testing.
//!
//! The DP returns provably `Cout`-optimal bushy plans — the exact object the
//! paper's clustering conditions (a)/(b) are defined over.

use std::collections::HashMap;

use parambench_rdf::index::IndexOrder;
use parambench_rdf::store::Dataset;

use crate::cardinality::{Estimate, Estimator};
use crate::error::QueryError;
use crate::exec::OrderExec;
use crate::plan::{PlanNode, PlannedPattern};

/// Maximum number of patterns for the exact subset DP (3^16 ≈ 43M partition
/// enumerations is the practical ceiling; our workloads stay well below).
pub const EXACT_LIMIT: usize = 13;

/// Beyond this many patterns the DP keeps only one candidate per subset
/// (no interesting-order exploration): the Pareto sets multiply the 3^n
/// partition enumeration — and every candidate pays an O(subtree)
/// property derivation — which is only worth it on
/// realistic query sizes. Star/path templates stay well below this.
/// (The per-candidate derivation is `Cand::of_plan`, private.)
pub const ORDER_EXPLORE_LIMIT: usize = 8;

/// Per-subset candidate cap — a safety valve on Pareto-set growth. The
/// overall cheapest candidate always sorts first and is never dropped, so
/// `Cout` optimality is unaffected.
const MAX_CANDS: usize = 8;

/// What the caller would like the final plan's delivered order to look
/// like, plus how aggressively order-based operators may be chosen.
#[derive(Debug, Clone, Default)]
pub struct OrderPrefs {
    /// Desired delivered-order prefix (the ORDER BY slots when the keys
    /// are a direction-uniform run of plain variables; empty = no
    /// preference). A root candidate delivering this prefix escapes the
    /// sort penalty. Direction is not encoded here: a descending run is
    /// served by run-reversed iteration over the same index order.
    pub sort: Vec<usize>,
    /// Merge-join aggressiveness (see [`OrderExec`]). `Off` reproduces the
    /// pre-order-aware planner exactly.
    pub mode: OrderExec,
}

/// Produces the `Cout`-optimal (or greedily approximated) join tree for a
/// set of required triple patterns.
pub fn optimize(patterns: &[PlannedPattern], est: &Estimator<'_>) -> Result<PlanNode, QueryError> {
    optimize_with(patterns, est, &OrderPrefs::default())
}

/// [`optimize`] with explicit interesting-order preferences. The DP keeps
/// the cheapest plan **per delivered order**, not just overall, so an
/// order-producing plan (a sorted index scan feeding a merge join) can win
/// the root selection when it saves a downstream sort or hash build.
///
/// Selection is lexicographic: estimated `Cout` plus a sort penalty when
/// the delivered order misses `prefs.sort` (the paper's cost function stays
/// primary), then estimated hash-build rows (memory), then estimated
/// scanned rows (I/O), then a deterministic structural tiebreak.
pub fn optimize_with(
    patterns: &[PlannedPattern],
    est: &Estimator<'_>,
    prefs: &OrderPrefs,
) -> Result<PlanNode, QueryError> {
    match patterns.len() {
        0 => Err(QueryError::Unsupported("empty basic graph pattern".into())),
        1 => {
            let e = est.scan(&patterns[0]);
            let cands = leaf_cands(&patterns[0], e.card, est.dataset(), prefs);
            Ok(pick_root(cands, e.card, prefs).plan)
        }
        n if n <= EXACT_LIMIT => Ok(dp_optimal(patterns, est, prefs)),
        _ => Ok(greedy(patterns, est)),
    }
}

/// Variable-slot bitmask (up to 64 variables per query).
fn var_mask(pattern: &PlannedPattern) -> u64 {
    let mut m = 0u64;
    for v in pattern.var_slots() {
        assert!(v < 64, "more than 64 variables in one query");
        m |= 1 << v;
    }
    m
}

/// One Pareto candidate of a pattern subset: a plan plus the physical
/// properties the order-aware selection compares. `cost` is the paper's
/// `Cout`; `build`/`scan` are the memory/I/O tiebreaks; `order` is the
/// delivered variable-slot order; `hashish` counts non-merge joins (the
/// [`OrderExec::Force`] preference); `pref` is 0 for the legacy canonical
/// orientation so exact ties reproduce the pre-order-aware plans.
#[derive(Clone)]
struct Cand {
    cost: f64,
    build: f64,
    scan: f64,
    hashish: usize,
    pref: u8,
    order: Vec<usize>,
    sig: String,
    plan: PlanNode,
}

impl Cand {
    /// Builds a candidate around `plan`, deriving every physical property
    /// from the single source of truth in `plan.rs`
    /// (`delivered_order` / `est_build_rows` / `est_scan_rows`), so the
    /// DP's tiebreaks can never drift from what the lowering will do.
    fn of_plan(plan: PlanNode, cost: f64, pref: u8, ds: &Dataset) -> Cand {
        fn hashish(plan: &PlanNode) -> usize {
            match plan {
                PlanNode::Scan { .. } => 0,
                PlanNode::HashJoin { left, right, .. } => 1 + hashish(left) + hashish(right),
                PlanNode::MergeJoin { left, right, .. } => hashish(left) + hashish(right),
            }
        }
        Cand {
            cost,
            build: plan.est_build_rows(ds),
            scan: plan.est_scan_rows(ds),
            hashish: hashish(&plan),
            pref,
            order: plan.delivered_order(ds),
            sig: plan.signature().0,
            plan,
        }
    }
}

/// Total deterministic candidate order: better-first.
fn cmp_cands(a: &Cand, b: &Cand, force: bool) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    a.cost
        .partial_cmp(&b.cost)
        .unwrap_or(Ordering::Equal)
        .then(a.build.partial_cmp(&b.build).unwrap_or(Ordering::Equal))
        .then(if force { a.hashish.cmp(&b.hashish) } else { Ordering::Equal })
        .then(a.scan.partial_cmp(&b.scan).unwrap_or(Ordering::Equal))
        .then(a.pref.cmp(&b.pref))
        .then_with(|| a.sig.cmp(&b.sig))
}

/// Prunes a candidate list: sorted better-first, a candidate is dropped
/// when an already-kept (hence no-worse) candidate's order extends its
/// order — everything the dropped plan's order could later enable, the
/// kept plan enables at no extra cost. Capped at [`MAX_CANDS`]; the
/// overall best candidate always survives.
fn prune_cands(mut cands: Vec<Cand>, force: bool) -> Vec<Cand> {
    cands.sort_by(|a, b| cmp_cands(a, b, force));
    let mut kept: Vec<Cand> = Vec::new();
    for c in cands {
        if kept.len() >= MAX_CANDS {
            break;
        }
        if kept.iter().any(|k| k.order.starts_with(&c.order)) {
            continue;
        }
        kept.push(c);
    }
    kept
}

/// All scan candidates of one pattern: the default index plus (in
/// exploration mode) every alternative index whose delivered order
/// differs — same rows, different interesting order.
fn leaf_cands(pattern: &PlannedPattern, card: f64, ds: &Dataset, prefs: &OrderPrefs) -> Vec<Cand> {
    let mk = |order: Option<IndexOrder>, pref: u8| {
        Cand::of_plan(
            PlanNode::Scan { pattern: pattern.clone(), est_card: card, order },
            0.0,
            pref,
            ds,
        )
    };
    let mut cands = vec![mk(None, 0)];
    if prefs.mode != OrderExec::Off && !pattern.has_absent() {
        let access = pattern.access();
        let default = Dataset::default_order(access);
        for order in
            IndexOrder::all_for_bound(access[0].is_some(), access[1].is_some(), access[2].is_some())
        {
            if order == default {
                continue;
            }
            let cand = mk(Some(order), 1);
            if cands.iter().any(|c| c.order == cand.order) {
                continue;
            }
            cands.push(cand);
        }
    }
    cands
}

/// The root-candidate selection: minimum `Cout` plus the estimated cost of
/// the sort the plan would force (zero when its delivered order serves
/// `prefs.sort`), tie-broken like every other candidate comparison.
fn pick_root(cands: Vec<Cand>, card: f64, prefs: &OrderPrefs) -> Cand {
    let penalty = |c: &Cand| -> f64 {
        if prefs.sort.is_empty() || c.order.starts_with(&prefs.sort) {
            0.0
        } else {
            // n·log2(n) comparisons the avoided sort would have cost.
            card.max(1.0) * card.max(2.0).log2()
        }
    };
    let force = prefs.mode == OrderExec::Force;
    cands
        .into_iter()
        .min_by(|a, b| {
            use std::cmp::Ordering;
            // Penalized total first, then the shared candidate tiebreak
            // chain (whose leading raw-cost compare only matters on
            // equal penalized totals, where it stays deterministic).
            (a.cost + penalty(a))
                .partial_cmp(&(b.cost + penalty(b)))
                .unwrap_or(Ordering::Equal)
                .then_with(|| cmp_cands(a, b, force))
        })
        .expect("non-empty candidate set")
}

/// The canonical estimate of a pattern *subset*: scans folded in ascending
/// pattern-index order.
///
/// Making cardinality a function of the subset alone (not of the join tree
/// that produced it) is what keeps `Cout` well-defined and the subset DP
/// exactly optimal: with history-dependent estimates (e.g. the
/// characteristic-set star bonus surviving only along some join orders),
/// optimal substructure would not hold.
pub fn subset_estimate(patterns: &[PlannedPattern], est: &Estimator<'_>) -> Estimate {
    let mut sorted: Vec<&PlannedPattern> = patterns.iter().collect();
    sorted.sort_by_key(|p| p.idx);
    let mut acc: Option<(Estimate, Vec<usize>)> = None;
    for p in sorted {
        let scan = est.scan(p);
        acc = Some(match acc {
            None => {
                let vars = p.var_slots();
                (scan, vars)
            }
            Some((prev, mut vars)) => {
                let shared: Vec<usize> =
                    p.var_slots().into_iter().filter(|v| vars.contains(v)).collect();
                let joined = est.join(&prev, &scan, &shared);
                for v in p.var_slots() {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                (joined, vars)
            }
        });
    }
    acc.expect("non-empty pattern set").0
}

/// Exact bitset DP over all pattern subsets, keeping a pruned Pareto set
/// of candidates per subset — the cheapest overall plus the cheapest per
/// distinct *delivered order* (see [`Cand`] / [`prune_cands`]).
///
/// `Cout(T) = Σ canonical-card(leafset(n))` over internal nodes `n`, so the
/// cost of a plan depends only on which subsets its joins materialize — the
/// textbook setting in which subset DP is provably optimal. Every subset's
/// best-first candidate is exactly the old single-plan DP's entry, so
/// `Cout` optimality of the returned root is preserved; the extra
/// candidates only ever *win* the root selection through the sort penalty
/// or the build/scan tiebreaks.
fn dp_optimal(patterns: &[PlannedPattern], est: &Estimator<'_>, prefs: &OrderPrefs) -> PlanNode {
    let ds = est.dataset();
    let n = patterns.len();
    // Interesting-order exploration multiplies the partition enumeration;
    // above the limit (or when ordered execution is off) the DP keeps one
    // candidate per subset, which reproduces the legacy planner.
    let explore = prefs.mode != OrderExec::Off && n <= ORDER_EXPLORE_LIMIT;
    let force = prefs.mode == OrderExec::Force;
    let cap = if explore { MAX_CANDS } else { 1 };
    let full = (1usize << n) - 1;
    let masks: Vec<u64> = patterns.iter().map(var_mask).collect();
    let mut cands: Vec<Vec<Cand>> = vec![Vec::new(); full + 1];
    let mut subset_est: Vec<Option<Estimate>> = vec![None; full + 1];

    // Leaves.
    for (i, p) in patterns.iter().enumerate() {
        let e = est.scan(p);
        let mut leaf = leaf_cands(p, e.card, ds, prefs);
        leaf.truncate(cap.max(1));
        cands[1 << i] = leaf;
        subset_est[1 << i] = Some(e);
    }

    // Subset var masks, for connectivity checks.
    let mut subset_vars = vec![0u64; full + 1];
    for s in 1..=full {
        let lsb = s & s.wrapping_neg();
        subset_vars[s] = subset_vars[s ^ lsb] | masks[lsb.trailing_zeros() as usize];
    }

    for s in 1..=full {
        if s.count_ones() < 2 {
            continue;
        }
        // Canonical estimate of s: fold in the highest-index pattern last,
        // which reproduces the ascending-index fold of `subset_estimate`.
        let hb = 1usize << (usize::BITS - 1 - s.leading_zeros());
        let rest = s ^ hb;
        let shared_hb = subset_vars[rest] & masks[hb.trailing_zeros() as usize];
        let hb_vars: Vec<usize> = (0..64).filter(|&v| shared_hb & (1 << v) != 0).collect();
        let joined = est.join(
            subset_est[rest].as_ref().expect("smaller subset computed"),
            subset_est[hb].as_ref().expect("leaf computed"),
            &hb_vars,
        );
        let subset_card = joined.card;
        subset_est[s] = Some(joined);

        // Enumerate proper non-empty subsets s1 of s; consider each
        // unordered partition once by requiring s1 to contain the lowest
        // bit of s. Cross-product partitions participate too (`Cout`
        // decides) so the DP is truly optimal, matching the exhaustive
        // oracle even on disconnected join graphs.
        let mut new_cands: Vec<Cand> = Vec::new();
        let low = s & s.wrapping_neg();
        let mut s1 = s;
        while s1 > 0 {
            s1 = (s1 - 1) & s;
            if s1 == 0 {
                break;
            }
            if s1 & low == 0 {
                continue;
            }
            let s2 = s ^ s1;
            if cands[s1].is_empty() || cands[s2].is_empty() {
                continue;
            }
            let shared = subset_vars[s1] & subset_vars[s2];
            let join_vars: Vec<usize> = (0..64).filter(|&v| shared & (1 << v) != 0).collect();
            // Canonical orientation: smaller-estimate side left (ties keep
            // the lowest-bit side left), exactly like the legacy DP.
            let card1 = subset_est[s1].as_ref().expect("computed").card;
            let card2 = subset_est[s2].as_ref().expect("computed").card;
            let canonical = if card1 <= card2 { (s1, s2) } else { (s2, s1) };
            let orientations: Vec<(usize, usize)> =
                if explore { vec![(s1, s2), (s2, s1)] } else { vec![canonical] };
            for &(l, r) in &orientations {
                hash_cands(
                    &cands[l],
                    &cands[r],
                    &join_vars,
                    subset_card,
                    (l, r) == canonical,
                    ds,
                    &mut new_cands,
                );
                if explore && !join_vars.is_empty() {
                    merge_cands(&cands[l], &cands[r], &join_vars, subset_card, ds, &mut new_cands);
                }
            }
        }
        let mut pruned = prune_cands(new_cands, force);
        pruned.truncate(cap);
        cands[s] = pruned;
    }

    let root_card = subset_est[full].as_ref().map(|e| e.card).unwrap_or(0.0);
    pick_root(std::mem::take(&mut cands[full]), root_card, prefs).plan
}

/// Emits the hash/bind-join candidates of one oriented split. The stream
/// side's candidates each contribute their delivered order; the build side
/// uses its best candidate only (its order is destroyed by the build).
fn hash_cands(
    left: &[Cand],
    right: &[Cand],
    join_vars: &[usize],
    card: f64,
    canonical: bool,
    ds: &Dataset,
    out: &mut Vec<Cand>,
) {
    // Which side streams is a subset-level property (estimates and scan
    // extents), identical for every candidate pair — mirror PlanNode::lower.
    let binds = PlanNode::binds_right(&left[0].plan, &right[0].plan, join_vars, ds);
    let streams_left = binds || right[0].plan.est_card() <= left[0].plan.est_card();
    let (stream_side, other_side) = if streams_left { (left, right) } else { (right, left) };
    for sc in stream_side {
        let oc = &other_side[0];
        let (lc, rc) = if streams_left { (sc, oc) } else { (oc, sc) };
        let plan = PlanNode::HashJoin {
            left: Box::new(lc.plan.clone()),
            right: Box::new(rc.plan.clone()),
            join_vars: join_vars.to_vec(),
            est_card: card,
        };
        let pref = if canonical { sc.pref } else { 1 };
        out.push(Cand::of_plan(plan, lc.cost + rc.cost + card, pref, ds));
    }
}

/// Emits the merge-join candidates of one oriented split: every candidate
/// pair whose delivered orders both start with the same permutation of the
/// join variables zips without a build phase, delivering the left order.
fn merge_cands(
    left: &[Cand],
    right: &[Cand],
    join_vars: &[usize],
    card: f64,
    ds: &Dataset,
    out: &mut Vec<Cand>,
) {
    for lc in left {
        if lc.order.len() < join_vars.len() {
            continue;
        }
        let key = &lc.order[..join_vars.len()];
        if !join_vars.iter().all(|v| key.contains(v)) {
            continue;
        }
        for rc in right {
            if !rc.order.starts_with(key) {
                continue;
            }
            let plan = PlanNode::MergeJoin {
                left: Box::new(lc.plan.clone()),
                right: Box::new(rc.plan.clone()),
                key: key.to_vec(),
                est_card: card,
            };
            out.push(Cand::of_plan(plan, lc.cost + rc.cost + card, 1, ds));
        }
    }
}

/// Greedy join ordering: start from the smallest pattern, repeatedly join
/// the remaining pattern minimizing the resulting cardinality, preferring
/// var-sharing joins over cross products. Used beyond [`EXACT_LIMIT`] and as
/// a test oracle for "reasonable but not optimal".
pub fn greedy(patterns: &[PlannedPattern], est: &Estimator<'_>) -> PlanNode {
    assert!(!patterns.is_empty());
    let mut remaining: Vec<(PlannedPattern, Estimate)> =
        patterns.iter().map(|p| (p.clone(), est.scan(p))).collect();

    // Start from the smallest scan.
    let start = remaining
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.card.partial_cmp(&b.1 .1.card).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");
    let (p0, e0) = remaining.swap_remove(start);
    let mut plan = PlanNode::Scan { pattern: p0, est_card: e0.card, order: None };
    let mut cur = e0;
    let mut cur_vars = plan.var_slots();

    while !remaining.is_empty() {
        let mut best_idx = None;
        let mut best_card = f64::INFINITY;
        let mut best_shared: Vec<usize> = Vec::new();
        for (i, (p, e)) in remaining.iter().enumerate() {
            let shared: Vec<usize> =
                p.var_slots().into_iter().filter(|v| cur_vars.contains(v)).collect();
            let j = est.join(&cur, e, &shared);
            // Prefer connected joins: penalize cross products heavily.
            let effective = if shared.is_empty() { j.card * 1e12 } else { j.card };
            if effective < best_card {
                best_card = effective;
                best_idx = Some(i);
                best_shared = shared;
            }
        }
        let (p, e) = remaining.swap_remove(best_idx.expect("non-empty remaining"));
        let joined = est.join(&cur, &e, &best_shared);
        for v in p.var_slots() {
            if !cur_vars.contains(&v) {
                cur_vars.push(v);
            }
        }
        plan = PlanNode::HashJoin {
            left: Box::new(plan),
            right: Box::new(PlanNode::Scan { pattern: p, est_card: e.card, order: None }),
            join_vars: best_shared,
            est_card: joined.card,
        };
        cur = joined;
    }
    // Re-annotate with canonical subset estimates so greedy costs are
    // comparable with the DP's (same cost function).
    annotate_canonical(&mut plan, est);
    plan
}

/// Rewrites every node's `est_card` with the canonical estimate of its leaf
/// pattern set; returns those leaves.
pub fn annotate_canonical(plan: &mut PlanNode, est: &Estimator<'_>) -> Vec<PlannedPattern> {
    match plan {
        PlanNode::Scan { pattern, est_card, .. } => {
            *est_card = est.scan(pattern).card;
            vec![pattern.clone()]
        }
        PlanNode::HashJoin { left, right, est_card, .. }
        | PlanNode::MergeJoin { left, right, est_card, .. } => {
            let mut leaves = annotate_canonical(left, est);
            leaves.extend(annotate_canonical(right, est));
            *est_card = subset_estimate(&leaves, est).card;
            leaves
        }
    }
}

/// Exhaustive plan enumeration (all bushy trees), used as a test oracle to
/// verify DP optimality on small inputs. Costs use the same canonical
/// per-subset cardinalities as the DP. Exponential — tests only.
pub fn exhaustive_min_cout(
    patterns: &[PlannedPattern],
    est: &Estimator<'_>,
) -> Option<(f64, PlanNode)> {
    fn card_of(
        mask: usize,
        patterns: &[PlannedPattern],
        est: &Estimator<'_>,
        cache: &mut HashMap<usize, f64>,
    ) -> f64 {
        if let Some(&c) = cache.get(&mask) {
            return c;
        }
        let members: Vec<PlannedPattern> = (0..patterns.len())
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| patterns[i].clone())
            .collect();
        let c = subset_estimate(&members, est).card;
        cache.insert(mask, c);
        c
    }

    #[allow(clippy::too_many_arguments)]
    fn rec(
        items: Vec<(PlanNode, usize, f64)>, // (plan, leaf mask, cost)
        patterns: &[PlannedPattern],
        est: &Estimator<'_>,
        cache: &mut HashMap<usize, f64>,
        best: &mut Option<(f64, PlanNode)>,
    ) {
        if items.len() == 1 {
            let (plan, _, cost) = &items[0];
            if best.as_ref().is_none_or(|(c, _)| cost < c) {
                *best = Some((*cost, plan.clone()));
            }
            return;
        }
        for i in 0..items.len() {
            for j in 0..items.len() {
                if i == j {
                    continue;
                }
                let (pi, mi, ci) = &items[i];
                let (pj, mj, cj) = &items[j];
                let shared: Vec<usize> =
                    pi.var_slots().into_iter().filter(|v| pj.var_slots().contains(v)).collect();
                let union = mi | mj;
                let card = card_of(union, patterns, est, cache);
                let cost = ci + cj + card;
                let node = PlanNode::HashJoin {
                    left: Box::new(pi.clone()),
                    right: Box::new(pj.clone()),
                    join_vars: shared,
                    est_card: card,
                };
                let mut rest: Vec<(PlanNode, usize, f64)> = items
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != i && *k != j)
                    .map(|(_, it)| it.clone())
                    .collect();
                rest.push((node, union, cost));
                rec(rest, patterns, est, cache, best);
            }
        }
    }

    if patterns.is_empty() {
        return None;
    }
    let items: Vec<(PlanNode, usize, f64)> = patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let e = est.scan(p);
            (PlanNode::Scan { pattern: p.clone(), est_card: e.card, order: None }, 1usize << i, 0.0)
        })
        .collect();
    if items.len() == 1 {
        return Some((0.0, items[0].0.clone()));
    }
    let mut best = None;
    let mut cache = HashMap::new();
    rec(items, patterns, est, &mut cache, &mut best);
    best
}

/// A convenience wrapper retaining per-subset diagnostics (for EXPLAIN and
/// the curation profiler): the chosen plan plus its estimate.
pub struct OptimizedBgp {
    /// The Cout-optimal join tree.
    pub plan: PlanNode,
    /// The root estimate (cardinality + distinct counts).
    pub est: Estimate,
}

/// Optimizes and re-derives the root estimate (distinct counts included).
pub fn optimize_with_estimate(
    patterns: &[PlannedPattern],
    est: &Estimator<'_>,
) -> Result<OptimizedBgp, QueryError> {
    let plan = optimize(patterns, est)?;
    let root_est = reestimate(&plan, est);
    Ok(OptimizedBgp { plan, est: root_est })
}

/// Recomputes the estimate of a plan tree bottom-up (used when a plan is
/// built or transplanted outside the DP).
pub fn reestimate(plan: &PlanNode, est: &Estimator<'_>) -> Estimate {
    fn leaves(plan: &PlanNode, out: &mut Vec<PlannedPattern>) {
        match plan {
            PlanNode::Scan { pattern, .. } => out.push(pattern.clone()),
            PlanNode::HashJoin { left, right, .. } | PlanNode::MergeJoin { left, right, .. } => {
                leaves(left, out);
                leaves(right, out);
            }
        }
    }
    let mut ps = Vec::new();
    leaves(plan, &mut ps);
    subset_estimate(&ps, est)
}

#[allow(dead_code)]
fn _unused(_: &HashMap<usize, f64>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Slot;
    use parambench_rdf::store::{Dataset, StoreBuilder};
    use parambench_rdf::term::Term;

    /// A store with strong selectivity skew: a huge `type` predicate, a
    /// mid-size `feature` predicate and a tiny `special` predicate.
    fn skewed_dataset() -> Dataset {
        let mut b = StoreBuilder::new();
        let ty = Term::iri("p/type");
        let feat = Term::iri("p/feature");
        let special = Term::iri("p/special");
        for i in 0..300 {
            let s = Term::iri(format!("prod/{i}"));
            b.insert(s.clone(), ty.clone(), Term::iri(format!("class/{}", i % 3)));
            b.insert(s.clone(), feat.clone(), Term::iri(format!("feat/{}", i % 30)));
            if i < 5 {
                b.insert(s, special.clone(), Term::iri("flag/on"));
            }
        }
        b.freeze()
    }

    fn pattern(
        ds: &Dataset,
        idx: usize,
        pred: &str,
        obj: Option<&str>,
        s_var: usize,
        o_var: usize,
    ) -> PlannedPattern {
        let p = ds.lookup(&Term::iri(pred)).unwrap();
        let o = match obj {
            Some(o) => Slot::Bound(ds.lookup(&Term::iri(o)).unwrap()),
            None => Slot::Var(o_var),
        };
        PlannedPattern { idx, slots: [Slot::Var(s_var), Slot::Bound(p), o] }
    }

    #[test]
    fn single_pattern_is_a_scan() {
        let ds = skewed_dataset();
        let est = Estimator::new(&ds);
        let pats = vec![pattern(&ds, 0, "p/type", None, 0, 1)];
        let plan = optimize(&pats, &est).unwrap();
        assert!(matches!(plan, PlanNode::Scan { .. }));
        assert_eq!(plan.est_cout(), 0.0);
    }

    #[test]
    fn empty_bgp_is_error() {
        let ds = skewed_dataset();
        let est = Estimator::new(&ds);
        assert!(optimize(&[], &est).is_err());
    }

    #[test]
    fn dp_matches_exhaustive_on_small_queries() {
        let ds = skewed_dataset();
        let est = Estimator::new(&ds);
        // Star query over ?x: type, feature, special.
        let pats = vec![
            pattern(&ds, 0, "p/type", Some("class/0"), 0, 9),
            pattern(&ds, 1, "p/feature", None, 0, 1),
            pattern(&ds, 2, "p/special", Some("flag/on"), 0, 9),
        ];
        let dp = optimize(&pats, &est).unwrap();
        let (oracle_cost, _) = exhaustive_min_cout(&pats, &est).unwrap();
        assert!(
            (dp.est_cout() - oracle_cost).abs() < 1e-6,
            "dp {} vs oracle {oracle_cost}",
            dp.est_cout()
        );
    }

    #[test]
    fn dp_starts_from_most_selective_pattern() {
        let ds = skewed_dataset();
        let est = Estimator::new(&ds);
        let pats = vec![
            pattern(&ds, 0, "p/type", Some("class/0"), 0, 9), // 100 rows
            pattern(&ds, 1, "p/special", Some("flag/on"), 0, 9), // 5 rows
        ];
        let plan = optimize(&pats, &est).unwrap();
        // The cheaper (special) scan should be the build side.
        if let PlanNode::HashJoin { left, .. } = &plan {
            if let PlanNode::Scan { pattern, .. } = left.as_ref() {
                assert_eq!(pattern.idx, 1);
            } else {
                panic!("expected scan on the left");
            }
        } else {
            panic!("expected join");
        }
    }

    #[test]
    fn disconnected_patterns_get_cross_product() {
        let ds = skewed_dataset();
        let est = Estimator::new(&ds);
        let pats = vec![
            pattern(&ds, 0, "p/special", Some("flag/on"), 0, 9),
            pattern(&ds, 1, "p/special", Some("flag/on"), 1, 9), // different var!
        ];
        let plan = optimize(&pats, &est).unwrap();
        if let PlanNode::HashJoin { join_vars, est_card, .. } = &plan {
            assert!(join_vars.is_empty());
            assert_eq!(*est_card, 25.0);
        } else {
            panic!("expected cross join");
        }
    }

    #[test]
    fn greedy_produces_valid_plan_with_all_leaves() {
        let ds = skewed_dataset();
        let est = Estimator::new(&ds);
        let pats = vec![
            pattern(&ds, 0, "p/type", Some("class/1"), 0, 9),
            pattern(&ds, 1, "p/feature", None, 0, 1),
            pattern(&ds, 2, "p/special", Some("flag/on"), 0, 9),
            pattern(&ds, 3, "p/type", None, 2, 1_0), // disconnected from ?x via ?f? no: var 10
        ];
        let plan = greedy(&pats, &est);
        assert_eq!(plan.leaf_count(), 4);
        // Greedy cost is an upper bound on DP cost.
        let dp = optimize(&pats, &est).unwrap();
        assert!(dp.est_cout() <= plan.est_cout() + 1e-9);
    }

    #[test]
    fn chain_query_dp_optimal() {
        let ds = skewed_dataset();
        let est = Estimator::new(&ds);
        // chain: ?a type ?c . ?b feature ?f . ?a feature ?f  (a–f–b chain)
        let pats = vec![
            pattern(&ds, 0, "p/type", None, 0, 2),
            pattern(&ds, 1, "p/feature", None, 1, 3),
            PlannedPattern {
                idx: 2,
                slots: [
                    Slot::Var(0),
                    Slot::Bound(ds.lookup(&Term::iri("p/feature")).unwrap()),
                    Slot::Var(3),
                ],
            },
        ];
        let dp = optimize(&pats, &est).unwrap();
        let (oracle, _) = exhaustive_min_cout(&pats, &est).unwrap();
        assert!((dp.est_cout() - oracle).abs() < 1e-6);
        assert_eq!(dp.leaf_count(), 3);
    }

    /// A multiplying star: every product carries several features, so the
    /// (type ⋈ feature) intermediate exceeds the price extent and the
    /// legacy planner must hash-build — exactly where the order-aware DP
    /// should find the all-merge plan instead.
    fn multiplying_star() -> Dataset {
        let mut b = StoreBuilder::new();
        for i in 0..200 {
            let s = Term::iri(format!("prod/{i:04}"));
            b.insert(s.clone(), Term::iri("p/type"), Term::iri("class/x"));
            for f in 0..5 {
                b.insert(
                    s.clone(),
                    Term::iri("p/feature"),
                    Term::iri(format!("feat/{}", (i + f) % 40)),
                );
            }
            b.insert(s, Term::iri("p/price"), Term::integer((i % 97) as i64));
        }
        b.freeze()
    }

    #[test]
    fn forced_order_mode_produces_an_all_merge_star_plan() {
        let ds = multiplying_star();
        let est = Estimator::new(&ds);
        let pats = vec![
            pattern(&ds, 0, "p/type", Some("class/x"), 0, 9),
            pattern(&ds, 1, "p/feature", None, 0, 1),
            pattern(&ds, 2, "p/price", None, 0, 2),
        ];
        let legacy =
            optimize_with(&pats, &est, &OrderPrefs { sort: vec![], mode: OrderExec::Off }).unwrap();
        let forced =
            optimize_with(&pats, &est, &OrderPrefs { sort: vec![], mode: OrderExec::Force })
                .unwrap();
        // Same Cout (the paper's cost is join-method blind)...
        assert!((forced.est_cout() - legacy.est_cout()).abs() < 1e-6);
        // ...but every join zips: all three scans deliver the shared
        // subject first, so the whole star runs merge-only, build-free.
        assert_eq!(forced.est_build_rows(&ds), 0.0, "plan: {}", forced.render_physical(&ds, 0));
        assert!(forced.signature().0.contains("MJ("), "{}", forced.signature());
        assert_eq!(forced.leaf_count(), 3);
        // The delivered order leads with the shared subject slot.
        assert_eq!(forced.delivered_order(&ds).first(), Some(&0));
        // Auto mode keeps the selective bind plan here (binds touch less
        // data than a full right-side zip) — merge never displaces a bind.
        let auto = optimize(&pats, &est).unwrap();
        assert!((auto.est_cout() - legacy.est_cout()).abs() < 1e-6);
        assert_eq!(auto.est_build_rows(&ds), 0.0);
    }

    #[test]
    fn sort_preference_flips_the_root_to_an_order_compatible_plan() {
        let ds = multiplying_star();
        let est = Estimator::new(&ds);
        let pats = vec![
            pattern(&ds, 0, "p/type", Some("class/x"), 0, 9),
            pattern(&ds, 1, "p/price", None, 0, 1),
        ];
        // Without preferences: some plan sorted by the subject.
        let plain = optimize(&pats, &est).unwrap();
        assert_eq!(plain.delivered_order(&ds).first(), Some(&0));
        // Preferring the price slot: the DP keeps the POS-scan candidate
        // per its distinct order and the root picks it (Cout ties).
        let prefs = OrderPrefs { sort: vec![1], mode: OrderExec::Auto };
        let by_price = optimize_with(&pats, &est, &prefs).unwrap();
        assert!(
            by_price.delivered_order(&ds).starts_with(&[1]),
            "expected a price-ordered plan, got {}",
            by_price.render_physical(&ds, 0)
        );
        assert!((by_price.est_cout() - plain.est_cout()).abs() < 1e-6, "Cout stays optimal");
    }

    #[test]
    fn reestimate_agrees_with_plan_cards() {
        let ds = skewed_dataset();
        let est = Estimator::new(&ds);
        let pats = vec![
            pattern(&ds, 0, "p/type", Some("class/0"), 0, 9),
            pattern(&ds, 1, "p/feature", None, 0, 1),
        ];
        let opt = optimize_with_estimate(&pats, &est).unwrap();
        assert!((opt.plan.est_card() - opt.est.card).abs() < 1e-9);
    }
}
