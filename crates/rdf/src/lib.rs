//! # parambench-rdf
//!
//! The RDF substrate of the *parambench* reproduction of
//! "How to generate query parameters in RDF benchmarks?"
//! (Gubichev, Angles, Boncz — ICDE 2014).
//!
//! This crate provides an in-memory, dictionary-encoded triple store with
//! the six classical SPO-permutation indexes (Hexastore / RDF-3X layout),
//! exact pattern cardinalities in `O(log n)`, per-predicate statistics for
//! the optimizer, and a small N-Triples reader/writer.
//!
//! The store is write-once: a [`store::StoreBuilder`] accumulates triples
//! and [`store::StoreBuilder::freeze`] produces an immutable
//! [`store::Dataset`] that is cheap to share across threads.
//!
//! A frozen dataset can be persisted with [`store::Dataset::save`] and
//! reloaded with [`store::Dataset::load`], which maps the checksummed
//! snapshot file and serves scans zero-copy from the mapped bytes — no
//! dictionary reorder, no index sort, no per-triple decode (see the
//! [`snapshot`] and [`mod@format`] modules). Live updates on top of the
//! snapshot are made durable by the write-ahead journal ([`wal`]), whose
//! commit/recovery protocol is exercised under injected I/O faults via
//! the [`fault`] seam.
//!
//! ```
//! use parambench_rdf::store::StoreBuilder;
//! use parambench_rdf::term::Term;
//!
//! let mut b = StoreBuilder::new();
//! b.insert(Term::iri("http://e/alice"), Term::iri("http://e/knows"), Term::iri("http://e/bob"));
//! let ds = b.freeze();
//! let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
//! assert_eq!(ds.count([None, Some(knows), None]), 1);
//! ```

#![warn(missing_docs)]

pub mod diag;
pub mod dict;
pub mod error;
pub mod fault;
pub mod format;
pub mod index;
pub mod ntriples;
pub mod overlay;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod term;
pub mod wal;

pub use dict::{cmp_numeric, Dictionary, Id};
pub use error::RdfError;
pub use fault::{Fault, IoOp, IoSeam};
pub use format::SnapshotError;
pub use snapshot::VerifyMode;
pub use store::{Dataset, IdPattern, StoreBuilder};
pub use term::{Literal, LiteralKind, Term};
pub use wal::{LoggedOp, Wal, WalError, WalRecord};
