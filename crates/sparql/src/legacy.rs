//! The original fully-materializing executor, kept for one PR as the
//! differential-testing oracle for the streaming pipeline in
//! [`crate::physical`].
//!
//! Every function here builds complete [`Bindings`] tables for each
//! operator output, so memory scales with exactly the `Cout` quantity the
//! paper studies. The batched Volcano pipeline replaces this as the
//! engine's default execution path; property tests assert both paths
//! produce identical result sets and identical measured `Cout`.

use std::collections::HashMap;

use parambench_rdf::dict::Id;
use parambench_rdf::store::Dataset;

use crate::exec::{Bindings, ExecStats, UNBOUND};
use crate::plan::{PlanNode, Slot};

/// Executes a BGP join tree, producing a fully materialized bindings table.
pub fn execute_plan(ds: &Dataset, plan: &PlanNode, stats: &mut ExecStats) -> Bindings {
    match plan {
        PlanNode::Scan { pattern, .. } => {
            let cols = pattern.var_slots();
            let mut out = Bindings::empty(cols.clone());
            if pattern.has_absent() {
                return out;
            }
            // Positions of each output column within the triple.
            let col_pos: Vec<usize> = cols
                .iter()
                .map(|&v| {
                    pattern
                        .slots
                        .iter()
                        .position(|s| s.as_var() == Some(v))
                        .expect("var comes from this pattern")
                })
                .collect();
            // Repeated-variable equality constraints within the pattern.
            let mut eq_pairs: Vec<(usize, usize)> = Vec::new();
            for i in 0..3 {
                for j in (i + 1)..3 {
                    if let (Slot::Var(a), Slot::Var(b)) = (pattern.slots[i], pattern.slots[j]) {
                        if a == b {
                            eq_pairs.push((i, j));
                        }
                    }
                }
            }
            let mut row = vec![UNBOUND; cols.len()];
            for triple in ds.scan(pattern.access()) {
                stats.scanned += 1;
                if eq_pairs.iter().any(|&(i, j)| triple[i] != triple[j]) {
                    continue;
                }
                for (c, &pos) in col_pos.iter().enumerate() {
                    row[c] = triple[pos];
                }
                out.push_row(&row);
            }
            stats.grow(out.len());
            out
        }
        PlanNode::HashJoin { left, right, join_vars, .. } => {
            let l = execute_plan(ds, left, stats);
            // Adaptive join method: when the right child is a leaf scan that
            // shares variables with the left result, and the left result is
            // smaller than the scan's extent, probe the store per left row
            // (index nested-loop / "bind join") instead of materializing the
            // whole scan. This is how index-based RDF engines execute
            // selective joins, and it is what makes wall-clock time track
            // the *touched* data volume — the effect behind the paper's
            // E1/E3 runtime swings. The join's logical output (and therefore
            // the measured `Cout`) is identical either way.
            let out = match right.as_ref() {
                PlanNode::Scan { pattern, .. }
                    if !join_vars.is_empty()
                        && !pattern.has_absent()
                        && l.len() <= ds.count(pattern.access()) =>
                {
                    let out = bind_join(ds, &l, pattern, join_vars, stats);
                    stats.grow(out.len());
                    stats.shrink(l.len());
                    out
                }
                _ => {
                    let r = execute_plan(ds, right, stats);
                    let out = hash_join(&l, &r, join_vars);
                    stats.grow(out.len());
                    stats.shrink(l.len() + r.len());
                    out
                }
            };
            stats.cout += out.len() as u64;
            stats.join_cards.push((plan.signature().0.clone(), out.len() as u64));
            out
        }
    }
}

/// Index nested-loop join ("bind join"): for every left row, bind the
/// shared variables into the scan pattern and probe the store's indexes.
/// Output equals `hash_join(left, scan(pattern))` but only touches the
/// store range each left row selects.
pub fn bind_join(
    ds: &Dataset,
    left: &Bindings,
    pattern: &crate::plan::PlannedPattern,
    join_vars: &[usize],
    stats: &mut ExecStats,
) -> Bindings {
    let mut out_cols: Vec<usize> = left.cols().to_vec();
    let pattern_vars = pattern.var_slots();
    for &v in &pattern_vars {
        if !out_cols.contains(&v) {
            out_cols.push(v);
        }
    }
    let mut out = Bindings::empty(out_cols.clone());

    // For each triple position: where its value comes from / what must match.
    // A position is either already bound in the pattern, bound via a shared
    // var (left row), or free (emitted into a new column).
    let left_col_of: Vec<Option<usize>> = (0..3)
        .map(|pos| match pattern.slots[pos] {
            Slot::Var(v) if join_vars.contains(&v) => left.col_of(v),
            _ => None,
        })
        .collect();
    let new_cols: Vec<(usize, usize)> = out_cols
        .iter()
        .enumerate()
        .skip(left.cols().len())
        .map(|(k, &v)| {
            let pos = pattern
                .slots
                .iter()
                .position(|s| s.as_var() == Some(v))
                .expect("new column from this pattern");
            (k, pos)
        })
        .collect();
    // Positions whose value must equal another position (repeated vars and
    // pattern vars bound by the left side beyond the first occurrence).
    let mut check: Vec<(usize, usize)> = Vec::new(); // (triple pos, left col)
    let mut eq_pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..3 {
        for j in (i + 1)..3 {
            if let (Slot::Var(a), Slot::Var(b)) = (pattern.slots[i], pattern.slots[j]) {
                if a == b {
                    eq_pairs.push((i, j));
                }
            }
        }
    }

    let mut row_buf = vec![UNBOUND; out_cols.len()];
    for lrow in left.iter() {
        let mut access = pattern.access();
        check.clear();
        for pos in 0..3 {
            if let Some(c) = left_col_of[pos] {
                if lrow[c] == UNBOUND {
                    // Unbound join key (from OPTIONAL) never matches.
                    access = [Some(Id(u32::MAX)), None, None];
                    break;
                }
                if access[pos].is_none() {
                    access[pos] = Some(lrow[c]);
                } else {
                    check.push((pos, c));
                }
            }
        }
        row_buf[..lrow.len()].copy_from_slice(lrow);
        for triple in ds.scan(access) {
            stats.scanned += 1;
            if eq_pairs.iter().any(|&(i, j)| triple[i] != triple[j]) {
                continue;
            }
            if check.iter().any(|&(pos, c)| triple[pos] != lrow[c]) {
                continue;
            }
            for &(k, pos) in &new_cols {
                row_buf[k] = triple[pos];
            }
            out.push_row(&row_buf);
        }
    }
    out
}

/// Inner hash join on the given variable slots (cross product when empty).
/// The smaller input is the build side.
pub fn hash_join(a: &Bindings, b: &Bindings, join_vars: &[usize]) -> Bindings {
    let (build, probe, build_is_left) =
        if a.len() <= b.len() { (a, b, true) } else { (b, a, false) };

    let build_key_cols: Vec<usize> =
        join_vars.iter().map(|&v| build.col_of(v).expect("join var in build side")).collect();
    let probe_key_cols: Vec<usize> =
        join_vars.iter().map(|&v| probe.col_of(v).expect("join var in probe side")).collect();

    // Output schema: all left (a) cols, then right (b) cols not already
    // present — stable regardless of which side builds the hash table.
    let mut out_cols: Vec<usize> = a.cols().to_vec();
    for &c in b.cols() {
        if !out_cols.contains(&c) {
            out_cols.push(c);
        }
    }
    let mut out = Bindings::empty(out_cols.clone());

    let mut table: HashMap<Vec<Id>, Vec<usize>> = HashMap::new();
    for (i, row) in build.iter().enumerate() {
        let key: Vec<Id> = build_key_cols.iter().map(|&c| row[c]).collect();
        table.entry(key).or_default().push(i);
    }

    // Column source map for output assembly.
    let src: Vec<(bool, usize)> = out_cols
        .iter()
        .map(|&v| {
            if let Some(c) = a.col_of(v) {
                (true, c)
            } else {
                (false, b.col_of(v).expect("var from one side"))
            }
        })
        .collect();

    let mut row_buf = vec![UNBOUND; out_cols.len()];
    for prow in probe.iter() {
        let key: Vec<Id> = probe_key_cols.iter().map(|&c| prow[c]).collect();
        if let Some(matches) = table.get(&key) {
            for &bi in matches {
                let brow = build.row(bi);
                let (arow, brow2): (&[Id], &[Id]) =
                    if build_is_left { (brow, prow) } else { (prow, brow) };
                for (k, &(from_a, c)) in src.iter().enumerate() {
                    row_buf[k] = if from_a { arow[c] } else { brow2[c] };
                }
                out.push_row(&row_buf);
            }
        }
    }
    out
}

/// Left-outer hash join for OPTIONAL: all rows of `left` survive; matching
/// rows of `right` extend them, otherwise right-only columns are [`UNBOUND`].
/// Join keys with UNBOUND on the left never match (SPARQL semantics for
/// nested optionals).
pub fn left_outer_join(left: &Bindings, right: &Bindings, join_vars: &[usize]) -> Bindings {
    let mut out_cols: Vec<usize> = left.cols().to_vec();
    for &c in right.cols() {
        if !out_cols.contains(&c) {
            out_cols.push(c);
        }
    }
    let mut out = Bindings::empty(out_cols.clone());

    let right_key_cols: Vec<usize> =
        join_vars.iter().map(|&v| right.col_of(v).expect("join var in right")).collect();
    let left_key_cols: Vec<usize> =
        join_vars.iter().map(|&v| left.col_of(v).expect("join var in left")).collect();

    let mut table: HashMap<Vec<Id>, Vec<usize>> = HashMap::new();
    for (i, row) in right.iter().enumerate() {
        let key: Vec<Id> = right_key_cols.iter().map(|&c| row[c]).collect();
        table.entry(key).or_default().push(i);
    }

    let right_only: Vec<(usize, usize)> = out_cols
        .iter()
        .enumerate()
        .filter(|(_, v)| left.col_of(**v).is_none())
        .map(|(k, &v)| (k, right.col_of(v).expect("right-only var")))
        .collect();

    let mut row_buf = vec![UNBOUND; out_cols.len()];
    for lrow in left.iter() {
        row_buf[..lrow.len()].copy_from_slice(lrow);
        let key: Vec<Id> = left_key_cols.iter().map(|&c| lrow[c]).collect();
        let matches = if key.contains(&UNBOUND) { None } else { table.get(&key) };
        match matches {
            Some(matches) if !matches.is_empty() => {
                for &ri in matches {
                    let rrow = right.row(ri);
                    for &(k, rc) in &right_only {
                        row_buf[k] = rrow[rc];
                    }
                    out.push_row(&row_buf);
                }
            }
            _ => {
                for &(k, _) in &right_only {
                    row_buf[k] = UNBOUND;
                }
                out.push_row(&row_buf);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlannedPattern, Slot};
    use parambench_rdf::store::StoreBuilder;
    use parambench_rdf::term::Term;

    fn dataset() -> Dataset {
        let mut b = StoreBuilder::new();
        let knows = Term::iri("p/knows");
        let age = Term::iri("p/age");
        b.insert(Term::iri("a"), knows.clone(), Term::iri("b"));
        b.insert(Term::iri("a"), knows.clone(), Term::iri("c"));
        b.insert(Term::iri("b"), knows.clone(), Term::iri("c"));
        b.insert(Term::iri("a"), age.clone(), Term::integer(30));
        b.insert(Term::iri("b"), age.clone(), Term::integer(40));
        b.freeze()
    }

    fn scan_plan(ds: &Dataset, pred: &str, s: usize, o: usize, idx: usize) -> PlanNode {
        let p = ds.lookup(&Term::iri(pred)).unwrap();
        PlanNode::Scan {
            pattern: PlannedPattern { idx, slots: [Slot::Var(s), Slot::Bound(p), Slot::Var(o)] },
            est_card: 0.0,
        }
    }

    #[test]
    fn scan_produces_rows() {
        let ds = dataset();
        let mut stats = ExecStats::default();
        let b = execute_plan(&ds, &scan_plan(&ds, "p/knows", 0, 1, 0), &mut stats);
        assert_eq!(b.len(), 3);
        assert_eq!(b.cols(), &[0, 1]);
        assert_eq!(stats.scanned, 3);
        assert_eq!(stats.cout, 0); // scans are free under Cout
    }

    #[test]
    fn join_counts_cout() {
        let ds = dataset();
        // ?x knows ?y . ?y knows ?z  → (a,b,c) and (a knows b, b knows c): rows: a-b-c; also a-c? c knows nothing.
        let plan = PlanNode::HashJoin {
            left: Box::new(scan_plan(&ds, "p/knows", 0, 1, 0)),
            right: Box::new(scan_plan(&ds, "p/knows", 1, 2, 1)),
            join_vars: vec![1],
            est_card: 0.0,
        };
        let mut stats = ExecStats::default();
        let b = execute_plan(&ds, &plan, &mut stats);
        assert_eq!(b.len(), 1); // a knows b, b knows c
        assert_eq!(stats.cout, 1);
        assert_eq!(stats.join_cards.len(), 1);
        let row = b.row(0);
        let col_x = b.col_of(0).unwrap();
        let col_z = b.col_of(2).unwrap();
        assert_eq!(ds.decode(row[col_x]), &Term::iri("a"));
        assert_eq!(ds.decode(row[col_z]), &Term::iri("c"));
    }

    #[test]
    fn join_tracks_peak_intermediate_tuples() {
        let ds = dataset();
        let plan = PlanNode::HashJoin {
            left: Box::new(scan_plan(&ds, "p/knows", 0, 1, 0)),
            right: Box::new(scan_plan(&ds, "p/knows", 1, 2, 1)),
            join_vars: vec![1],
            est_card: 0.0,
        };
        let mut stats = ExecStats::default();
        let b = execute_plan(&ds, &plan, &mut stats);
        // The left scan (3 rows) is materialized while the bind join probes,
        // so the peak is at least the scan plus the output.
        assert!(
            stats.peak_tuples >= (3 + b.len()) as u64,
            "peak {} for output {}",
            stats.peak_tuples,
            b.len()
        );
    }

    #[test]
    fn bind_join_equals_hash_join() {
        let ds = dataset();
        let knows_id = ds.lookup(&Term::iri("p/knows")).unwrap();
        let left =
            execute_plan(&ds, &scan_plan(&ds, "p/knows", 0, 1, 0), &mut ExecStats::default());
        let pattern =
            PlannedPattern { idx: 1, slots: [Slot::Var(1), Slot::Bound(knows_id), Slot::Var(2)] };
        let right = execute_plan(
            &ds,
            &PlanNode::Scan { pattern: pattern.clone(), est_card: 0.0 },
            &mut ExecStats::default(),
        );
        let via_hash = hash_join(&left, &right, &[1]);
        let via_bind = bind_join(&ds, &left, &pattern, &[1], &mut ExecStats::default());
        assert_eq!(via_bind.cols(), via_hash.cols());
        let norm = |b: &Bindings| {
            let mut rows: Vec<Vec<Id>> = b.iter().map(|r| r.to_vec()).collect();
            rows.sort();
            rows
        };
        assert_eq!(norm(&via_bind), norm(&via_hash));
    }

    #[test]
    fn bind_join_skips_unbound_left_keys() {
        let ds = dataset();
        let knows_id = ds.lookup(&Term::iri("p/knows")).unwrap();
        let mut left = Bindings::empty(vec![0, 1]);
        left.push_row(&[ds.lookup(&Term::iri("a")).unwrap(), UNBOUND]);
        let pattern =
            PlannedPattern { idx: 1, slots: [Slot::Var(1), Slot::Bound(knows_id), Slot::Var(2)] };
        let out = bind_join(&ds, &left, &pattern, &[1], &mut ExecStats::default());
        assert!(out.is_empty());
    }

    #[test]
    fn cross_join_when_no_vars() {
        let ds = dataset();
        let a = execute_plan(&ds, &scan_plan(&ds, "p/age", 0, 1, 0), &mut ExecStats::default());
        let b = execute_plan(&ds, &scan_plan(&ds, "p/age", 2, 3, 1), &mut ExecStats::default());
        let j = hash_join(&a, &b, &[]);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn left_outer_join_keeps_unmatched() {
        let ds = dataset();
        let people =
            execute_plan(&ds, &scan_plan(&ds, "p/knows", 0, 1, 0), &mut ExecStats::default());
        let ages = execute_plan(&ds, &scan_plan(&ds, "p/age", 1, 2, 1), &mut ExecStats::default());
        // For each (x knows y), optionally y's age. c has no age.
        let out = left_outer_join(&people, &ages, &[1]);
        assert_eq!(out.len(), 3);
        let age_col = out.col_of(2).unwrap();
        let unbound_rows = out.iter().filter(|r| r[age_col] == UNBOUND).count();
        assert_eq!(unbound_rows, 2); // a-c and b-c: c has no age
    }
}
