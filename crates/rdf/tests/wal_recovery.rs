//! Write-ahead journal crash-recovery suite: a journal must replay its
//! committed prefix exactly, tolerate a torn tail at *every* byte length,
//! surface every in-place corruption as a *typed* [`WalError`] (never a
//! panic, never a silent truncation of acknowledged writes), and — under
//! injected I/O faults — never acknowledge an append that did not reach
//! its fsync.

use parambench_rdf::store::{Dataset, StoreBuilder};
use parambench_rdf::term::Term;
use parambench_rdf::wal::{
    self, encode_record, scan_records, LoggedOp, Wal, WalError, WAL_HEADER_LEN,
};
use parambench_rdf::{Fault, IoOp, IoSeam};

fn iri(s: &str) -> Term {
    Term::iri(format!("http://e/{s}"))
}

fn triple(i: usize) -> (Term, Term, Term) {
    (iri(&format!("s{}", i % 5)), iri(&format!("p{}", i % 3)), Term::integer(i as i64))
}

/// A small frozen base store the journaled updates run on top of.
fn base() -> Dataset {
    let mut b = StoreBuilder::new();
    for i in 0..12 {
        let (s, p, o) = triple(i);
        b.insert(s, p, o);
    }
    b.freeze_in_memory()
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("parambench-walrec-{}-{name}", std::process::id()))
}

/// The decoded visible triple set, id-independent (live and recovered
/// stores may intern overflow terms in different orders only if their
/// update sequences diverged — equality here proves they did not).
fn visible(ds: &Dataset) -> std::collections::BTreeSet<String> {
    ds.scan([None, None, None])
        .map(|[s, p, o]| format!("{:?} {:?} {:?}", ds.decode(s), ds.decode(p), ds.decode(o)))
        .collect()
}

/// Applies a scripted update workload to `ds`, journaling each commit into
/// `wal`. Mix of inserts (some brand-new terms), deletes, and a compact.
fn scripted_workload(ds: &mut Dataset, wal: &mut Wal) -> usize {
    let mut commits = 0;
    let mut commit = |ds: &mut Dataset, f: &dyn Fn(&mut Dataset)| {
        ds.begin_update_log();
        f(ds);
        let ops = ds.take_update_log();
        if !ops.is_empty() {
            wal.append(&ops).expect("append commits");
            commits += 1;
        }
    };
    commit(ds, &|ds| {
        ds.insert_batch((20..26).map(triple));
    });
    commit(ds, &|ds| {
        ds.delete_batch((0..3).map(triple));
    });
    commit(ds, &|ds| {
        ds.insert_batch(vec![(iri("new-subj"), iri("p9"), Term::literal("fresh term"))]);
    });
    commit(ds, &|ds| ds.compact());
    commit(ds, &|ds| {
        ds.insert_batch((30..34).map(triple));
        ds.delete_batch((21..23).map(triple));
    });
    commits
}

/// Builds (base snapshot replayable state, journal file bytes) for the
/// corruption and crash sweeps. Deterministic, so each test builds its own
/// copy under its own temp path.
fn journaled_fixture(name: &str) -> (Dataset, Vec<u8>) {
    let path = temp(name);
    std::fs::remove_file(&path).ok();
    let (mut wal, records) = Wal::open(&path).expect("creates journal");
    assert!(records.is_empty());
    let mut live = base();
    scripted_workload(&mut live, &mut wal);
    drop(wal);
    let bytes = std::fs::read(&path).expect("journal bytes");
    std::fs::remove_file(&path).ok();
    (live, bytes)
}

#[test]
fn append_then_replay_reproduces_the_live_store_exactly() {
    let path = temp("roundtrip.wal");
    std::fs::remove_file(&path).ok();
    let (mut wal, _) = Wal::open(&path).expect("creates");
    let mut live = base();
    let commits = scripted_workload(&mut live, &mut wal);
    assert!(commits >= 5);
    assert_eq!(wal.next_lsn(), commits as u64 + 1);
    drop(wal);

    let (wal, records) = Wal::open(&path).expect("reopens");
    assert_eq!(records.len(), commits);
    let mut recovered = base();
    wal::replay(&mut recovered, &records);
    drop(wal);
    std::fs::remove_file(&path).ok();

    // Same update sequence through the same APIs: ids, not just terms,
    // must agree.
    assert_eq!(
        live.scan([None, None, None]).collect::<Vec<_>>(),
        recovered.scan([None, None, None]).collect::<Vec<_>>()
    );
    assert_eq!(visible(&live), visible(&recovered));
    assert_eq!(live.stats().total_triples, recovered.stats().total_triples);
    assert_eq!(
        live.overlay_entries([None, None, None]),
        recovered.overlay_entries([None, None, None])
    );
}

#[test]
fn empty_and_header_only_journals_recover_to_zero_records() {
    let path = temp("empty.wal");
    std::fs::remove_file(&path).ok();
    let (wal, records) = Wal::open(&path).expect("creates");
    assert!(records.is_empty());
    assert!(wal.is_empty());
    assert_eq!(wal.next_lsn(), 1);
    drop(wal);
    // Reopen the bare header.
    let (wal, records) = Wal::open(&path).expect("reopens");
    assert!(records.is_empty());
    assert_eq!(wal.committed_len(), WAL_HEADER_LEN as u64);
    drop(wal);
    std::fs::remove_file(&path).ok();
}

#[test]
fn crash_during_creation_leaves_recoverable_header_prefixes() {
    let header = wal::wal_file_header();
    for cut in 0..WAL_HEADER_LEN {
        let path = temp(&format!("created-{cut}.wal"));
        std::fs::write(&path, &header[..cut]).unwrap();
        let (mut wal, records) = Wal::open(&path).expect("partial header is a torn creation");
        assert!(records.is_empty(), "cut {cut}");
        // The header was rewritten whole and appends work.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), WAL_HEADER_LEN as u64);
        wal.append(&[LoggedOp::Compact]).expect("appends after repair");
        drop(wal);
        std::fs::remove_file(&path).ok();
    }
    // A short file that is NOT a header prefix is foreign, not torn.
    let path = temp("foreign-short.wal");
    std::fs::write(&path, b"NOTAWAL").unwrap();
    assert_eq!(Wal::open(&path).unwrap_err(), WalError::BadMagic);
    std::fs::remove_file(&path).ok();
}

/// The tentpole sweep: crash the journal at *every* byte length, reopen,
/// and require exactly the committed prefix back — no more (no invented
/// records), no less (no acknowledged record dropped), with the file
/// physically truncated to the record boundary and appendable again.
#[test]
fn torn_tail_at_every_byte_length_recovers_the_committed_prefix() {
    let (_, bytes) = journaled_fixture("torn-src.wal");
    assert!(bytes.len() > WAL_HEADER_LEN + 100, "fixture too small to be meaningful");
    for cut in WAL_HEADER_LEN..=bytes.len() {
        // Pure-scan oracle: scanning the prefix directly gives the
        // committed records this crash must recover.
        let oracle = scan_records(&bytes[..cut]).expect("any prefix of a valid journal scans");
        let path = temp("torn.wal");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (mut wal, records) = Wal::open(&path).expect("torn tails are tolerated");
        assert_eq!(records, oracle.records, "cut at {cut}");
        assert_eq!(wal.committed_len(), oracle.committed_len, "cut at {cut}");
        // Off-by-one in the truncation would leave stray bytes (or eat a
        // committed record): the file must end exactly at the boundary.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), oracle.committed_len, "cut at {cut}");
        // The repaired journal accepts the next commit and round-trips it.
        let lsn = wal.append(&[LoggedOp::Compact]).expect("appends after repair");
        assert_eq!(lsn, records.len() as u64 + 1);
        drop(wal);
        let (_, reread) = Wal::open(&path).expect("reopens after post-repair append");
        assert_eq!(reread.len(), records.len() + 1, "cut at {cut}");
        assert_eq!(reread.last().unwrap().ops, vec![LoggedOp::Compact]);
        std::fs::remove_file(&path).ok();
    }
}

/// In-place corruption is *not* a torn tail: flipping any single byte of a
/// complete journal must surface as a typed error — header checksums cover
/// the length/LSN fields, payload checksums cover the ops.
#[test]
fn every_flipped_byte_in_a_complete_journal_is_typed() {
    let (_, bytes) = journaled_fixture("flip-src.wal");
    let mut rejected = 0usize;
    for pos in 0..bytes.len() {
        for mask in [0x01u8, 0x80] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= mask;
            let err = scan_records(&corrupt)
                .expect_err(&format!("flip at {pos} mask {mask:#x} must not scan clean"));
            assert!(
                matches!(
                    err,
                    WalError::BadMagic
                        | WalError::UnsupportedVersion { .. }
                        | WalError::ChecksumMismatch { .. }
                        | WalError::Corrupt(_)
                ),
                "flip at {pos} mask {mask:#x} gave unexpected {err:?}"
            );
            rejected += 1;
        }
    }
    assert_eq!(rejected, bytes.len() * 2);
    // And through the file-level path too (spot checks: header, record
    // header, payload).
    for pos in [0, WAL_HEADER_LEN + 4, bytes.len() - 1] {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;
        let path = temp("flip.wal");
        std::fs::write(&path, &corrupt).unwrap();
        assert!(Wal::open(&path).is_err(), "file-level flip at {pos} accepted");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn duplicate_and_reordered_lsns_are_rejected() {
    let ops = vec![LoggedOp::Insert(vec![triple(42)])];
    let mut dup = wal::wal_file_header().to_vec();
    dup.extend_from_slice(&encode_record(1, &ops));
    dup.extend_from_slice(&encode_record(1, &ops)); // duplicate
    assert!(matches!(scan_records(&dup), Err(WalError::OutOfOrder { expected: 2, found: 1, .. })));

    let mut skipped = wal::wal_file_header().to_vec();
    skipped.extend_from_slice(&encode_record(2, &ops)); // starts past 1
    assert!(matches!(
        scan_records(&skipped),
        Err(WalError::OutOfOrder { expected: 1, found: 2, .. })
    ));

    let mut swapped = wal::wal_file_header().to_vec();
    swapped.extend_from_slice(&encode_record(2, &ops));
    swapped.extend_from_slice(&encode_record(1, &ops));
    assert!(matches!(scan_records(&swapped), Err(WalError::OutOfOrder { .. })));
}

#[test]
fn trailing_garbage_is_typed_when_distinguishable_from_a_torn_header() {
    let (_, bytes) = journaled_fixture("garbage-src.wal");
    // >= 32 bytes of garbage after the valid tail: a complete (garbage)
    // record header whose checksum cannot verify — typed, not truncated.
    let mut long = bytes.clone();
    long.extend_from_slice(&[0xAB; 40]);
    assert!(matches!(scan_records(&long), Err(WalError::ChecksumMismatch { .. })));

    // < 32 bytes of garbage is indistinguishable from a header torn
    // mid-write: the documented blind spot, tolerated as a torn tail with
    // the committed prefix intact.
    let mut short = bytes.clone();
    short.extend_from_slice(&[0xAB; 10]);
    let scan = scan_records(&short).expect("short garbage is treated as torn");
    assert!(scan.torn);
    assert_eq!(scan.committed_len, bytes.len() as u64);
    assert_eq!(scan.records, scan_records(&bytes).unwrap().records);
}

#[test]
fn wrong_version_and_reserved_word_are_typed() {
    let mut versioned = wal::wal_file_header().to_vec();
    versioned[8] = 9;
    assert_eq!(
        scan_records(&versioned),
        Err(WalError::UnsupportedVersion { found: 9, supported: wal::WAL_VERSION })
    );
    let mut reserved = wal::wal_file_header().to_vec();
    reserved[13] = 1;
    assert!(matches!(scan_records(&reserved), Err(WalError::Corrupt(_))));
}

/// The commit discipline, proven on the seam's operation log: an append is
/// acknowledged only after its fsync, and the fsync comes after the record
/// write. Skipping the fsync-before-ack (the seeded mutant) fails here.
#[test]
fn append_acks_only_after_fsync() {
    let path = temp("ack.wal");
    std::fs::remove_file(&path).ok();
    let seam = IoSeam::none();
    let (mut wal, _) = Wal::open_with_seam(&path, &seam).expect("creates");
    let ops_before = seam.log();
    wal.append(&[LoggedOp::Insert(vec![triple(7)])]).expect("append acks");
    let ops: Vec<IoOp> = seam.log()[ops_before.len()..].to_vec();
    let last_write = ops.iter().rposition(|op| *op == IoOp::Write);
    let last_sync = ops.iter().rposition(|op| *op == IoOp::Sync);
    let (Some(w), Some(s)) = (last_write, last_sync) else {
        panic!("append must issue both a write and an fsync, saw {ops:?}");
    };
    assert!(s > w, "fsync must follow the record write before the append is acknowledged: {ops:?}");
    drop(wal);
    std::fs::remove_file(&path).ok();
}

/// A failed fsync must fail the append: the write may be in the page
/// cache, but it was never made durable, so acknowledging it would lose an
/// "acknowledged" write on power failure.
#[test]
fn failed_fsync_fails_the_append_and_rolls_back() {
    let path = temp("fsync-fail.wal");
    std::fs::remove_file(&path).ok();
    let seam = IoSeam::none();
    let (mut wal, _) = Wal::open_with_seam(&path, &seam).expect("creates");
    // Sync #0 is the header-creation fsync; fail the first append's.
    seam.inject(IoOp::Sync, 1, Fault::Err("Input/output error"));
    let err = wal.append(&[LoggedOp::Insert(vec![triple(1)])]).unwrap_err();
    assert!(matches!(err, WalError::Io { op: "append", .. }));
    assert_eq!(seam.unfired(), 0);
    assert!(wal.is_empty(), "failed append must not advance the committed length");
    // The handle recovers: the next append commits at LSN 1.
    assert_eq!(wal.append(&[LoggedOp::Insert(vec![triple(2)])]).expect("retry commits"), 1);
    drop(wal);
    let (_, records) = Wal::open(&path).expect("reopens");
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].ops, vec![LoggedOp::Insert(vec![triple(2)])]);
    std::fs::remove_file(&path).ok();
}

#[test]
fn enospc_append_is_typed_rolled_back_and_recoverable() {
    let path = temp("enospc.wal");
    std::fs::remove_file(&path).ok();
    let seam = IoSeam::none();
    let (mut wal, _) = Wal::open_with_seam(&path, &seam).expect("creates");
    let writes_so_far = seam.log().iter().filter(|op| **op == IoOp::Write).count();
    seam.inject(IoOp::Write, writes_so_far, Fault::Err("No space left on device"));
    let err = wal.append(&[LoggedOp::Insert(vec![triple(3)])]).unwrap_err();
    let WalError::Io { op: "append", message, .. } = &err else {
        panic!("expected append Io error, got {err:?}");
    };
    assert!(message.contains("No space left on device"));
    assert_eq!(seam.unfired(), 0);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), WAL_HEADER_LEN as u64);
    assert_eq!(wal.append(&[LoggedOp::Insert(vec![triple(4)])]).expect("space freed"), 1);
    drop(wal);
    std::fs::remove_file(&path).ok();
}

#[test]
fn interrupted_append_succeeds_via_retry() {
    let path = temp("eintr.wal");
    std::fs::remove_file(&path).ok();
    let seam = IoSeam::none();
    let (mut wal, _) = Wal::open_with_seam(&path, &seam).expect("creates");
    let writes_so_far = seam.log().iter().filter(|op| **op == IoOp::Write).count();
    seam.inject(IoOp::Write, writes_so_far, Fault::Interrupt);
    wal.append(&[LoggedOp::Insert(vec![triple(5)])]).expect("EINTR is retried, not fatal");
    assert_eq!(seam.unfired(), 0);
    drop(wal);
    let (_, records) = Wal::open(&path).expect("reopens");
    assert_eq!(records.len(), 1);
    std::fs::remove_file(&path).ok();
}

/// A torn write from a live handle (device failed mid-record) rolls the
/// file back to the committed prefix immediately — the journal never
/// carries a partial record while the handle is live.
#[test]
fn torn_live_append_rolls_back_to_the_committed_prefix() {
    let path = temp("torn-live.wal");
    std::fs::remove_file(&path).ok();
    let seam = IoSeam::none();
    let (mut wal, _) = Wal::open_with_seam(&path, &seam).expect("creates");
    wal.append(&[LoggedOp::Insert(vec![triple(1)])]).expect("first commit");
    let committed = wal.committed_len();
    let writes_so_far = seam.log().iter().filter(|op| **op == IoOp::Write).count();
    seam.inject(IoOp::Write, writes_so_far, Fault::ShortWrite { keep: 11 });
    wal.append(&[LoggedOp::Insert(vec![triple(2)])]).unwrap_err();
    assert_eq!(seam.unfired(), 0);
    assert_eq!(wal.committed_len(), committed);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), committed);
    // And the next append lands cleanly on the boundary.
    assert_eq!(wal.append(&[LoggedOp::Insert(vec![triple(2)])]).expect("clean append"), 2);
    drop(wal);
    let (_, records) = Wal::open(&path).expect("reopens");
    assert_eq!(records.len(), 2);
    std::fs::remove_file(&path).ok();
}

/// Silent bit corruption on the way to the device (FlipBit reports
/// success) is the one fault an append cannot detect — but recovery must:
/// the flipped record fails its checksum as a typed error.
#[test]
fn silently_corrupted_append_is_caught_at_recovery() {
    let path = temp("flipbit.wal");
    std::fs::remove_file(&path).ok();
    let seam = IoSeam::none();
    let (mut wal, _) = Wal::open_with_seam(&path, &seam).expect("creates");
    let writes_so_far = seam.log().iter().filter(|op| **op == IoOp::Write).count();
    seam.inject(IoOp::Write, writes_so_far, Fault::FlipBit { offset: 40, mask: 0x10 });
    // The device lied: the append believes it succeeded.
    wal.append(&[LoggedOp::Insert(vec![triple(6)])]).expect("silent corruption acks");
    assert_eq!(seam.unfired(), 0);
    drop(wal);
    let err = Wal::open(&path).unwrap_err();
    assert!(matches!(err, WalError::ChecksumMismatch { .. }), "got {err:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn reset_truncates_to_the_bare_header_and_restarts_the_lsn_sequence() {
    let path = temp("reset.wal");
    std::fs::remove_file(&path).ok();
    let (mut wal, _) = Wal::open(&path).expect("creates");
    let mut live = base();
    scripted_workload(&mut live, &mut wal);
    assert!(!wal.is_empty());
    wal.reset().expect("resets");
    assert!(wal.is_empty());
    assert_eq!(wal.next_lsn(), 1);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), WAL_HEADER_LEN as u64);
    // Post-reset appends restart at LSN 1 and round-trip.
    assert_eq!(wal.append(&[LoggedOp::Compact]).expect("appends"), 1);
    drop(wal);
    let (_, records) = Wal::open(&path).expect("reopens");
    assert_eq!(records.len(), 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_op_batches_are_not_journaled() {
    let path = temp("noop.wal");
    std::fs::remove_file(&path).ok();
    let (mut wal, _) = Wal::open(&path).expect("creates");
    wal.append(&[]).expect("no-op append");
    assert!(wal.is_empty());
    assert_eq!(wal.next_lsn(), 1);
    drop(wal);
    std::fs::remove_file(&path).ok();
}
