//! Criterion micro-benchmarks of the engine substrate: index scans, exact
//! counts, optimizer (prepare) latency — the cost of one curation probe —
//! full query execution at the two extremes of the E3 parameter space, the
//! modifier pushdown (streaming aggregation, bounded-heap TopK) against
//! the materialize-then-modify baseline, and the out-of-core GROUP BY
//! (spill-to-disk under a memory budget) against the in-memory fold.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use parambench_core::ParameterDomain;
use parambench_datagen::{Bsbm, BsbmConfig};
use parambench_rdf::Term;
use parambench_sparql::{Binding, Engine, ExecConfig, OrderExec};
use std::hint::black_box;

fn engine_benches(c: &mut Criterion) {
    let data = Bsbm::generate(BsbmConfig::with_scale(50_000));
    let ds = &data.dataset;
    let engine = Engine::new(ds);
    let rdf_type = ds.lookup(&Term::iri(parambench_datagen::bsbm::schema::RDF_TYPE)).unwrap();
    let root = ds.lookup(&Term::iri(parambench_datagen::bsbm::schema::product_type(0))).unwrap();

    c.bench_function("store/count_pattern", |b| {
        b.iter(|| black_box(ds.count([None, Some(rdf_type), Some(root)])))
    });

    c.bench_function("store/scan_pattern_full", |b| {
        b.iter(|| black_box(ds.scan([None, Some(rdf_type), Some(root)]).count()))
    });

    let q4 = Bsbm::q4_feature_price_by_type();
    let root_binding =
        Binding::new().with("type", Term::iri(parambench_datagen::bsbm::schema::product_type(0)));
    let leaf = *data.types.leaves().last().unwrap();
    let leaf_binding = Binding::new()
        .with("type", Term::iri(parambench_datagen::bsbm::schema::product_type(leaf)));

    c.bench_function("optimizer/prepare_q4", |b| {
        b.iter(|| black_box(engine.prepare_template(&q4, &root_binding).unwrap()))
    });

    let prepared_root = engine.prepare_template(&q4, &root_binding).unwrap();
    let prepared_leaf = engine.prepare_template(&q4, &leaf_binding).unwrap();
    c.bench_function("exec/q4_generic_type", |b| {
        b.iter(|| black_box(engine.execute(&prepared_root).unwrap().cout))
    });
    c.bench_function("exec/q4_leaf_type", |b| {
        b.iter(|| black_box(engine.execute(&prepared_leaf).unwrap().cout))
    });

    // Pushed modifiers vs the materialize-then-modify baseline on the
    // aggregating BSBM template: same measured Cout by construction; the
    // peak-intermediate-tuple gap is what the streaming aggregation buys.
    // The strictly-lower gates themselves are asserted (at fixed scale) by
    // tests/modifier_pushdown.rs; the bench only reports the gap so
    // PARAMBENCH_TRIPLES experiments at tiny scales cannot abort the run.
    let streamed = engine.execute(&prepared_root).unwrap();
    let unpushed = engine.execute_unpushed(&prepared_root).unwrap();
    println!(
        "q4 generic type: Cout {} | peak tuples pushed {} vs unpushed {}",
        streamed.cout, streamed.stats.peak_tuples, unpushed.stats.peak_tuples
    );
    c.bench_function("exec/q4_generic_type_unpushed", |b| {
        b.iter(|| black_box(engine.execute_unpushed(&prepared_root).unwrap().cout))
    });
    c.bench_function("exec/q4_leaf_type_unpushed", |b| {
        b.iter(|| black_box(engine.execute_unpushed(&prepared_leaf).unwrap().cout))
    });

    // ORDER BY + LIMIT (no aggregation): the bounded-heap TopK against the
    // full decode-and-sort of every product of the root type.
    let topk = Bsbm::q_cheapest_products_of_type();
    let prepared_topk = engine.prepare_template(&topk, &root_binding).unwrap();
    let topk_pushed = engine.execute(&prepared_topk).unwrap();
    let topk_unpushed = engine.execute_unpushed(&prepared_topk).unwrap();
    println!(
        "cheapest-of-type: rows {} | peak tuples topk {} vs full sort {}",
        topk_pushed.results.len(),
        topk_pushed.stats.peak_tuples,
        topk_unpushed.stats.peak_tuples
    );
    c.bench_function("exec/order_by_limit_topk", |b| {
        b.iter(|| black_box(engine.execute(&prepared_topk).unwrap().results.len()))
    });
    c.bench_function("exec/order_by_limit_full_sort", |b| {
        b.iter(|| black_box(engine.execute_unpushed(&prepared_topk).unwrap().results.len()))
    });

    // Out-of-core aggregation: the same grouped template executed with an
    // unlimited memory budget (everything in accumulators) and with a
    // budget small enough that most groups hash-partition to spill files.
    // Results are bit-identical by contract (the external fold preserves
    // per-group fold order exactly); the printed ratio is the price of
    // degrading gracefully to disk instead of falling over.
    {
        let inmem_cfg = ExecConfig { mem_budget_rows: None, ..ExecConfig::default() };
        let spill_cfg = ExecConfig { mem_budget_rows: Some(16), ..ExecConfig::default() };
        let inmem = engine.execute_with(&prepared_root, &inmem_cfg).unwrap();
        let spill = engine.execute_with(&prepared_root, &spill_cfg).unwrap();
        assert_eq!(inmem.results, spill.results, "spilling changed aggregate results");
        assert!(spill.stats.spilled_rows > 0, "budget 16 should spill this template");
        let wall = |cfg: &ExecConfig| {
            (0..5)
                .map(|_| engine.execute_with(&prepared_root, cfg).unwrap().wall_time)
                .min()
                .expect("five runs")
        };
        let (t_mem, t_spill) = (wall(&inmem_cfg), wall(&spill_cfg));
        println!(
            "q4 group-by out-of-core: inmem {t_mem:?} vs spill {t_spill:?} — {:.2}x overhead \
             ({} rows spilled over {} runs, {} bytes)",
            t_spill.as_secs_f64() / t_mem.as_secs_f64(),
            spill.stats.spilled_rows,
            spill.stats.spill_runs,
            spill.stats.spill_bytes,
        );
        c.bench_function("exec/group_by_inmem", |b| {
            b.iter(|| black_box(engine.execute_with(&prepared_root, &inmem_cfg).unwrap().cout))
        });
        c.bench_function("exec/group_by_spill", |b| {
            b.iter(|| black_box(engine.execute_with(&prepared_root, &spill_cfg).unwrap().cout))
        });
    }

    // Order-aware execution (PR 5). Two pairs:
    // * the star template lowered as merge joins (Force) vs the forced
    //   hash lowering of the same prepared plan — zero build rows vs a
    //   materialized build side, identical results;
    // * the ORDER-BY-matching template with the sort eliminated behind
    //   the delivered order vs the forced full machinery.
    {
        let force_cfg = ExecConfig { order_exec: OrderExec::Force, ..ExecConfig::default() };
        let off_cfg = ExecConfig { order_exec: OrderExec::Off, ..ExecConfig::default() };
        let force_engine = Engine::with_exec_config(ds, force_cfg);
        let prepared_star = force_engine.prepare_template(&q4, &root_binding).unwrap();
        let merged = force_engine.execute(&prepared_star).unwrap();
        let hashed = force_engine.execute_with(&prepared_star, &off_cfg).unwrap();
        assert_eq!(merged.results, hashed.results, "merge lowering changed results");
        println!(
            "q4 star join: merge build_rows {} peak {} vs hash build_rows {} peak {}",
            merged.stats.build_rows,
            merged.stats.peak_tuples,
            hashed.stats.build_rows,
            hashed.stats.peak_tuples,
        );
        c.bench_function("exec/star_join_merge", |b| {
            b.iter(|| black_box(force_engine.execute(&prepared_star).unwrap().cout))
        });
        c.bench_function("exec/star_join_hash", |b| {
            b.iter(|| black_box(force_engine.execute_with(&prepared_star, &off_cfg).unwrap().cout))
        });

        // Parallel merge joins (PR 9): the same all-merge star plan,
        // morselized by key range over the driving sorted scan, at 1 and 4
        // workers. Speedup is structural on a 1-core container, so the
        // printed line reports the gates that matter — zero build rows at
        // every thread count and bit-identical rows/Cout/scanned — while
        // the pair exists for wall-clock comparison on real hardware.
        let par_cfg = |threads| ExecConfig {
            threads,
            morsel_rows: 4096,
            min_driver_rows: 1,
            min_est_cost: 0.0,
            ..force_cfg
        };
        let merge_t1 = force_engine.execute_with(&prepared_star, &par_cfg(1)).unwrap();
        let merge_t4 = force_engine.execute_with(&prepared_star, &par_cfg(4)).unwrap();
        assert_eq!(merge_t1.results, merge_t4.results, "threads changed merge morsel results");
        assert_eq!(merge_t1.cout, merge_t4.cout);
        assert_eq!(merge_t1.stats.scanned, merge_t4.stats.scanned);
        println!(
            "q4 star merge parallel: t1 build_rows {} scanned {} vs t4 build_rows {} scanned {}",
            merge_t1.stats.build_rows,
            merge_t1.stats.scanned,
            merge_t4.stats.build_rows,
            merge_t4.stats.scanned,
        );
        for threads in [1usize, 4] {
            let cfg = par_cfg(threads);
            c.bench_function(&format!("exec/star_join_merge_parallel_{threads}"), |b| {
                b.iter(|| black_box(force_engine.execute_with(&prepared_star, &cfg).unwrap().cout))
            });
        }

        let catalog = Bsbm::q_catalog_of_type();
        let prepared_cat = engine.prepare_template(&catalog, &root_binding).unwrap();
        let eliminated = engine.execute(&prepared_cat).unwrap();
        let forced = engine.execute_with(&prepared_cat, &off_cfg).unwrap();
        assert_eq!(eliminated.results, forced.results, "sort elimination changed results");
        println!(
            "catalog-of-type: sorted_rows eliminated {} vs forced {} (rows {})",
            eliminated.stats.sorted_rows,
            forced.stats.sorted_rows,
            eliminated.results.len(),
        );
        c.bench_function("exec/order_by_eliminated", |b| {
            b.iter(|| black_box(engine.execute(&prepared_cat).unwrap().results.len()))
        });
        c.bench_function("exec/order_by_forced_sort", |b| {
            b.iter(|| {
                black_box(engine.execute_with(&prepared_cat, &off_cfg).unwrap().results.len())
            })
        });
    }

    // Morsel-driven parallel execution: the BSBM hash-join template at
    // 1 / 2 / 4 worker threads, on a catalog big enough that the driving
    // type scan (one row per product) crosses the morselization threshold.
    // Every thread count executes the identical morselized plan (the
    // lowering decision reads estimates, never the thread count), so the
    // spread is pure threading gain; bit-for-bit correctness is pinned by
    // the differential suite. On multi-core hardware the 4-vs-1 ratio is
    // the PR's ≥1.8× target; the measured ratio is printed so a 1-core
    // container reports ~1.0× honestly instead of aborting the run.
    {
        let big = Bsbm::generate(BsbmConfig { products: 40_000, ..Default::default() });
        let big_engine = Engine::new(&big.dataset);
        let prepared = big_engine.prepare_template(&q4, &root_binding).unwrap();
        // Finer morsels than the default give a 4-worker pool enough
        // chunks of the 40k-row driving scan to balance.
        let exec = |threads| ExecConfig { threads, morsel_rows: 4096, ..ExecConfig::default() };
        // Same geometry ⇒ bit-identical output at any thread count (the
        // engine's determinism contract; float-aggregate *values* may
        // differ in rounding only across different morsel geometries).
        let one = big_engine.execute_with(&prepared, &exec(1)).unwrap();
        let par = big_engine.execute_with(&prepared, &exec(4)).unwrap();
        assert_eq!(one.results, par.results, "thread count changed morselized results");
        assert_eq!(one.cout, par.cout, "thread count changed morselized Cout");
        let wall = |threads: usize| {
            let cfg = exec(threads);
            (0..5)
                .map(|_| big_engine.execute_with(&prepared, &cfg).unwrap().wall_time)
                .min()
                .expect("five runs")
        };
        let (t1, t4) = (wall(1), wall(4));
        println!(
            "q4 parallel (40k products): 1 thread {t1:?} vs 4 threads {t4:?} — {:.2}x \
             ({} hardware threads available)",
            t1.as_secs_f64() / t4.as_secs_f64(),
            parambench_sparql::available_parallelism(),
        );
        for threads in [1usize, 2, 4] {
            let cfg = exec(threads);
            c.bench_function(&format!("exec/q4_parallel_{threads}threads"), |b| {
                b.iter(|| black_box(big_engine.execute_with(&prepared, &cfg).unwrap().cout))
            });
        }
    }

    // One uniform workload iteration (100 template instantiations) — the
    // unit of the paper's E1/E2 measurements.
    let domain = ParameterDomain::single("type", data.type_iris());
    c.bench_function("workload/q4_100_uniform_bindings", |b| {
        b.iter_batched(
            || domain.sample_uniform(100, 5),
            |bindings| {
                for binding in &bindings {
                    let p = engine.prepare_template(&q4, binding).unwrap();
                    black_box(engine.execute(&p).unwrap().cout);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = engine_benches
}
criterion_main!(benches);
