//! Streaming-output contract: for every modifier epilogue shape the
//! engine can produce, draining [`parambench_sparql::RowStream`] row by
//! row yields exactly the rows, order and instrumentation of the
//! all-at-once `execute` path — the two consumers share `plain_tail`, and
//! this suite pins that they cannot diverge.

use parambench_rdf::store::{Dataset, StoreBuilder};
use parambench_rdf::term::Term;
use parambench_sparql::engine::Engine;
use parambench_sparql::{parse_query, ExecConfig, OutVal};

/// Rows with a sortable rank, a low-cardinality group and duplicates —
/// enough to exercise DISTINCT, TopK, external sort and aggregation.
fn dataset(n: usize) -> Dataset {
    let mut b = StoreBuilder::new();
    for i in 0..n {
        let s = Term::iri(format!("s/{i:04}"));
        b.insert(s.clone(), Term::iri("grp"), Term::iri(format!("g/{}", i % 7)));
        b.insert(s.clone(), Term::iri("rank"), Term::integer((i * 31 % n) as i64));
        b.insert(s, Term::iri("dup"), Term::iri(format!("d/{}", i % 5)));
    }
    b.freeze()
}

/// Every epilogue shape the streaming path must reproduce bit-identically:
/// plain pipelines, slices, sort elimination, sorted DISTINCT, TopK,
/// external sort, in-memory sort and pushed aggregation.
const SHAPES: &[(&str, &str)] = &[
    ("plain", "SELECT ?s ?g WHERE { ?s <grp> ?g }"),
    ("slice", "SELECT ?s ?r WHERE { ?s <rank> ?r } LIMIT 17 OFFSET 5"),
    ("sort_elim", "SELECT ?s ?r WHERE { ?s <rank> ?r } ORDER BY ?s"),
    ("distinct_sorted", "SELECT DISTINCT ?d WHERE { ?s <dup> ?d } ORDER BY ?d"),
    ("topk", "SELECT ?s ?r WHERE { ?s <rank> ?r } ORDER BY DESC(?r) ?s LIMIT 9"),
    ("full_sort", "SELECT ?s ?r WHERE { ?s <rank> ?r } ORDER BY DESC(?r) ?s"),
    ("join_sort", "SELECT ?s ?g ?r WHERE { ?s <grp> ?g . ?s <rank> ?r } ORDER BY ?g DESC(?r) ?s"),
    (
        "aggregate",
        "SELECT ?g (COUNT(?s) AS ?n) (SUM(?r) AS ?t) WHERE { ?s <grp> ?g . ?s <rank> ?r } \
         GROUP BY ?g ORDER BY ?g",
    ),
    ("limit_zero", "SELECT ?s WHERE { ?s <grp> ?g } LIMIT 0"),
];

/// The execution configs the differential runs under: serial in-memory,
/// tiny memory budget (external-sort / spill path), and tiny-morsel
/// parallel (streaming over a gathered parallel source).
fn configs() -> Vec<(&'static str, ExecConfig)> {
    vec![
        ("serial", ExecConfig::default()),
        ("budget4", ExecConfig { mem_budget_rows: Some(4), ..ExecConfig::default() }),
        (
            "parallel",
            ExecConfig {
                threads: 4,
                morsel_rows: 5,
                min_driver_rows: 1,
                min_est_cost: 0.0,
                ..ExecConfig::default()
            },
        ),
    ]
}

#[test]
fn stream_matches_execute_for_every_epilogue_shape() {
    let ds = dataset(300);
    let engine = Engine::new(&ds);
    for (shape, text) in SHAPES {
        let prepared = engine.prepare(&parse_query(text).unwrap()).unwrap();
        for (cfg_name, exec) in configs() {
            let ctx = format!("shape {shape}, config {cfg_name}");
            let want = engine.execute_with(&prepared, &exec).unwrap();

            // Row-by-row drain.
            let mut stream = engine.stream(&prepared, &exec).unwrap();
            assert_eq!(stream.columns(), &want.results.columns[..], "{ctx}");
            let mut rows: Vec<Vec<OutVal>> = Vec::new();
            while let Some(row) = stream.next_row().unwrap_or_else(|e| panic!("{ctx}: {e}")) {
                rows.push(row);
            }
            assert_eq!(rows, want.results.rows, "streamed rows diverge: {ctx}");
            let end = stream.finish();
            assert_eq!(end.cout, want.cout, "streamed Cout diverges: {ctx}");
            assert_eq!(end.stats.scanned, want.stats.scanned, "streamed scan count: {ctx}");

            // Materializing drain (what the serving layer uses).
            let collected = engine.stream(&prepared, &exec).unwrap().collect_output().unwrap();
            assert_eq!(collected.results, want.results, "collect_output diverges: {ctx}");
            assert_eq!(collected.cout, want.cout, "{ctx}");
        }
    }
}

#[test]
fn stream_is_an_iterator_and_supports_early_drop() {
    let ds = dataset(120);
    let engine = Engine::new(&ds);
    let prepared = engine
        .prepare(&parse_query("SELECT ?s ?r WHERE { ?s <rank> ?r } ORDER BY ?s").unwrap())
        .unwrap();
    let exec = ExecConfig::default();
    let want = engine.execute_with(&prepared, &exec).unwrap();

    // Iterator interface yields the same rows.
    let rows: Vec<_> = engine.stream(&prepared, &exec).unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(rows, want.results.rows);

    // A partially drained stream can be dropped without finishing: the
    // serving layer relies on this to cancel slow clients cheaply.
    let mut partial = engine.stream(&prepared, &exec).unwrap();
    for _ in 0..10 {
        assert!(partial.next_row().unwrap().is_some());
    }
    drop(partial);

    // The stream borrows only the dataset, not the engine: results can be
    // drained after the preparing engine value is gone.
    let stream = {
        let scoped = Engine::new(&ds);
        let p =
            scoped.prepare(&parse_query("SELECT ?s WHERE { ?s <grp> <g/0> }").unwrap()).unwrap();
        scoped.stream(&p, &exec).unwrap()
    };
    assert_eq!(stream.count(), 18, "120 subjects, every 7th in g/0");
}
