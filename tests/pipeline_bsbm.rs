//! End-to-end integration: BSBM generation → engine → curation →
//! validation, asserting the paper's E1/E3 effects and their resolution.

use parambench::curation::{
    curate, run_workload, validate_workload, ClusterConfig, CurationConfig, Metric,
    ParameterDomain, RunConfig, ValidationConfig,
};
use parambench::datagen::{bsbm::schema, Bsbm, BsbmConfig};
use parambench::rdf::Term;
use parambench::sparql::{Binding, Engine};
use parambench::stats::Summary;

fn small_bsbm() -> Bsbm {
    Bsbm::generate(BsbmConfig { products: 800, ..Default::default() })
}

#[test]
fn e3_uniform_type_sampling_is_bimodal_and_unrepresentative() {
    let data = small_bsbm();
    let engine = Engine::new(&data.dataset);
    let template = Bsbm::q4_feature_price_by_type();
    let domain = ParameterDomain::single("type", data.type_iris());
    let bindings = domain.enumerate(usize::MAX, 0);
    let ms = run_workload(&engine, &template, &bindings, &RunConfig::default()).unwrap();
    let cout = Summary::new(&Metric::Cout.series(&ms)).unwrap();
    // The paper's E3: mean far above median, high dispersion.
    assert!(cout.mean() / cout.median() >= 2.0, "mean {} median {}", cout.mean(), cout.median());
    assert!(cout.coeff_of_variation() > 1.0, "cv = {}", cout.coeff_of_variation());
}

#[test]
fn curated_q4_classes_satisfy_p1_p2_p3() {
    let data = small_bsbm();
    let engine = Engine::new(&data.dataset);
    let template = Bsbm::q4_feature_price_by_type();
    let domain = ParameterDomain::single("type", data.type_iris());
    let workload = curate(
        &engine,
        &template,
        &domain,
        &CurationConfig {
            cluster: ClusterConfig { epsilon: 1.0, min_class_size: 5 },
            ..Default::default()
        },
    )
    .unwrap();
    assert!(workload.classes().len() >= 2, "{}", workload.describe());

    let report = validate_workload(
        &engine,
        &workload,
        &ValidationConfig { sample_size: 30, metric: Metric::Cout, ..Default::default() },
    )
    .unwrap();
    for v in &report {
        assert!(v.p1_ok, "class {} P1 cv {}", v.class_id, v.p1_cv);
        assert!(v.p3_ok, "class {} has {} plans", v.class_id, v.p3_distinct_plans);
    }
    // P2 can flip on borderline classes; the majority must hold.
    let p2_ok = report.iter().filter(|v| v.p2_ok).count();
    assert!(p2_ok * 2 > report.len(), "P2 failed on most classes");
}

#[test]
fn class_costs_are_ordered_and_disjoint_within_signature() {
    let data = small_bsbm();
    let engine = Engine::new(&data.dataset);
    let template = Bsbm::q4_feature_price_by_type();
    let domain = ParameterDomain::single("type", data.type_iris());
    let workload = curate(&engine, &template, &domain, &CurationConfig::default()).unwrap();
    let classes = workload.classes();
    for (i, a) in classes.iter().enumerate() {
        for b in &classes[i + 1..] {
            if a.signature == b.signature {
                assert!(
                    a.cost_hi < b.cost_lo || b.cost_hi < a.cost_lo,
                    "overlapping same-plan classes"
                );
            }
        }
    }
}

#[test]
fn q2_similarity_respects_shared_features() {
    let data = small_bsbm();
    let ds = &data.dataset;
    let engine = Engine::new(ds);
    let template = Bsbm::q2_similar_products();
    let product = Term::iri(schema::product(3));
    let out =
        engine.run_template(&template, &Binding::new().with("product", product.clone())).unwrap();
    let pf = ds.lookup(&Term::iri(schema::PRODUCT_FEATURE)).unwrap();
    let pid = ds.lookup(&product).unwrap();
    let my_features: std::collections::HashSet<_> =
        ds.scan([Some(pid), Some(pf), None]).map(|t| t[2]).collect();
    for row in &out.results.rows {
        let other = ds.lookup(row[0].as_term().unwrap()).unwrap();
        assert_ne!(other, pid, "FILTER(?other != %product) violated");
        let shared =
            ds.scan([Some(other), Some(pf), None]).filter(|t| my_features.contains(&t[2])).count();
        assert_eq!(shared as f64, row[1].as_num().unwrap(), "shared-feature count wrong");
    }
}

#[test]
fn rating_aggregate_matches_manual_computation() {
    let data = small_bsbm();
    let ds = &data.dataset;
    let engine = Engine::new(ds);
    let template = Bsbm::q_rating_by_type();
    let ty = Term::iri(schema::product_type(0)); // root: all products
    let out = engine.run_template(&template, &Binding::new().with("type", ty)).unwrap();
    assert_eq!(out.results.len(), 1);
    let avg = out.results.rows[0][0].as_num().unwrap();
    let n = out.results.rows[0][1].as_num().unwrap();

    // Manual: every review (all products are typed with the root).
    let rf = ds.lookup(&Term::iri(schema::REVIEW_FOR)).unwrap();
    let rt = ds.lookup(&Term::iri(schema::RATING)).unwrap();
    let mut total = 0.0;
    let mut count = 0.0;
    for rev in ds.scan([None, Some(rf), None]) {
        for r in ds.scan([Some(rev[0]), Some(rt), None]) {
            total += ds.dict().numeric(r[2]).unwrap();
            count += 1.0;
        }
    }
    assert_eq!(n, count);
    assert!((avg - total / count).abs() < 1e-9);
}

#[test]
fn two_parameter_template_curates() {
    let data = Bsbm::generate(BsbmConfig { products: 400, ..Default::default() });
    let engine = Engine::new(&data.dataset);
    let template = Bsbm::q_type_feature_offers();
    // Correlated two-dimensional domain: types × a sample of features.
    let features: Vec<Term> = (0..60).map(|i| Term::iri(schema::feature(i))).collect();
    let domain = ParameterDomain::new().with("type", data.type_iris()).with("feature", features);
    let workload = curate(
        &engine,
        &template,
        &domain,
        &CurationConfig {
            cluster: ClusterConfig { epsilon: 1.0, min_class_size: 5 },
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!workload.classes().is_empty());
    // Every sampled binding carries both parameters.
    let sample = workload.sample_class(0, 10, 1).unwrap();
    for b in sample {
        assert!(b.get("type").is_some() && b.get("feature").is_some());
    }
}
