//! LDBC-SNB-like social network generator (S3G2-style correlations).
//!
//! Reproduces the three correlations the paper's E2/E4 examples depend on:
//!
//! * **attribute correlation** — first names are drawn from the home
//!   country's pool with high probability (the "Li/China vs John/China"
//!   intro example);
//! * **structure correlation** — friendships prefer same-country pairs, and
//!   both friend counts and post counts are power-law *and mutually
//!   correlated* (active people have many friends and many posts), which is
//!   what makes LDBC Q2's runtime skew so heavy under uniform parameters;
//! * **travel correlation** — trips target same-region countries with
//!   popularity skew, so some country pairs (USA+Canada) are co-visited by
//!   many people and others (Finland+Zimbabwe) by almost none — the E4
//!   plan-flip lever.

use parambench_rdf::store::{Dataset, StoreBuilder};
use parambench_rdf::term::Term;
use parambench_sparql::template::QueryTemplate;
use rand::Rng;

use crate::dist::{stream_rng, PowerLawDegree, Zipf};
use crate::names::{country_count, country_name, local_names, GLOBAL_NAMES, LOCAL_NAME_PROB};

/// Vocabulary of the generated SNB-like data.
pub mod schema {
    pub const NS: &str = "http://snb.example/";
    pub const FIRST_NAME: &str = "http://snb.example/firstName";
    pub const LIVES_IN: &str = "http://snb.example/livesIn";
    pub const KNOWS: &str = "http://snb.example/knows";
    pub const HAS_CREATOR: &str = "http://snb.example/hasCreator";
    pub const CREATION_DATE: &str = "http://snb.example/creationDate";
    pub const HAS_BEEN_IN: &str = "http://snb.example/hasBeenIn";

    pub fn person(i: usize) -> String {
        format!("{NS}Person{i}")
    }
    pub fn post(i: usize) -> String {
        format!("{NS}Post{i}")
    }
    pub fn country(name: &str) -> String {
        format!("{NS}Country/{name}")
    }
}

/// Geographic region of each country in [`crate::names::COUNTRIES`] order.
/// Travel is strongly intra-region, creating correlated country pairs.
const REGIONS: &[(&str, usize)] = &[
    ("China", 0),
    ("India", 0),
    ("USA", 1),
    ("Indonesia", 0),
    ("Brazil", 1),
    ("Russia", 2),
    ("Japan", 0),
    ("Germany", 2),
    ("France", 2),
    ("UK", 2),
    ("Canada", 1),
    ("Spain", 2),
    ("Finland", 2),
    ("Poland", 2),
    ("Netherlands", 2),
    ("Chile", 1),
    ("Austria", 2),
    ("Norway", 2),
    ("Greece", 2),
    ("Zimbabwe", 3),
];

/// Region index of country `i`.
pub fn region_of(country_idx: usize) -> usize {
    REGIONS[country_idx].1
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SnbConfig {
    /// Number of persons.
    pub persons: usize,
    /// Friend-degree distribution.
    pub degree: PowerLawDegree,
    /// Probability a friendship stays within the home country.
    pub same_country_friend_prob: f64,
    /// Zipf exponent of country populations.
    pub country_skew: f64,
    /// Probability a trip targets the home region.
    pub same_region_trip_prob: f64,
    /// Maximum trips per person.
    pub max_trips: usize,
    /// Posts ≈ `post_activity` × friend-degree (correlated activity).
    pub post_activity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SnbConfig {
    fn default() -> Self {
        SnbConfig {
            persons: 3_000,
            degree: PowerLawDegree { min_deg: 1, max_deg: 300, scale: 2.5, alpha: 0.85 },
            same_country_friend_prob: 0.7,
            country_skew: 1.0,
            same_region_trip_prob: 0.75,
            max_trips: 8,
            post_activity: 0.8,
            seed: 42,
        }
    }
}

impl SnbConfig {
    /// A configuration scaled to approximately `triples` triples.
    pub fn with_scale(triples: usize) -> Self {
        // ~22 triples per person with the default knobs.
        let persons = (triples / 22).max(100);
        SnbConfig { persons, ..Default::default() }
    }
}

/// The generated social network: dataset plus the workload's templates and
/// parameter domains.
pub struct Snb {
    /// The frozen RDF dataset.
    pub dataset: Dataset,
    /// The configuration it was generated from.
    pub config: SnbConfig,
    /// Home country index of each person (for analysis in tests/benches).
    pub home_country: Vec<usize>,
}

impl Snb {
    /// Generates a dataset. Deterministic in `config.seed`.
    #[allow(clippy::needless_range_loop)] // person index is identity across parallel arrays
    pub fn generate(config: SnbConfig) -> Self {
        let n = config.persons;
        let mut b = StoreBuilder::new();
        let first_name = Term::iri(schema::FIRST_NAME);
        let lives_in = Term::iri(schema::LIVES_IN);
        let knows = Term::iri(schema::KNOWS);
        let has_creator = Term::iri(schema::HAS_CREATOR);
        let creation_date = Term::iri(schema::CREATION_DATE);
        let has_been_in = Term::iri(schema::HAS_BEEN_IN);

        let countries = country_count();
        let country_pop = Zipf::new(countries, config.country_skew);

        // Residence + names.
        let mut rng = stream_rng(config.seed, "snb-persons");
        let mut home = Vec::with_capacity(n);
        let mut by_country: Vec<Vec<usize>> = vec![Vec::new(); countries];
        for pi in 0..n {
            let c = country_pop.sample(&mut rng);
            home.push(c);
            by_country[c].push(pi);
            let person = Term::iri(schema::person(pi));
            b.insert(person.clone(), lives_in.clone(), Term::iri(schema::country(country_name(c))));
            let name = if rng.gen::<f64>() < LOCAL_NAME_PROB {
                let pool = local_names(c);
                pool[rng.gen_range(0..pool.len())]
            } else {
                GLOBAL_NAMES[rng.gen_range(0..GLOBAL_NAMES.len())]
            };
            b.insert(person, first_name.clone(), Term::literal(name));
        }

        // Friendships (symmetric, stored in both directions).
        let mut rng = stream_rng(config.seed, "snb-knows");
        let mut degree = vec![0usize; n];
        for pi in 0..n {
            let target_deg = config.degree.sample(&mut rng);
            let mut attempts = 0;
            while degree[pi] < target_deg && attempts < target_deg * 4 {
                attempts += 1;
                let friend = if rng.gen::<f64>() < config.same_country_friend_prob
                    && by_country[home[pi]].len() > 1
                {
                    let mates = &by_country[home[pi]];
                    mates[rng.gen_range(0..mates.len())]
                } else {
                    rng.gen_range(0..n)
                };
                if friend == pi {
                    continue;
                }
                b.insert(
                    Term::iri(schema::person(pi)),
                    knows.clone(),
                    Term::iri(schema::person(friend)),
                );
                b.insert(
                    Term::iri(schema::person(friend)),
                    knows.clone(),
                    Term::iri(schema::person(pi)),
                );
                degree[pi] += 1;
                degree[friend] += 1;
            }
        }

        // Posts: activity correlated with degree.
        let mut rng = stream_rng(config.seed, "snb-posts");
        // 2012 .. 2014 window, milliseconds.
        let t0: i64 = 1_325_376_000_000;
        let t1: i64 = 1_388_534_400_000;
        let mut post_id = 0;
        for pi in 0..n {
            let base = (degree[pi] as f64 * config.post_activity).round() as usize;
            let posts = rng.gen_range(0..=base.max(1));
            for _ in 0..posts {
                let post = Term::iri(schema::post(post_id));
                post_id += 1;
                b.insert(post.clone(), has_creator.clone(), Term::iri(schema::person(pi)));
                b.insert(
                    post,
                    creation_date.clone(),
                    Term::date_time_millis(rng.gen_range(t0..t1)),
                );
            }
        }

        // Travel.
        let mut rng = stream_rng(config.seed, "snb-travel");
        // In-region popularity: Zipf over the countries of each region,
        // ordered by global popularity.
        let mut region_members: Vec<Vec<usize>> = vec![Vec::new(); 4];
        for c in 0..countries {
            region_members[region_of(c)].push(c);
        }
        let region_zipf: Vec<Zipf> =
            region_members.iter().map(|m| Zipf::new(m.len().max(1), 1.0)).collect();
        let global_zipf = Zipf::new(countries, 1.0);
        for pi in 0..n {
            let trips = rng.gen_range(0..=config.max_trips);
            for _ in 0..trips {
                let dest = if rng.gen::<f64>() < config.same_region_trip_prob {
                    let region = region_of(home[pi]);
                    let members = &region_members[region];
                    members[region_zipf[region].sample(&mut rng)]
                } else {
                    global_zipf.sample(&mut rng)
                };
                b.insert(
                    Term::iri(schema::person(pi)),
                    has_been_in.clone(),
                    Term::iri(schema::country(country_name(dest))),
                );
            }
        }

        Snb { dataset: b.freeze(), config, home_country: home }
    }

    /// IRIs of every person (the Q2 parameter domain).
    pub fn person_iris(&self) -> Vec<Term> {
        (0..self.config.persons).map(schema::person).map(Term::iri).collect()
    }

    /// IRIs of every country.
    pub fn country_iris(&self) -> Vec<Term> {
        (0..country_count()).map(|c| Term::iri(schema::country(country_name(c)))).collect()
    }

    /// All first names occurring in the generator's pools.
    pub fn name_literals(&self) -> Vec<Term> {
        let mut names: Vec<&str> = GLOBAL_NAMES.to_vec();
        for c in 0..country_count() {
            names.extend_from_slice(local_names(c));
        }
        names.sort_unstable();
        names.dedup();
        names.into_iter().map(Term::literal).collect()
    }

    /// Intro example: people by first name and country — two *correlated*
    /// parameters.
    pub fn q1_name_country() -> QueryTemplate {
        QueryTemplate::parse(
            "SNB-Q1",
            &format!(
                "SELECT ?p WHERE {{ ?p <{fnm}> %name . ?p <{liv}> %country }}",
                fnm = schema::FIRST_NAME,
                liv = schema::LIVES_IN
            ),
        )
        .expect("static template parses")
    }

    /// LDBC Q2: the newest 20 posts of `%person`'s friends.
    pub fn q2_friend_posts() -> QueryTemplate {
        QueryTemplate::parse(
            "LDBC-Q2",
            &format!(
                "SELECT ?post ?date WHERE {{ \
                   %person <{kn}> ?friend . \
                   ?post <{hc}> ?friend . \
                   ?post <{cd}> ?date \
                 }} ORDER BY DESC(?date) LIMIT 20",
                kn = schema::KNOWS,
                hc = schema::HAS_CREATOR,
                cd = schema::CREATION_DATE
            ),
        )
        .expect("static template parses")
    }

    /// LDBC Q3: friends-of-friends of `%person` who have been to both
    /// `%countryX` and `%countryY`.
    pub fn q3_two_countries() -> QueryTemplate {
        QueryTemplate::parse(
            "LDBC-Q3",
            &format!(
                "SELECT DISTINCT ?other WHERE {{ \
                   %person <{kn}> ?f . \
                   ?f <{kn}> ?other . \
                   ?other <{hb}> %countryX . \
                   ?other <{hb}> %countryY . \
                   FILTER(?other != %person) \
                 }}",
                kn = schema::KNOWS,
                hb = schema::HAS_BEEN_IN
            ),
        )
        .expect("static template parses")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parambench_sparql::engine::Engine;
    use parambench_sparql::template::Binding;
    use std::collections::HashMap;

    fn small() -> Snb {
        Snb::generate(SnbConfig { persons: 600, ..Default::default() })
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.dataset.len(), b.dataset.len());
        assert_eq!(a.home_country, b.home_country);
    }

    #[test]
    fn country_population_is_skewed() {
        let g = small();
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for &c in &g.home_country {
            *counts.entry(c).or_default() += 1;
        }
        let biggest = *counts.values().max().unwrap();
        let smallest = counts.get(&(country_count() - 1)).copied().unwrap_or(0);
        assert!(biggest > 5 * smallest.max(1), "biggest {biggest} smallest {smallest}");
    }

    #[test]
    fn names_correlate_with_country() {
        let g = small();
        let ds = &g.dataset;
        let fnm = ds.lookup(&Term::iri(schema::FIRST_NAME)).unwrap();
        let liv = ds.lookup(&Term::iri(schema::LIVES_IN)).unwrap();
        let china = ds.lookup(&Term::iri(schema::country("China"))).unwrap();
        // Among Chinese residents, count local vs foreign-local names.
        let mut local = 0;
        let mut other = 0;
        for t in ds.scan([None, Some(liv), Some(china)]) {
            let person = t[0];
            for nt in ds.scan([Some(person), Some(fnm), None]) {
                let name = ds.decode(nt[2]);
                let lex = match name {
                    Term::Literal(l) => l.lexical.as_str(),
                    _ => "",
                };
                if local_names(0).contains(&lex) {
                    local += 1;
                } else {
                    other += 1;
                }
            }
        }
        assert!(local > other, "local {local} vs other {other}");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = small();
        let ds = &g.dataset;
        let kn = ds.lookup(&Term::iri(schema::KNOWS)).unwrap();
        let mut degs: Vec<usize> = Vec::new();
        for p in g.person_iris().iter().take(600) {
            if let Some(id) = ds.lookup(p) {
                degs.push(ds.count([Some(id), Some(kn), None]));
            }
        }
        degs.sort_unstable();
        let median = degs[degs.len() / 2];
        let max = *degs.last().unwrap();
        assert!(max >= media_bound(median), "max {max} median {median}");
        fn media_bound(median: usize) -> usize {
            (median * 4).max(8)
        }
    }

    #[test]
    fn travel_pairs_are_correlated() {
        let g = small();
        let ds = &g.dataset;
        let hb = ds.lookup(&Term::iri(schema::HAS_BEEN_IN)).unwrap();
        let visitors = |name: &str| -> Vec<parambench_rdf::dict::Id> {
            let c = ds.lookup(&Term::iri(schema::country(name)));
            match c {
                Some(c) => ds.scan([None, Some(hb), Some(c)]).map(|t| t[0]).collect(),
                None => Vec::new(),
            }
        };
        let inter = |a: &[parambench_rdf::dict::Id], b: &[parambench_rdf::dict::Id]| -> usize {
            let set: std::collections::HashSet<_> = a.iter().collect();
            b.iter().filter(|x| set.contains(x)).count()
        };
        let usa = visitors("USA");
        let canada = visitors("Canada");
        let finland = visitors("Finland");
        let zimbabwe = visitors("Zimbabwe");
        let popular = inter(&usa, &canada);
        let rare = inter(&finland, &zimbabwe);
        assert!(
            popular > rare.saturating_mul(3).max(2),
            "USA∩Canada = {popular}, Finland∩Zimbabwe = {rare}"
        );
    }

    #[test]
    fn q2_runs_and_orders_dates_desc() {
        let g = small();
        let engine = Engine::new(&g.dataset);
        let t = Snb::q2_friend_posts();
        // Find a person with friends and posts around.
        let out = engine
            .run_template(&t, &Binding::new().with("person", Term::iri(schema::person(0))))
            .unwrap();
        assert!(out.results.len() <= 20);
        let dates: Vec<f64> = out.results.rows.iter().filter_map(|r| r[1].as_num()).collect();
        assert!(dates.windows(2).all(|w| w[0] >= w[1]), "descending dates");
    }

    #[test]
    fn q3_respects_both_countries() {
        let g = small();
        let ds = &g.dataset;
        let engine = Engine::new(&g.dataset);
        let t = Snb::q3_two_countries();
        let b = Binding::new()
            .with("person", Term::iri(schema::person(1)))
            .with("countryX", Term::iri(schema::country("USA")))
            .with("countryY", Term::iri(schema::country("Canada")));
        let out = engine.run_template(&t, &b).unwrap();
        let hb = ds.lookup(&Term::iri(schema::HAS_BEEN_IN)).unwrap();
        let usa = ds.lookup(&Term::iri(schema::country("USA"))).unwrap();
        let canada = ds.lookup(&Term::iri(schema::country("Canada"))).unwrap();
        for row in &out.results.rows {
            let other = row[0].as_term().unwrap();
            let oid = ds.lookup(other).unwrap();
            assert!(ds.contains([Some(oid), Some(hb), Some(usa)]));
            assert!(ds.contains([Some(oid), Some(hb), Some(canada)]));
        }
    }

    #[test]
    fn q1_intro_example_selectivity_flips() {
        let g = Snb::generate(SnbConfig { persons: 2_000, ..Default::default() });
        let engine = Engine::new(&g.dataset);
        let t = Snb::q1_name_country();
        let li_china = Binding::new()
            .with("name", Term::literal("Li"))
            .with("country", Term::iri(schema::country("China")));
        let john_china = Binding::new()
            .with("name", Term::literal("John"))
            .with("country", Term::iri(schema::country("China")));
        let li = engine.run_template(&t, &li_china).unwrap().results.len();
        let john = engine.run_template(&t, &john_china).unwrap().results.len();
        assert!(li > john, "Li/China ({li}) should beat John/China ({john})");
    }
}
