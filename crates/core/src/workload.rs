//! Workload execution and measurement.
//!
//! Runs a list of parameter bindings against a template and records, per
//! run: wall-clock time, measured `Cout` (sum of join output cardinalities)
//! and the executed plan's signature. These measurements feed every
//! experiment table (E1–E3), the §III correlation (C1) and the P1–P3
//! validation.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use parambench_rdf::store::Dataset;
use parambench_sparql::engine::Engine;
use parambench_sparql::plan::PlanSignature;
use parambench_sparql::serve::{drive_clients, ServeConfig, ServeStats, SparqlServer};
use parambench_sparql::template::{Binding, QueryTemplate};
use parambench_sparql::ExecConfig;
use parambench_stats::summary::Summary;

use crate::error::CurationError;

/// Env knob: directory where the driver persists and reopens store
/// snapshots ([`persist_dataset`] / [`open_snapshot`]). Unset means the
/// driver works purely in memory (or falls back to the system temp dir
/// where a path is required, as `bench_trajectory` does).
pub const SNAPSHOT_DIR_ENV: &str = "PARAMBENCH_SNAPSHOT_DIR";

/// The configured snapshot directory, if any (see [`SNAPSHOT_DIR_ENV`]).
pub fn env_snapshot_dir() -> Option<PathBuf> {
    std::env::var_os(SNAPSHOT_DIR_ENV).filter(|v| !v.is_empty()).map(PathBuf::from)
}

/// Persists `ds` as `<dir>/<name>.pbsnap` (creating `dir` if needed) and
/// returns the snapshot path. Snapshot failures surface as
/// [`CurationError::Query`] wrapping the typed
/// [`parambench_sparql::QueryError::Snapshot`] cause.
pub fn persist_dataset(ds: &Dataset, dir: &Path, name: &str) -> Result<PathBuf, CurationError> {
    std::fs::create_dir_all(dir).map_err(|e| {
        CurationError::Query(parambench_sparql::QueryError::Snapshot(
            parambench_rdf::SnapshotError::Io {
                op: "create snapshot dir",
                path: dir.to_path_buf(),
                message: e.to_string(),
            },
        ))
    })?;
    let path = dir.join(format!("{name}.pbsnap"));
    ds.save(&path).map_err(|e| CurationError::Query(parambench_sparql::QueryError::Snapshot(e)))?;
    Ok(path)
}

/// Opens a persisted snapshot for serving — the driver's warm-start path —
/// returning the loaded dataset and the load wall time in milliseconds
/// (checksum verification plus zero-copy section mapping; no freeze-time
/// rebuild, which is why this number belongs in the benchmark report).
pub fn open_snapshot(path: &Path) -> Result<(Arc<Dataset>, f64), CurationError> {
    let t0 = Instant::now();
    let ds = Dataset::load(path)
        .map_err(|e| CurationError::Query(parambench_sparql::QueryError::Snapshot(e)))?;
    Ok((Arc::new(ds), t0.elapsed().as_secs_f64() * 1e3))
}

/// Reopens a durable store directory ([`SparqlServer::open_durable`]) —
/// the crash-recovery path: map the snapshot, scan the journal (torn tail
/// truncated), replay every committed record — and returns the recovered
/// server together with the recovery wall time in milliseconds. The
/// server's [`SparqlServer::recovered_records`] says how much journal the
/// recovery replayed; both numbers belong in the benchmark's durability
/// phase.
pub fn recover_server(
    dir: &Path,
    config: ServeConfig,
) -> Result<(SparqlServer, f64), CurationError> {
    let t0 = Instant::now();
    let server = SparqlServer::open_durable(dir, config).map_err(CurationError::Query)?;
    Ok((server, t0.elapsed().as_secs_f64() * 1e3))
}

/// One executed query instance.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The parameter binding used.
    pub binding: Binding,
    /// Wall-clock execution time in milliseconds.
    pub millis: f64,
    /// Measured `Cout` (total intermediate join tuples).
    pub cout: u64,
    /// Peak intermediate tuples resident at once during execution — the
    /// memory-side companion of `Cout` (streaming keeps it near the hash
    /// build sides; materialized execution near `Cout` itself).
    pub peak_tuples: u64,
    /// Estimated `Cout` the optimizer predicted.
    pub est_cout: f64,
    /// Result rows returned.
    pub rows: usize,
    /// Signature of the executed plan.
    pub signature: PlanSignature,
}

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Untimed warm-up executions before the measured run (amortizes
    /// allocator/cache effects like a real benchmark driver would).
    pub warmup: usize,
    /// Worker-pool size for morsel-driven parallel execution. Defaults to
    /// the machine's available parallelism. Measured `Cout`, rows and row
    /// order are identical at any value (the engine's determinism
    /// guarantee); only wall-clock measurements change.
    pub threads: usize,
    /// Out-of-core memory budget (resident rows for GROUP BY accumulators
    /// and LIMIT-less sorts; `None` = unlimited). Defaults to the
    /// `SPARQL_MEM_BUDGET_ROWS` environment override. Like `threads`,
    /// this knob cannot change measured `Cout`, rows or row order — only
    /// wall time and spill volume.
    pub mem_budget_rows: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup: 0,
            threads: parambench_sparql::available_parallelism(),
            mem_budget_rows: parambench_sparql::env_mem_budget_rows(),
        }
    }
}

/// Runs every binding once (after `warmup` untimed runs each) and collects
/// measurements in input order.
pub fn run_workload(
    engine: &Engine<'_>,
    template: &QueryTemplate,
    bindings: &[Binding],
    config: &RunConfig,
) -> Result<Vec<Measurement>, CurationError> {
    let exec = ExecConfig {
        threads: config.threads.max(1),
        mem_budget_rows: config.mem_budget_rows,
        ..engine.exec_config()
    };
    let mut out = Vec::with_capacity(bindings.len());
    for b in bindings {
        let prepared = engine.prepare_template(template, b)?;
        for _ in 0..config.warmup {
            let _ = engine.execute_with(&prepared, &exec)?;
        }
        let result = engine.execute_with(&prepared, &exec)?;
        out.push(Measurement {
            binding: b.clone(),
            millis: result.wall_time.as_secs_f64() * 1e3,
            cout: result.cout,
            peak_tuples: result.stats.peak_tuples,
            est_cout: prepared.est_cout,
            rows: result.results.len(),
            signature: prepared.signature,
        });
    }
    Ok(out)
}

/// Per-template latency digest from a concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentTemplateStats {
    /// Template report label.
    pub template: String,
    /// Requests served for this template.
    pub requests: usize,
    /// Total result rows across those requests.
    pub rows: usize,
    /// Requests served from the plan cache (rebind, no prepare).
    pub cache_hits: usize,
    /// Median per-query wall time, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-query wall time, milliseconds.
    pub p99_ms: f64,
}

/// Result of a multi-client concurrent run ([`run_concurrent`]).
#[derive(Debug, Clone)]
pub struct ConcurrentRun {
    /// Client threads used.
    pub clients: usize,
    /// Total requests served.
    pub requests: usize,
    /// End-to-end wall time of the whole run, milliseconds.
    pub elapsed_ms: f64,
    /// Aggregate throughput, queries per second.
    pub throughput_qps: f64,
    /// Per-template latency digests, in first-appearance order.
    pub templates: Vec<ConcurrentTemplateStats>,
    /// Serving-layer counters (plan cache, admission, worker pool).
    pub serve: ServeStats,
}

/// Serves `requests` from `clients` in-process client threads against one
/// shared-store [`SparqlServer`] and digests the result: throughput,
/// per-template p50/p99 latency and serving-layer counters. This is the
/// benchmark's concurrent phase (`bench_trajectory`) as well as the CI
/// stress entry point.
pub fn run_concurrent(
    ds: Arc<Dataset>,
    requests: &[(QueryTemplate, Binding)],
    clients: usize,
    config: ServeConfig,
) -> Result<ConcurrentRun, CurationError> {
    let server = SparqlServer::new(ds, config);
    let t0 = Instant::now();
    let outputs = drive_clients(&server, clients, requests)?;
    let elapsed = t0.elapsed();

    let mut order: Vec<&str> = Vec::new();
    for (t, _) in requests {
        if !order.contains(&t.name()) {
            order.push(t.name());
        }
    }
    let templates = order
        .iter()
        .map(|name| {
            let mut millis = Vec::new();
            let (mut rows, mut hits) = (0, 0);
            for ((t, _), out) in requests.iter().zip(&outputs) {
                if t.name() == *name {
                    millis.push(out.output.wall_time.as_secs_f64() * 1e3);
                    rows += out.output.results.len();
                    hits += out.cache_hit as usize;
                }
            }
            let digest = Summary::new(&millis).expect("template appears in requests");
            ConcurrentTemplateStats {
                template: name.to_string(),
                requests: millis.len(),
                rows,
                cache_hits: hits,
                p50_ms: digest.median(),
                p99_ms: digest.quantile(0.99),
            }
        })
        .collect();

    Ok(ConcurrentRun {
        clients: clients.max(1),
        requests: requests.len(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_qps: requests.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        templates,
        serve: server.stats(),
    })
}

/// Wall-clock runtimes (ms) of a measurement batch.
pub fn runtimes_ms(measurements: &[Measurement]) -> Vec<f64> {
    measurements.iter().map(|m| m.millis).collect()
}

/// Measured `Cout` values of a batch (deterministic runtime proxy).
pub fn couts(measurements: &[Measurement]) -> Vec<f64> {
    measurements.iter().map(|m| m.cout as f64).collect()
}

/// Peak intermediate-tuple counts of a batch (deterministic memory proxy).
pub fn peaks(measurements: &[Measurement]) -> Vec<f64> {
    measurements.iter().map(|m| m.peak_tuples as f64).collect()
}

/// The metric a validation or experiment aggregates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Wall-clock milliseconds — what the paper reports, noisy on shared
    /// hardware.
    WallMillis,
    /// Measured `Cout` — the paper's runtime proxy (≈85% Pearson), exactly
    /// reproducible; used by deterministic tests.
    Cout,
    /// Peak intermediate tuples resident at once — the memory-side metric
    /// the streaming executor minimizes; also exactly reproducible.
    PeakTuples,
}

impl Metric {
    /// Extracts the metric series from measurements.
    pub fn series(self, measurements: &[Measurement]) -> Vec<f64> {
        match self {
            Metric::WallMillis => runtimes_ms(measurements),
            Metric::Cout => couts(measurements),
            Metric::PeakTuples => peaks(measurements),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parambench_rdf::store::StoreBuilder;
    use parambench_rdf::term::Term;

    fn data() -> parambench_rdf::store::Dataset {
        let mut b = StoreBuilder::new();
        for i in 0..50 {
            b.insert(
                Term::iri(format!("s/{i}")),
                Term::iri("p"),
                Term::iri(format!("o/{}", i % 5)),
            );
            b.insert(Term::iri(format!("s/{i}")), Term::iri("q"), Term::integer(i as i64));
        }
        b.freeze()
    }

    #[test]
    fn measurements_align_with_bindings() {
        let ds = data();
        let engine = Engine::new(&ds);
        let t = QueryTemplate::parse("t", "SELECT ?s ?v WHERE { ?s <p> %o . ?s <q> ?v }").unwrap();
        let bindings: Vec<Binding> =
            (0..5).map(|i| Binding::new().with("o", Term::iri(format!("o/{i}")))).collect();
        let ms = run_workload(&engine, &t, &bindings, &RunConfig::default()).unwrap();
        assert_eq!(ms.len(), 5);
        for (m, b) in ms.iter().zip(&bindings) {
            assert_eq!(&m.binding, b);
            assert_eq!(m.rows, 10);
            assert!(m.millis >= 0.0);
            assert!(m.peak_tuples > 0, "executions hold at least one tuple");
        }
        // Cout and peak tuples are deterministic across repeated runs.
        let again =
            run_workload(&engine, &t, &bindings, &RunConfig { warmup: 1, ..Default::default() })
                .unwrap();
        assert_eq!(couts(&ms), couts(&again));
        assert_eq!(peaks(&ms), peaks(&again));
    }

    #[test]
    fn metric_series_shapes() {
        let ds = data();
        let engine = Engine::new(&ds);
        let t = QueryTemplate::parse("t", "SELECT ?s WHERE { ?s <p> %o }").unwrap();
        let bindings = vec![Binding::new().with("o", Term::iri("o/0"))];
        let ms = run_workload(&engine, &t, &bindings, &RunConfig::default()).unwrap();
        assert_eq!(Metric::WallMillis.series(&ms).len(), 1);
        assert_eq!(Metric::Cout.series(&ms).len(), 1);
        assert_eq!(Metric::PeakTuples.series(&ms).len(), 1);
    }

    #[test]
    fn concurrent_run_matches_serial_and_digests_per_template() {
        let ds = Arc::new(data());
        let t = QueryTemplate::parse("t", "SELECT ?s ?v WHERE { ?s <p> %o . ?s <q> ?v }").unwrap();
        let requests: Vec<(QueryTemplate, Binding)> = (0..10)
            .map(|i| (t.clone(), Binding::new().with("o", Term::iri(format!("o/{}", i % 5)))))
            .collect();
        let run = run_concurrent(Arc::clone(&ds), &requests, 3, ServeConfig::default()).unwrap();
        assert_eq!(run.requests, 10);
        assert_eq!(run.templates.len(), 1);
        assert_eq!(run.templates[0].requests, 10);
        assert_eq!(run.templates[0].rows, 100, "10 requests x 10 rows");
        // 5 distinct bindings of one class: one cold prepare, the rest hits.
        assert_eq!(run.serve.cache_misses, 1);
        assert_eq!(run.serve.cache_hits, 9);
        assert!(run.throughput_qps > 0.0);
        // Concurrent service returns the same row counts as a serial private
        // engine (row-level equality is pinned by the sparql stress suite).
        let engine = Engine::new(&ds);
        let serial = run_workload(
            &engine,
            &t,
            &requests.iter().map(|(_, b)| b.clone()).collect::<Vec<_>>(),
            &RunConfig::default(),
        )
        .unwrap();
        assert_eq!(serial.iter().map(|m| m.rows).sum::<usize>(), 100);
    }

    #[test]
    fn bad_binding_is_reported() {
        let ds = data();
        let engine = Engine::new(&ds);
        let t = QueryTemplate::parse("t", "SELECT ?s WHERE { ?s <p> %o }").unwrap();
        let bad = vec![Binding::new().with("wrong", Term::iri("o/0"))];
        assert!(run_workload(&engine, &t, &bad, &RunConfig::default()).is_err());
    }
}
