//! Property tests: the indexed store agrees with a naive triple list on
//! every access path, for arbitrary triple sets.

use proptest::prelude::*;

use parambench_rdf::store::StoreBuilder;
use parambench_rdf::term::Term;

/// A small universe of terms so collisions/duplicates actually happen.
fn term(ix: u8) -> Term {
    match ix % 3 {
        0 => Term::iri(format!("http://t/{}", ix % 16)),
        1 => Term::literal(format!("lit{}", ix % 16)),
        _ => Term::integer((ix % 16) as i64),
    }
}

fn arb_triples() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_and_count_agree_with_naive(triples in arb_triples(), mask in 0u8..8) {
        let mut builder = StoreBuilder::new();
        let mut naive: Vec<(Term, Term, Term)> = Vec::new();
        for &(s, p, o) in &triples {
            let (s, p, o) = (term(s), term(p), term(o));
            builder.insert(s.clone(), p.clone(), o.clone());
            naive.push((s, p, o));
        }
        naive.sort();
        naive.dedup();
        let ds = builder.freeze();
        prop_assert_eq!(ds.len(), naive.len());

        // Pick pattern constants from the data (or a missing term).
        let (ps, pp, po) = naive.first().cloned().unwrap_or((
            Term::iri("http://none"),
            Term::iri("http://none"),
            Term::iri("http://none"),
        ));
        let want_s = (mask & 1 != 0).then_some(ps);
        let want_p = (mask & 2 != 0).then_some(pp);
        let want_o = (mask & 4 != 0).then_some(po);

        let pattern = [
            want_s.as_ref().map(|t| ds.lookup(t)).unwrap_or(None).or(
                if want_s.is_some() { Some(parambench_rdf::Id(u32::MAX - 1)) } else { None }),
            want_p.as_ref().map(|t| ds.lookup(t)).unwrap_or(None).or(
                if want_p.is_some() { Some(parambench_rdf::Id(u32::MAX - 1)) } else { None }),
            want_o.as_ref().map(|t| ds.lookup(t)).unwrap_or(None).or(
                if want_o.is_some() { Some(parambench_rdf::Id(u32::MAX - 1)) } else { None }),
        ];

        let expected = naive
            .iter()
            .filter(|(s, p, o)| {
                want_s.as_ref().is_none_or(|w| w == s)
                    && want_p.as_ref().is_none_or(|w| w == p)
                    && want_o.as_ref().is_none_or(|w| w == o)
            })
            .count();
        prop_assert_eq!(ds.count(pattern), expected);
        prop_assert_eq!(ds.scan(pattern).count(), expected);
        prop_assert_eq!(ds.contains(pattern), expected > 0);
    }

    #[test]
    fn scans_return_matching_unique_triples(triples in arb_triples()) {
        let mut builder = StoreBuilder::new();
        for &(s, p, o) in &triples {
            builder.insert(term(s), term(p), term(o));
        }
        let ds = builder.freeze();
        let mut seen = std::collections::BTreeSet::new();
        for t in ds.scan([None, None, None]) {
            prop_assert!(seen.insert(t), "duplicate triple from scan");
        }
        prop_assert_eq!(seen.len(), ds.len());
    }

    #[test]
    fn stats_totals_match(triples in arb_triples()) {
        let mut builder = StoreBuilder::new();
        for &(s, p, o) in &triples {
            builder.insert(term(s), term(p), term(o));
        }
        let ds = builder.freeze();
        let stats = ds.stats();
        prop_assert_eq!(stats.total_triples, ds.len());
        let sum: usize = stats.predicates().map(|(_, s)| s.triples).sum();
        prop_assert_eq!(sum, ds.len());
        for (p, s) in stats.predicates() {
            prop_assert_eq!(s.triples, ds.count([None, Some(p), None]));
            prop_assert!(s.distinct_subjects <= s.triples);
            prop_assert!(s.distinct_objects <= s.triples);
            prop_assert!(s.distinct_subjects >= 1);
        }
    }

    #[test]
    fn ntriples_round_trip(triples in arb_triples()) {
        let mut builder = StoreBuilder::new();
        for &(s, p, o) in &triples {
            builder.insert(term(s), term(p), term(o));
        }
        let ds = builder.freeze();
        let mut buf = Vec::new();
        parambench_rdf::ntriples::write_dataset(&ds, &mut buf).unwrap();
        let mut b2 = StoreBuilder::new();
        parambench_rdf::ntriples::read_into(std::io::Cursor::new(&buf), &mut b2).unwrap();
        let ds2 = b2.freeze();
        prop_assert_eq!(ds2.len(), ds.len());
    }
}
