//! The triple store: a write-once builder, a frozen fully indexed dataset,
//! and a live-update path layered on top of it as a delta overlay
//! ([`crate::overlay`]): `insert`/`delete` accumulate sorted add/tombstone
//! runs that every scan merges with the frozen base in key order, and
//! [`Dataset::compact`] re-freezes base+delta back into a plain frozen
//! store.

use crate::dict::{Dictionary, Id};
use crate::index::{IndexOrder, PermIndex};
use crate::overlay::{MergedKeys, Overlay};
use crate::stats::{CharacteristicSets, DatasetStats};
use crate::term::Term;
use crate::wal::LoggedOp;

/// A triple pattern at the id level: `None` = wildcard position.
pub type IdPattern = [Option<Id>; 3];

/// Environment variable enabling overlay stress mode (`1`/`on`/`true`):
/// every [`StoreBuilder::freeze`] seeds a *net-empty* overlay echo — every
/// third base triple tombstoned and immediately re-added — so the whole
/// test suite exercises the tombstone-skip and add-merge scan paths with
/// bit-identical results, and batch updates auto-compact at a tiny
/// threshold so compaction runs constantly. Composes with
/// `PARAMBENCH_SNAPSHOT_FREEZE` (the echo is seeded on the reloaded
/// store). [`StoreBuilder::freeze_in_memory`] is never stressed, so
/// differential baselines and cold-build timing stay clean.
pub const OVERLAY_STRESS_ENV: &str = "PARAMBENCH_OVERLAY_STRESS";

/// Whether overlay stress mode is on — read fresh on every call, like the
/// other env knobs, so per-test overrides behave predictably.
pub fn overlay_stress_enabled() -> bool {
    matches!(
        std::env::var(OVERLAY_STRESS_ENV).as_deref(),
        Ok("1") | Ok("on") | Ok("ON") | Ok("true")
    )
}

/// Pending-entry count above which the *batch* update APIs compact
/// automatically. Effectively unlimited normally (compaction is an
/// explicit, relatively expensive choice); tiny under stress mode so the
/// whole suite exercises compaction.
fn auto_compact_threshold() -> usize {
    if overlay_stress_enabled() {
        16
    } else {
        usize::MAX
    }
}

/// Accumulates triples (at the term level), then freezes into a [`Dataset`].
///
/// The builder is the bulk-load path: once [`StoreBuilder::freeze`] runs,
/// the dataset's base indexes are immutable and safe to share across
/// threads (`Dataset: Send + Sync`). Post-freeze mutation goes through the
/// dataset's own [`Dataset::insert`] / [`Dataset::delete`] overlay APIs.
#[derive(Debug, Default)]
pub struct StoreBuilder {
    dict: Dictionary,
    triples: Vec<[Id; 3]>,
}

impl StoreBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of (possibly duplicate) triples inserted so far.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if no triple was inserted.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Access to the dictionary being built (for pre-interning vocabulary).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Inserts a triple of terms.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) {
        let s = self.dict.encode(s);
        let p = self.dict.encode(p);
        let o = self.dict.encode(o);
        self.triples.push([s, p, o]);
    }

    /// Inserts a triple of already-interned ids.
    ///
    /// # Panics
    /// When any id was not handed out by this builder's dictionary. The
    /// check is unconditional: in a release build an out-of-range id would
    /// otherwise corrupt the frozen indexes silently (or panic much later,
    /// deep inside `reorder_by_value`, far from the culprit).
    pub fn insert_ids(&mut self, s: Id, p: Id, o: Id) {
        let n = self.dict.len();
        assert!(
            s.index() < n && p.index() < n && o.index() < n,
            "insert_ids([{s}, {p}, {o}]): id out of range for a dictionary of {n} terms"
        );
        self.triples.push([s, p, o]);
    }

    /// Deduplicates, builds all six permutation indexes and dataset
    /// statistics, and returns the immutable dataset.
    ///
    /// Freezing first rewrites the dictionary into *value order*
    /// ([`Dictionary::reorder_by_value`]): ascending ids then mean
    /// ascending ORDER BY values (numerics first by value, then term
    /// order), so every sorted permutation index doubles as a sorted
    /// result source and the executor can skip sorts behind an
    /// order-compatible scan.
    ///
    /// When the `PARAMBENCH_SNAPSHOT_FREEZE` env knob is set (see
    /// [`crate::snapshot::SNAPSHOT_FREEZE_ENV`]), the frozen dataset is
    /// round-tripped through a temporary on-disk snapshot and the *loaded*
    /// store is returned instead — pointing an entire test suite at the
    /// mapped-scan path without touching a single test. When
    /// [`OVERLAY_STRESS_ENV`] is set, the returned store additionally
    /// carries a net-empty overlay echo so every scan exercises the merge
    /// paths.
    pub fn freeze(self) -> Dataset {
        let mut ds = self.freeze_in_memory();
        if crate::snapshot::freeze_roundtrip_enabled() {
            ds = crate::snapshot::roundtrip_via_temp_snapshot(&ds)
                .expect("PARAMBENCH_SNAPSHOT_FREEZE round-trip");
        }
        if overlay_stress_enabled() {
            ds.seed_stress_overlay();
        }
        ds
    }

    /// [`StoreBuilder::freeze`] without the env-gated snapshot round-trip
    /// or overlay stress echo: always builds (and returns) the plain
    /// heap-resident store. The benchmark harness uses this to time cold
    /// builds, and differential tests to hold the baseline side fixed
    /// while the exercised side varies.
    pub fn freeze_in_memory(mut self) -> Dataset {
        let old_to_new = self.dict.reorder_by_value();
        for triple in &mut self.triples {
            for slot in triple.iter_mut() {
                *slot = Id(old_to_new[slot.index()]);
            }
        }
        self.triples.sort_unstable();
        self.triples.dedup();
        let indexes: Vec<PermIndex> =
            IndexOrder::ALL.iter().map(|&order| PermIndex::build(order, &self.triples)).collect();
        let indexes: [PermIndex; 6] = indexes.try_into().expect("six orders");
        let stats = DatasetStats::compute(&indexes[IndexOrder::Pso.slot()], &self.dict);
        let char_sets = CharacteristicSets::compute(&indexes[IndexOrder::Spo.slot()]);
        let frozen_terms = self.dict.len();
        Dataset {
            dict: self.dict,
            indexes,
            stats,
            char_sets,
            overlay: Overlay::default(),
            frozen_terms,
            update_log: None,
        }
    }
}

/// A fully indexed RDF dataset: an immutable frozen base plus a small
/// mutable delta overlay.
///
/// Datasets come into existence two ways: built in memory by
/// [`StoreBuilder::freeze`], or reloaded from a persistent snapshot by
/// [`Dataset::load`] — in which case the triple arrays and bucket
/// directories are served zero-copy from the snapshot's bytes (see
/// [`crate::snapshot`]). The query surface is identical either way.
///
/// Live updates ([`Dataset::insert`] / [`Dataset::delete`]) never touch
/// the frozen indexes: they maintain sorted add/tombstone runs in the
/// [`Overlay`], which every scan merges with the base in ascending key
/// order. Merged scans therefore stay valid inputs for merge joins and
/// morsel slicing. What updates *can* break is the freeze-time
/// "ascending id ⇔ ascending ORDER BY value" dictionary invariant: a term
/// first interned after freeze gets an id past [`Dataset::frozen_terms`]
/// (the *overflow region*), and while any such id has entered the overlay,
/// [`Dataset::order_by_value_intact`] turns false so the query layer
/// declines value-order service (sorts actually run) instead of silently
/// returning misordered rows. [`Dataset::compact`] re-freezes base+delta
/// and restores the invariant.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub(crate) dict: Dictionary,
    pub(crate) indexes: [PermIndex; 6],
    pub(crate) stats: DatasetStats,
    pub(crate) char_sets: CharacteristicSets,
    pub(crate) overlay: Overlay,
    /// Dictionary length at freeze/load time: ids below are value-ordered,
    /// ids at or past it are post-freeze overflow terms.
    pub(crate) frozen_terms: usize,
    /// When `Some`, every mutation that changes the visible set appends a
    /// term-level [`LoggedOp`] here — the write-ahead journal's capture
    /// channel (see [`Dataset::begin_update_log`]).
    pub(crate) update_log: Option<Vec<LoggedOp>>,
}

impl Dataset {
    /// True when this dataset was reloaded from a snapshot and serves its
    /// base scans from the snapshot's bytes (OS-mapped or arena-backed)
    /// rather than a freeze-time heap build.
    pub fn is_loaded(&self) -> bool {
        self.indexes.iter().all(PermIndex::is_loaded)
    }

    /// True when this dataset's base scans are served from an OS file
    /// mapping (the zero-copy fast path; false for heap builds and for the
    /// read-into-arena fallback forced by `PARAMBENCH_SNAPSHOT_MMAP=off`).
    pub fn is_mapped(&self) -> bool {
        self.indexes.iter().all(PermIndex::is_mapped)
    }
    /// The term dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Pre-computed dataset statistics — exact for the *visible* triple
    /// set: mutations recompute them from the merged base+overlay scan, so
    /// the optimizer sees the same numbers a from-scratch freeze of the
    /// visible set would produce.
    pub fn stats(&self) -> &DatasetStats {
        &self.stats
    }

    /// Pre-computed characteristic sets (star-query statistics); exact for
    /// the visible set, like [`Dataset::stats`].
    pub fn char_sets(&self) -> &CharacteristicSets {
        &self.char_sets
    }

    /// The delta overlay (add/tombstone runs) over the frozen base.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// Dictionary length at freeze/load time: the boundary of the
    /// value-ordered id range. Terms interned by later inserts get ids at
    /// or past it (the overflow region).
    pub fn frozen_terms(&self) -> usize {
        self.frozen_terms
    }

    /// True while "ascending id ⇔ ascending ORDER BY value" holds for
    /// every id a scan can emit. Turns false (sticky, until
    /// [`Dataset::compact`]) once an overflow-region id enters the
    /// overlay; the planner then declines order service — merged scans are
    /// still perfectly id-sorted (merge joins keep working), but id order
    /// no longer implies value order, so sorts must actually run.
    pub fn order_by_value_intact(&self) -> bool {
        !self.overlay.has_overflow()
    }

    /// Total number of distinct *visible* triples
    /// (`base − tombstones + adds`).
    pub fn len(&self) -> usize {
        self.indexes[0].len() + self.overlay.adds_len() - self.overlay.dels_len()
    }

    /// True if the dataset holds no visible triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The base index with the given ordering (frozen triples only — use
    /// the scan/count APIs for overlay-aware access).
    #[allow(clippy::should_implement_trait)] // domain term: a store "index", not ops::Index
    pub fn index(&self, order: IndexOrder) -> &PermIndex {
        &self.indexes[order.slot()]
    }

    /// The default index order serving an id-level pattern.
    pub fn default_order(pattern: IdPattern) -> IndexOrder {
        IndexOrder::for_bound(pattern[0].is_some(), pattern[1].is_some(), pattern[2].is_some())
    }

    /// Chooses the index and key prefix serving an id-level pattern.
    fn plan_access(&self, pattern: IdPattern) -> (&PermIndex, Vec<Id>) {
        self.plan_access_with(pattern, Self::default_order(pattern))
    }

    /// The index of `order` and the bound-key prefix for `pattern`.
    /// `order` must cover the pattern's bound positions
    /// ([`IndexOrder::covers_bound`]).
    fn plan_access_with(&self, pattern: IdPattern, order: IndexOrder) -> (&PermIndex, Vec<Id>) {
        debug_assert!(
            order.covers_bound(pattern[0].is_some(), pattern[1].is_some(), pattern[2].is_some()),
            "{order:?} does not cover the bound positions of {pattern:?}"
        );
        let idx = self.index(order);
        let perm = order.perm();
        let mut prefix = Vec::with_capacity(3);
        for &pos in &perm {
            match pattern[pos] {
                Some(id) => prefix.push(id),
                None => break,
            }
        }
        (idx, prefix)
    }

    /// Iterates all visible SPO triples matching `pattern`.
    pub fn scan(&self, pattern: IdPattern) -> impl Iterator<Item = [Id; 3]> + '_ {
        self.scan_with(pattern, Self::default_order(pattern))
    }

    /// Iterates all visible SPO triples matching `pattern` out of the
    /// index with the given `order` (which must cover the pattern's bound
    /// positions), merged with the overlay's matching delta runs. The
    /// choice never changes *which* triples match — only the order they
    /// are delivered in: ascending by the unbound key positions of
    /// `order`, tombstoned base triples skipped, added triples spliced in
    /// at their sorted position.
    pub fn scan_with(
        &self,
        pattern: IdPattern,
        order: IndexOrder,
    ) -> impl Iterator<Item = [Id; 3]> + '_ {
        let (keys, remaining) = self.merged_keys(pattern, order);
        MergedScan { order, keys, remaining }
    }

    /// Iterates the sub-range `[start, end)` of the visible triples
    /// matching `pattern`, in the same order [`Dataset::scan`] uses — the
    /// morsel primitive of parallel scans: consecutive slices concatenated
    /// in order reproduce the full scan exactly. `end` is clamped to the
    /// match count; an inverted range (`end <= start`) yields nothing.
    pub fn scan_slice(
        &self,
        pattern: IdPattern,
        start: usize,
        end: usize,
    ) -> impl Iterator<Item = [Id; 3]> + '_ {
        self.scan_slice_with(pattern, Self::default_order(pattern), start, end)
    }

    /// [`Dataset::scan_slice`] over an explicit index `order` — so morsels
    /// of an order-chosen scan concatenate to [`Dataset::scan_with`] of the
    /// same order exactly, overlay deltas included.
    pub fn scan_slice_with(
        &self,
        pattern: IdPattern,
        order: IndexOrder,
        start: usize,
        end: usize,
    ) -> impl Iterator<Item = [Id; 3]> + '_ {
        let (mut keys, len) = self.merged_keys(pattern, order);
        let start = start.min(len);
        keys.skip(start);
        // saturating: an inverted range (end < start) is an empty slice,
        // not an underflow.
        MergedScan { order, keys, remaining: end.min(len).saturating_sub(start) }
    }

    /// The merged key source for `pattern` under `order`, plus its exact
    /// length.
    fn merged_keys(&self, pattern: IdPattern, order: IndexOrder) -> (MergedKeys<'_>, usize) {
        let (idx, prefix) = self.plan_access_with(pattern, order);
        let base = idx.range(&prefix);
        let (adds, dels) = self.overlay.range(order, &prefix);
        let keys = MergedKeys::new(base, adds, dels);
        let len = keys.len();
        (keys, len)
    }

    /// The merged-scan position where `key`'s run begins (`upper ==
    /// false`) or ends (`upper == true`) in the visible triples matching
    /// `pattern` under `order`: the exact number of visible rows whose
    /// key components *after the bound prefix* compare below (`false`) or
    /// not above (`true`) the leading `key.len()` components of `key`.
    ///
    /// This is the range-partition primitive of order-aligned parallel
    /// merge joins: a worker positions the join's right-side scan at its
    /// morsel's first key with one seek instead of consuming the rows
    /// before it, and overlay deltas are folded in by binary search (the
    /// position is exact for the *visible* set, so
    /// [`Dataset::scan_slice_with`] from the returned position resumes at
    /// the sought key). `key` may be shorter than the unbound component
    /// count — comparison then uses only the leading components, i.e. a
    /// coarser run granularity.
    pub fn seek_with(
        &self,
        pattern: IdPattern,
        order: IndexOrder,
        key: &[Id],
        upper: bool,
    ) -> usize {
        let (idx, prefix) = self.plan_access_with(pattern, order);
        let p = prefix.len();
        let m = key.len().min(3 - p);
        let base = idx.range(&prefix);
        let (adds, dels) = self.overlay.range(order, &prefix);
        let below = |run: &[[Id; 3]]| -> usize {
            run.partition_point(|k| {
                let c = k[p..p + m].cmp(&key[..m]);
                if upper {
                    c.is_le()
                } else {
                    c.is_lt()
                }
            })
        };
        // dels ⊆ base, and both are cut by the same key bound, so the
        // tombstones below the cut are a subset of the base rows below it.
        below(base) + below(adds) - below(dels)
    }

    /// Key-run-aligned morsel boundaries for the visible triples matching
    /// `pattern` under `order`: positions `[0, c1, …, total]` into the
    /// merged scan such that no run of rows equal on their first
    /// `run_components` unbound key components straddles a boundary, and
    /// every morsel holds at least `target_rows` rows (except possibly
    /// the last — and runs longer than `target_rows` make their morsel
    /// bigger, never split). An empty scan yields `[0]` (zero morsels).
    ///
    /// Parallel merge joins partition the driving scan with this: because
    /// a key run never splits, each morsel joins a disjoint right-side
    /// key range and per-morsel outputs concatenate to the serial join.
    pub fn key_range_cuts(
        &self,
        pattern: IdPattern,
        order: IndexOrder,
        run_components: usize,
        target_rows: usize,
    ) -> Vec<usize> {
        let total = self.count(pattern);
        let mut cuts = vec![0];
        if total == 0 {
            return cuts;
        }
        let (_, prefix) = self.plan_access_with(pattern, order);
        let p = prefix.len();
        let m = run_components.min(3 - p);
        let target = target_rows.max(1);
        let mut pos = 0;
        while pos < total {
            let want = pos + target;
            if want >= total || m == 0 {
                cuts.push(total);
                break;
            }
            // The run containing row `want - 1` must stay whole: cut at
            // its end (strictly past `pos`, so progress is guaranteed).
            let spo = self
                .scan_slice_with(pattern, order, want - 1, want)
                .next()
                .expect("position within the counted extent");
            let key = order.key_of(spo);
            let cut = self.seek_with(pattern, order, &key[p..p + m], true);
            debug_assert!(cut >= want && cut > pos);
            cuts.push(cut);
            pos = cut;
        }
        cuts
    }

    /// Iterates the visible triples matching `pattern` under `order` in
    /// *descending run order*: key runs (rows equal on their first
    /// `run_components` unbound key components) are delivered from the
    /// highest run down to the lowest, while rows *within* one run keep
    /// their ascending forward-scan order. This is exactly the sequence a
    /// stable descending sort on those components produces over
    /// [`Dataset::scan_with`] — the `ORDER BY … DESC` counterpart of
    /// order service, overlay deltas included.
    pub fn scan_desc_runs(
        &self,
        pattern: IdPattern,
        order: IndexOrder,
        run_components: usize,
    ) -> impl Iterator<Item = [Id; 3]> + '_ {
        let (keys, _) = self.merged_keys(pattern, order);
        let (_, prefix) = self.plan_access_with(pattern, order);
        let p = prefix.len();
        MergedScanDesc {
            order,
            keys,
            run: std::collections::VecDeque::new(),
            pending: None,
            run_from: p,
            run_len: run_components.min(3 - p),
        }
    }

    /// Exact number of visible triples matching `pattern` (binary search
    /// on the base index and on the overlay runs).
    pub fn count(&self, pattern: IdPattern) -> usize {
        let (idx, prefix) = self.plan_access(pattern);
        let base = idx.count(&prefix);
        if self.overlay.is_empty() {
            return base;
        }
        let (adds, dels) = self.overlay.range(idx.order(), &prefix);
        base + adds.len() - dels.len()
    }

    /// Number of overlay delta entries (adds + tombstones) a scan of
    /// `pattern` consults — 0 exactly when the scan takes the overlay-free
    /// fast path. The executor records this per scan so tests can prove
    /// the empty-overlay path really merges nothing.
    pub fn overlay_entries(&self, pattern: IdPattern) -> usize {
        if self.overlay.is_empty() {
            return 0;
        }
        let (idx, prefix) = self.plan_access(pattern);
        let (adds, dels) = self.overlay.range(idx.order(), &prefix);
        adds.len() + dels.len()
    }

    /// True if at least one visible triple matches `pattern`.
    pub fn contains(&self, pattern: IdPattern) -> bool {
        self.count(pattern) > 0
    }

    /// Exact number of distinct values of the *first unbound* position in
    /// index order for `pattern` — e.g. for `(?, p, o)` the number of
    /// distinct subjects. Overlay-aware.
    pub fn distinct_next(&self, pattern: IdPattern) -> usize {
        let (idx, prefix) = self.plan_access(pattern);
        self.distinct_with(idx.order(), &prefix)
    }

    /// Exact distinct count of the key position right after `prefix` in
    /// `order`, over the *visible* triples. The base answer is the frozen
    /// index's galloping [`PermIndex::distinct_after`], corrected for the
    /// overlay: a value disappears only when tombstones cover every base
    /// triple carrying it and no add re-supplies it; a value is new only
    /// when the base range never had it. `O(delta · log n)` on top of the
    /// base cost.
    pub fn distinct_with(&self, order: IndexOrder, prefix: &[Id]) -> usize {
        let idx = self.index(order);
        let base = idx.distinct_after(prefix);
        if self.overlay.is_empty() {
            return base;
        }
        let (adds, dels) = self.overlay.range(order, prefix);
        if adds.is_empty() && dels.is_empty() {
            return base;
        }
        let k = prefix.len();
        debug_assert!(k < 3, "distinct_with needs an unbound key position");
        // Count of entries in a prefix-restricted run whose component `k`
        // equals `v` (the run is sorted by component `k` within the prefix).
        let value_run = |run: &[[Id; 3]], v: Id| -> usize {
            let lo = run.partition_point(|key| key[k] < v);
            let hi = run.partition_point(|key| key[k] <= v);
            hi - lo
        };
        let mut d = base as isize;
        let mut sub = prefix.to_vec();
        sub.push(Id(0));
        let mut last: Option<Id> = None;
        for key in dels {
            let v = key[k];
            if last == Some(v) {
                continue;
            }
            last = Some(v);
            sub[k] = v;
            if value_run(dels, v) == idx.count(&sub) && value_run(adds, v) == 0 {
                d -= 1;
            }
        }
        let mut last: Option<Id> = None;
        for key in adds {
            let v = key[k];
            if last == Some(v) {
                continue;
            }
            last = Some(v);
            sub[k] = v;
            if idx.count(&sub) == 0 {
                d += 1;
            }
        }
        d.max(0) as usize
    }

    /// Looks up a term id.
    pub fn lookup(&self, term: &Term) -> Option<Id> {
        self.dict.lookup(term)
    }

    /// Decodes an id back to its term.
    pub fn decode(&self, id: Id) -> &Term {
        self.dict.decode(id)
    }

    /// Iterates the distinct objects of visible triples with predicate `p`
    /// (e.g. a parameter domain such as "all countries") in ascending id
    /// order, without allocating. Preferred over [`Dataset::objects_of`]
    /// on hot paths (domain extraction scans every value once per curation
    /// run).
    pub fn objects_of_iter(&self, p: Id) -> impl Iterator<Item = Id> + '_ {
        let mut last: Option<Id> = None;
        self.scan_with([None, Some(p), None], IndexOrder::Pos).filter_map(move |t| {
            let v = t[2];
            if last == Some(v) {
                None
            } else {
                last = Some(v);
                Some(v)
            }
        })
    }

    /// Iterates the distinct subjects of visible triples with predicate
    /// `p` in ascending id order, without allocating.
    pub fn subjects_of_iter(&self, p: Id) -> impl Iterator<Item = Id> + '_ {
        let mut last: Option<Id> = None;
        self.scan_with([None, Some(p), None], IndexOrder::Pso).filter_map(move |t| {
            let v = t[0];
            if last == Some(v) {
                None
            } else {
                last = Some(v);
                Some(v)
            }
        })
    }

    /// All distinct objects of visible triples with predicate `p`. Sorted
    /// by id. Thin allocating wrapper around [`Dataset::objects_of_iter`].
    pub fn objects_of(&self, p: Id) -> Vec<Id> {
        self.objects_of_iter(p).collect()
    }

    /// All distinct subjects of visible triples with predicate `p`. Sorted
    /// by id. Thin allocating wrapper around
    /// [`Dataset::subjects_of_iter`].
    pub fn subjects_of(&self, p: Id) -> Vec<Id> {
        self.subjects_of_iter(p).collect()
    }

    // ------------------------------------------------------------------
    // Live updates
    // ------------------------------------------------------------------

    /// Inserts one triple, interning any new terms (which land in the
    /// dictionary's overflow region and suspend value-order service until
    /// [`Dataset::compact`]). Returns `true` if the visible set changed
    /// (`false` = the triple was already visible).
    ///
    /// Statistics and characteristic sets are refreshed to stay exact for
    /// the visible set. Prefer [`Dataset::insert_batch`] for more than a
    /// handful of triples — the refresh is per call, not per triple.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let logged = self.update_log.is_some().then(|| (s.clone(), p.clone(), o.clone()));
        let spo = [self.dict.encode(s), self.dict.encode(p), self.dict.encode(o)];
        let changed = self.insert_raw(spo);
        if changed {
            self.refresh_derived();
            if let (Some(log), Some(triple)) = (self.update_log.as_mut(), logged) {
                log.push(LoggedOp::Insert(vec![triple]));
            }
        }
        changed
    }

    /// Deletes one triple (by term; unknown terms mean the triple cannot
    /// be visible — nothing is interned). Returns `true` if the visible
    /// set changed.
    pub fn delete(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let (Some(si), Some(pi), Some(oi)) =
            (self.dict.lookup(s), self.dict.lookup(p), self.dict.lookup(o))
        else {
            return false;
        };
        let changed = self.delete_raw([si, pi, oi]);
        if changed {
            self.refresh_derived();
            if let Some(log) = self.update_log.as_mut() {
                log.push(LoggedOp::Delete(vec![(s.clone(), p.clone(), o.clone())]));
            }
        }
        changed
    }

    /// Inserts a batch of triples; returns how many changed the visible
    /// set. One statistics refresh for the whole batch; auto-compacts when
    /// the overlay exceeds the stress-mode threshold (see
    /// [`OVERLAY_STRESS_ENV`]).
    pub fn insert_batch(&mut self, triples: impl IntoIterator<Item = (Term, Term, Term)>) -> usize {
        let logging = self.update_log.is_some();
        let mut logged = Vec::new();
        let mut changed = 0;
        for (s, p, o) in triples {
            let capture = logging.then(|| (s.clone(), p.clone(), o.clone()));
            let spo = [self.dict.encode(s), self.dict.encode(p), self.dict.encode(o)];
            if self.insert_raw(spo) {
                changed += 1;
                if let Some(triple) = capture {
                    logged.push(triple);
                }
            }
        }
        if changed > 0 {
            self.refresh_derived();
        }
        if !logged.is_empty() {
            if let Some(log) = self.update_log.as_mut() {
                log.push(LoggedOp::Insert(logged));
            }
        }
        self.maybe_auto_compact();
        changed
    }

    /// Deletes a batch of triples; returns how many changed the visible
    /// set. One statistics refresh for the whole batch; auto-compacts like
    /// [`Dataset::insert_batch`].
    pub fn delete_batch(&mut self, triples: impl IntoIterator<Item = (Term, Term, Term)>) -> usize {
        let logging = self.update_log.is_some();
        let mut logged = Vec::new();
        let mut changed = 0;
        for (s, p, o) in triples {
            let (Some(si), Some(pi), Some(oi)) =
                (self.dict.lookup(&s), self.dict.lookup(&p), self.dict.lookup(&o))
            else {
                continue;
            };
            if self.delete_raw([si, pi, oi]) {
                changed += 1;
                if logging {
                    logged.push((s, p, o));
                }
            }
        }
        if changed > 0 {
            self.refresh_derived();
        }
        if !logged.is_empty() {
            if let Some(log) = self.update_log.as_mut() {
                log.push(LoggedOp::Delete(logged));
            }
        }
        self.maybe_auto_compact();
        changed
    }

    /// Re-freezes base+delta into a plain frozen store: materializes the
    /// visible triple set, rebuilds the six permutation indexes and the
    /// statistics, and rewrites the *whole* dictionary (overflow region
    /// included — no term is ever dropped, so pre-interned vocabulary
    /// survives) back into value order. Afterwards the overlay is empty
    /// and [`Dataset::order_by_value_intact`] holds again. A compacted
    /// store can be re-saved with [`Dataset::save`].
    ///
    /// The no-op fast path requires more than an empty overlay: a
    /// cancelled overflow insert (new term interned, triple deleted again)
    /// leaves the runs empty while the dictionary still holds
    /// out-of-value-order terms and the sticky overflow flag stands, so
    /// compaction must still re-sort to honour its postcondition.
    pub fn compact(&mut self) {
        if self.overlay.is_empty()
            && self.order_by_value_intact()
            && self.dict.len() == self.frozen_terms
        {
            return;
        }
        let triples: Vec<[Id; 3]> = self.scan([None, None, None]).collect();
        let dict = std::mem::take(&mut self.dict);
        // The re-freeze replaces `self` wholesale; carry the update log
        // across it (with the compaction itself recorded, since replay
        // must compact at the same point to reproduce dictionary order).
        let mut log = self.update_log.take();
        if let Some(log) = log.as_mut() {
            log.push(LoggedOp::Compact);
        }
        *self = StoreBuilder { dict, triples }.freeze_in_memory();
        self.update_log = log;
    }

    /// Starts capturing mutations as term-level [`LoggedOp`]s. While
    /// active, every mutation that changes the visible set appends the
    /// changed triples (and every real compaction a [`LoggedOp::Compact`])
    /// to the log, in application order. Replaying the captured ops via
    /// [`Dataset::apply_logged`] onto a copy of the pre-mutation store
    /// reproduces this store exactly — ids, overlay, statistics and all —
    /// which is what makes the write-ahead journal's recovery bit-exact.
    pub fn begin_update_log(&mut self) {
        self.update_log = Some(Vec::new());
    }

    /// Stops capturing and returns the ops logged since
    /// [`Dataset::begin_update_log`] (empty if capture was never started).
    pub fn take_update_log(&mut self) -> Vec<LoggedOp> {
        self.update_log.take().unwrap_or_default()
    }

    /// Applies one replayed operation through the same mutation APIs the
    /// live store used. Returns how many triples changed the visible set.
    pub fn apply_logged(&mut self, op: &LoggedOp) -> usize {
        match op {
            LoggedOp::Insert(triples) => self.insert_batch(triples.iter().cloned()),
            LoggedOp::Delete(triples) => self.delete_batch(triples.iter().cloned()),
            LoggedOp::Compact => {
                self.compact();
                0
            }
        }
    }

    /// Applies one insert to the overlay (no statistics refresh). Returns
    /// whether the visible set changed.
    fn insert_raw(&mut self, spo: [Id; 3]) -> bool {
        if self.contains([Some(spo[0]), Some(spo[1]), Some(spo[2])]) {
            return false;
        }
        if self.overlay.in_dels(spo) {
            // A tombstoned base triple coming back: lift the tombstone
            // (cheaper than an add that would shadow it, and it keeps the
            // adds run free of visible-base duplicates).
            self.overlay.remove_del(spo);
        } else {
            self.overlay.insert_add(spo);
            if spo.iter().any(|id| id.index() >= self.frozen_terms) {
                self.overlay.mark_overflow();
            }
        }
        true
    }

    /// Applies one delete to the overlay (no statistics refresh). Returns
    /// whether the visible set changed.
    fn delete_raw(&mut self, spo: [Id; 3]) -> bool {
        if !self.contains([Some(spo[0]), Some(spo[1]), Some(spo[2])]) {
            return false;
        }
        if self.overlay.in_adds(spo) {
            // Visible via the adds run (a post-freeze insert, or a
            // deleted-then-readded base triple whose tombstone still
            // stands): dropping the add suffices either way.
            self.overlay.remove_add(spo);
        } else {
            self.overlay.insert_del(spo);
        }
        true
    }

    /// Recomputes statistics and characteristic sets from the merged
    /// visible scan — the same computation freeze runs, so the optimizer's
    /// inputs on a mutated store are bit-identical to what a from-scratch
    /// freeze of the visible set would produce (the property the update
    /// differential suite pins). `O(n)` per mutation call; batch the
    /// updates.
    fn refresh_derived(&mut self) {
        let pso: Vec<[Id; 3]> = self
            .scan_with([None, None, None], IndexOrder::Pso)
            .map(|t| IndexOrder::Pso.key_of(t))
            .collect();
        self.stats = DatasetStats::compute_from_keys(&pso);
        let spo: Vec<[Id; 3]> = self.scan_with([None, None, None], IndexOrder::Spo).collect();
        self.char_sets = CharacteristicSets::compute_from_keys(&spo);
    }

    /// Compacts when the overlay has outgrown the (stress-mode) threshold.
    fn maybe_auto_compact(&mut self) {
        if self.overlay.adds_len() + self.overlay.dels_len() > auto_compact_threshold() {
            self.compact();
        }
    }

    /// Seeds the stress-mode overlay echo: every third base triple
    /// tombstoned and immediately re-added. Net-empty — the visible set,
    /// statistics and snapshot bytes are unchanged — but every scan now
    /// runs the three-way merge.
    fn seed_stress_overlay(&mut self) {
        let echo: Vec<[Id; 3]> =
            self.indexes[IndexOrder::Spo.slot()].range(&[]).iter().copied().step_by(3).collect();
        if echo.is_empty() {
            return;
        }
        self.overlay.seed_echo(&echo);
    }
}

/// Owning merged-scan iterator over (a slice of) one index range plus the
/// overlay's matching delta runs, emitting SPO triples.
struct MergedScan<'a> {
    order: IndexOrder,
    keys: MergedKeys<'a>,
    remaining: usize,
}

impl Iterator for MergedScan<'_> {
    type Item = [Id; 3];

    fn next(&mut self) -> Option<[Id; 3]> {
        if self.remaining == 0 {
            return None;
        }
        let key = self.keys.next_key()?;
        self.remaining -= 1;
        Some(self.order.spo_of(key))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Owning descending-run merged-scan iterator: consumes the three-way
/// merge from the back, buffering one key run at a time so rows within a
/// run come out in forward order while runs come out highest-first.
struct MergedScanDesc<'a> {
    order: IndexOrder,
    keys: MergedKeys<'a>,
    /// The current run's triples, in forward order, drained front-first.
    run: std::collections::VecDeque<[Id; 3]>,
    /// A key already pulled from the cursor that belongs to the *next*
    /// (lower) run — the one-key lookahead that detects run boundaries.
    pending: Option<[Id; 3]>,
    /// First run-key component (the bound-prefix length in `order`).
    run_from: usize,
    /// Number of key components that define a run (0 = one single run,
    /// i.e. plain forward order).
    run_len: usize,
}

impl MergedScanDesc<'_> {
    fn refill(&mut self) {
        let Some(first) = self.pending.take().or_else(|| self.keys.next_key_back()) else {
            return;
        };
        let (lo, hi) = (self.run_from, self.run_from + self.run_len);
        // Keys arrive in descending order; push_front restores the run's
        // forward order without a separate reverse pass.
        self.run.push_front(self.order.spo_of(first));
        while let Some(k) = self.keys.next_key_back() {
            if k[lo..hi] == first[lo..hi] {
                self.run.push_front(self.order.spo_of(k));
            } else {
                self.pending = Some(k);
                break;
            }
        }
    }
}

impl Iterator for MergedScanDesc<'_> {
    type Item = [Id; 3];

    fn next(&mut self) -> Option<[Id; 3]> {
        if self.run.is_empty() {
            self.refill();
        }
        self.run.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample() -> Dataset {
        let mut b = StoreBuilder::new();
        let alice = Term::iri("http://e/alice");
        let bob = Term::iri("http://e/bob");
        let carol = Term::iri("http://e/carol");
        let knows = Term::iri("http://e/knows");
        let name = Term::iri("http://e/name");
        b.insert(alice.clone(), knows.clone(), bob.clone());
        b.insert(alice.clone(), knows.clone(), carol.clone());
        b.insert(bob.clone(), knows.clone(), carol.clone());
        b.insert(alice.clone(), name.clone(), Term::literal("Alice"));
        b.insert(bob.clone(), name.clone(), Term::literal("Bob"));
        // duplicate — must be removed by freeze
        b.insert(alice, knows, bob);
        b.freeze()
    }

    #[test]
    fn freeze_dedups() {
        let ds = build_sample();
        assert_eq!(ds.len(), 5);
    }

    #[test]
    fn scan_by_various_masks() {
        let ds = build_sample();
        let alice = ds.lookup(&Term::iri("http://e/alice")).unwrap();
        let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
        let carol = ds.lookup(&Term::iri("http://e/carol")).unwrap();

        assert_eq!(ds.count([None, None, None]), 5);
        assert_eq!(ds.count([Some(alice), None, None]), 3);
        assert_eq!(ds.count([None, Some(knows), None]), 3);
        assert_eq!(ds.count([None, None, Some(carol)]), 2);
        assert_eq!(ds.count([Some(alice), Some(knows), None]), 2);
        assert_eq!(ds.count([Some(alice), None, Some(carol)]), 1);
        assert_eq!(ds.count([None, Some(knows), Some(carol)]), 2);
        assert_eq!(ds.count([Some(alice), Some(knows), Some(carol)]), 1);

        // scans agree with counts for every mask
        for s in [None, Some(alice)] {
            for p in [None, Some(knows)] {
                for o in [None, Some(carol)] {
                    let pat = [s, p, o];
                    assert_eq!(ds.scan(pat).count(), ds.count(pat), "{pat:?}");
                    for t in ds.scan(pat) {
                        if let Some(sv) = s {
                            assert_eq!(t[0], sv);
                        }
                        if let Some(pv) = p {
                            assert_eq!(t[1], pv);
                        }
                        if let Some(ov) = o {
                            assert_eq!(t[2], ov);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn contains_and_distinct() {
        let ds = build_sample();
        let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
        let name = ds.lookup(&Term::iri("http://e/name")).unwrap();
        assert!(ds.contains([None, Some(knows), None]));
        // distinct subjects of `knows`: alice, bob
        assert_eq!(ds.distinct_next([None, Some(knows), None]), 2);
        // distinct subjects of `name`: alice, bob
        assert_eq!(ds.distinct_next([None, Some(name), None]), 2);
    }

    #[test]
    fn objects_and_subjects_of() {
        let ds = build_sample();
        let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
        assert_eq!(ds.objects_of(knows).len(), 2); // bob, carol
        assert_eq!(ds.subjects_of(knows).len(), 2); // alice, bob
    }

    #[test]
    fn iterator_variants_match_allocating_wrappers() {
        let ds = build_sample();
        for pred in ["http://e/knows", "http://e/name"] {
            let p = ds.lookup(&Term::iri(pred)).unwrap();
            let objs: Vec<Id> = ds.objects_of_iter(p).collect();
            assert_eq!(objs, ds.objects_of(p), "objects of {pred}");
            let subs: Vec<Id> = ds.subjects_of_iter(p).collect();
            assert_eq!(subs, ds.subjects_of(p), "subjects of {pred}");
            // Distinct and sorted.
            let mut dedup = objs.clone();
            dedup.dedup();
            assert_eq!(dedup, objs);
            assert!(objs.windows(2).all(|w| w[0] < w[1]));
        }
        // A predicate with no triples yields an empty iterator.
        let missing = Id(9999);
        assert_eq!(ds.objects_of_iter(missing).count(), 0);
    }

    #[test]
    fn scan_slices_concatenate_to_full_scan() {
        let ds = build_sample();
        let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
        for pat in [[None, None, None], [None, Some(knows), None]] {
            let full: Vec<[Id; 3]> = ds.scan(pat).collect();
            for step in 1..=full.len() {
                let mut pieced = Vec::new();
                let mut start = 0;
                while start < full.len() {
                    pieced.extend(ds.scan_slice(pat, start, start + step));
                    start += step;
                }
                assert_eq!(pieced, full, "step {step} over {pat:?}");
            }
            // Out-of-range slices clamp instead of panicking.
            assert_eq!(ds.scan_slice(pat, full.len() + 5, full.len() + 9).count(), 0);
            assert_eq!(ds.scan_slice(pat, 0, usize::MAX).count(), full.len());
        }
    }

    #[test]
    fn freeze_orders_ids_by_value() {
        let mut b = StoreBuilder::new();
        b.insert(Term::iri("s/z"), Term::iri("p"), Term::integer(30));
        b.insert(Term::iri("s/a"), Term::iri("p"), Term::integer(4));
        b.insert(Term::iri("s/m"), Term::iri("p"), Term::integer(200));
        let ds = b.freeze();
        // Ascending id ⇔ ascending value order, for every pair of ids.
        for a in 0..ds.dict().len() as u32 {
            for bb in (a + 1)..ds.dict().len() as u32 {
                assert_ne!(
                    ds.dict().compare(Id(a), Id(bb)),
                    std::cmp::Ordering::Greater,
                    "ids out of value order after freeze"
                );
            }
        }
        // Scanning (?, p, ?) therefore delivers objects sorted by VALUE
        // when subjects tie — and subjects sorted by term order overall.
        let p = ds.lookup(&Term::iri("p")).unwrap();
        let objs: Vec<f64> =
            ds.scan([None, Some(p), None]).map(|t| ds.dict().numeric(t[2]).unwrap()).collect();
        let subj: Vec<&Term> = ds.scan([None, Some(p), None]).map(|t| ds.decode(t[0])).collect();
        assert!(subj.windows(2).all(|w| w[0] <= w[1]), "subjects not in term order");
        assert_eq!(objs.len(), 3);
        // Per-subject numeric order holds trivially (one object each); the
        // POS index delivers prices in ascending numeric order.
        let by_obj: Vec<f64> = ds
            .scan_with([None, Some(p), None], IndexOrder::Pos)
            .map(|t| ds.dict().numeric(t[2]).unwrap())
            .collect();
        assert_eq!(by_obj, vec![4.0, 30.0, 200.0]);
    }

    #[test]
    fn scan_with_alternative_orders_matches_scan_set() {
        let ds = build_sample();
        let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
        let pat = [None, Some(knows), None];
        let mut base: Vec<[Id; 3]> = ds.scan(pat).collect();
        base.sort_unstable();
        for order in IndexOrder::all_for_bound(false, true, false) {
            let mut got: Vec<[Id; 3]> = ds.scan_with(pat, order).collect();
            // Same triple set, possibly different delivery order.
            got.sort_unstable();
            assert_eq!(got, base, "{order:?}");
            // Slices concatenate to the ordered scan exactly.
            let full: Vec<[Id; 3]> = ds.scan_with(pat, order).collect();
            let mut pieced = Vec::new();
            for start in (0..full.len()).step_by(2) {
                pieced.extend(ds.scan_slice_with(pat, order, start, start + 2));
            }
            assert_eq!(pieced, full, "{order:?}");
        }
    }

    #[test]
    fn empty_dataset() {
        let ds = StoreBuilder::new().freeze();
        assert!(ds.is_empty());
        assert_eq!(ds.count([None, None, None]), 0);
        assert_eq!(ds.scan([None, None, None]).count(), 0);
    }

    /// Regression (PR 7): `insert_ids` only `debug_assert!`ed its ids, so a
    /// release build would let an out-of-range id corrupt the frozen
    /// indexes silently. The bound check is now unconditional.
    #[test]
    fn insert_ids_rejects_foreign_ids_unconditionally() {
        let mut b = StoreBuilder::new();
        let s = b.dict_mut().encode(Term::iri("http://e/s"));
        let p = b.dict_mut().encode(Term::iri("http://e/p"));
        let o = b.dict_mut().encode(Term::integer(1));
        b.insert_ids(s, p, o); // in-range: fine
        let out_of_range = Id(b.dict_mut().len() as u32);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.insert_ids(s, p, out_of_range);
        }));
        assert!(panicked.is_err(), "an id the dictionary never issued must be refused");
    }

    // ------------------------------------------------------------------
    // Live-update (overlay) behaviour
    // ------------------------------------------------------------------

    fn term(s: &str) -> Term {
        Term::iri(s.to_string())
    }

    /// Every pattern mask agrees between scan and count, and matches an
    /// independently maintained visible-set model.
    fn assert_consistent(ds: &Dataset, model: &std::collections::BTreeSet<(Term, Term, Term)>) {
        let visible: Vec<(Term, Term, Term)> = ds
            .scan([None, None, None])
            .map(|t| (ds.decode(t[0]).clone(), ds.decode(t[1]).clone(), ds.decode(t[2]).clone()))
            .collect();
        let as_set: std::collections::BTreeSet<_> = visible.iter().cloned().collect();
        assert_eq!(as_set, *model, "visible set diverged from model");
        assert_eq!(visible.len(), model.len(), "merged scan emitted duplicates");
        assert_eq!(ds.len(), model.len());
        // Counts agree with scans for per-triple masks.
        for (s, p, o) in model {
            let (s, p, o) = (ds.lookup(s).unwrap(), ds.lookup(p).unwrap(), ds.lookup(o).unwrap());
            assert!(ds.contains([Some(s), Some(p), Some(o)]));
        }
        // Statistics stayed exact.
        assert_eq!(ds.stats().total_triples, model.len());
    }

    #[test]
    fn insert_delete_roundtrip_updates_visible_set() {
        let mut b = StoreBuilder::new();
        b.insert(term("s/a"), term("p"), term("o/1"));
        b.insert(term("s/b"), term("p"), term("o/2"));
        // In-memory freeze: the assertions below reason about exact overlay
        // run contents, which the stress-mode echo would perturb.
        let mut ds = b.freeze_in_memory();
        let mut model: std::collections::BTreeSet<(Term, Term, Term)> =
            [(term("s/a"), term("p"), term("o/1")), (term("s/b"), term("p"), term("o/2"))]
                .into_iter()
                .collect();
        assert_consistent(&ds, &model);

        // Insert of a brand-new triple over existing terms.
        assert!(ds.insert(term("s/a"), term("p"), term("o/2")));
        model.insert((term("s/a"), term("p"), term("o/2")));
        assert_consistent(&ds, &model);
        // Re-insert of a visible triple: no-op.
        assert!(!ds.insert(term("s/a"), term("p"), term("o/2")));
        assert_consistent(&ds, &model);

        // Delete of a base triple (tombstone).
        assert!(ds.delete(&term("s/b"), &term("p"), &term("o/2")));
        model.remove(&(term("s/b"), term("p"), term("o/2")));
        assert_consistent(&ds, &model);
        // Delete of a never-inserted triple: no-op, nothing interned.
        let dict_before = ds.dict().len();
        assert!(!ds.delete(&term("s/zzz"), &term("p"), &term("o/1")));
        assert_eq!(ds.dict().len(), dict_before);
        assert_consistent(&ds, &model);

        // Re-insert after delete lifts the tombstone.
        assert!(ds.insert(term("s/b"), term("p"), term("o/2")));
        model.insert((term("s/b"), term("p"), term("o/2")));
        assert_consistent(&ds, &model);
        assert_eq!(ds.overlay().dels_len(), 0, "tombstone must be lifted, not shadowed");

        // Delete of an overlay add removes the add again.
        assert!(ds.delete(&term("s/a"), &term("p"), &term("o/2")));
        model.remove(&(term("s/a"), term("p"), term("o/2")));
        assert_consistent(&ds, &model);
        assert!(ds.overlay().is_empty(), "all deltas cancelled out");
        assert!(ds.order_by_value_intact());
    }

    #[test]
    fn overflow_terms_suspend_value_order_until_compact() {
        let mut b = StoreBuilder::new();
        b.insert(term("s/a"), term("p"), term("o/1"));
        let mut ds = b.freeze_in_memory();
        assert!(ds.order_by_value_intact());
        let frozen = ds.frozen_terms();
        // A new term lands in the overflow region.
        assert!(ds.insert(term("s/new"), term("p"), term("o/1")));
        let new_id = ds.lookup(&term("s/new")).unwrap();
        assert!(new_id.index() >= frozen);
        assert!(!ds.order_by_value_intact());
        // Sticky even after the add is deleted again.
        assert!(ds.delete(&term("s/new"), &term("p"), &term("o/1")));
        assert!(!ds.order_by_value_intact());
        // Compact rebuilds value order; the overflow term keeps existing.
        assert!(ds.insert(term("s/new"), term("p"), term("o/1")));
        ds.compact();
        assert!(ds.order_by_value_intact());
        assert!(ds.overlay().is_empty());
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.frozen_terms(), ds.dict().len());
        // Ascending id ⇔ ascending value again, overflow term included.
        for a in 0..ds.dict().len() as u32 {
            for bb in (a + 1)..ds.dict().len() as u32 {
                assert_ne!(ds.dict().compare(Id(a), Id(bb)), std::cmp::Ordering::Greater);
            }
        }
    }

    /// Regression: `compact()` used to early-return on an empty overlay
    /// even when a cancelled overflow insert had left the dictionary out
    /// of value order — the sticky overflow flag then stood forever and
    /// order service stayed disabled with no way back.
    #[test]
    fn compact_restores_value_order_after_cancelled_overflow_insert() {
        let mut b = StoreBuilder::new();
        b.insert(term("s/a"), term("p"), term("o/1"));
        let mut ds = b.freeze_in_memory();
        assert!(ds.insert(term("s/new"), term("p"), term("o/1")));
        assert!(ds.delete(&term("s/new"), &term("p"), &term("o/1")));
        assert!(ds.overlay().is_empty());
        assert!(!ds.order_by_value_intact());
        assert!(ds.dict().len() > ds.frozen_terms());
        ds.compact();
        assert!(ds.order_by_value_intact());
        assert!(ds.overlay().is_empty());
        assert_eq!(ds.frozen_terms(), ds.dict().len());
        assert_eq!(ds.len(), 1);
        // The overflow term survived compaction, now in value order.
        assert!(ds.lookup(&term("s/new")).is_some());
        for a in 1..ds.dict().len() as u32 {
            assert_ne!(ds.dict().compare(Id(a - 1), Id(a)), std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn scan_slice_with_degenerate_ranges_is_empty() {
        let mut b = StoreBuilder::new();
        b.insert(term("s/a"), term("p"), term("o/1"));
        b.insert(term("s/b"), term("p"), term("o/2"));
        let ds = b.freeze_in_memory();
        let pat = [None, None, None];
        // Inverted range: empty, not an underflow.
        assert_eq!(ds.scan_slice(pat, 2, 1).count(), 0);
        // Empty range at a valid position.
        assert_eq!(ds.scan_slice(pat, 1, 1).count(), 0);
        // Range entirely past the match count.
        assert_eq!(ds.scan_slice(pat, 5, 9).count(), 0);
    }

    #[test]
    fn delete_then_compact_drops_triples_but_keeps_terms() {
        let mut b = StoreBuilder::new();
        b.insert(term("s/a"), term("p"), term("o/1"));
        b.insert(term("s/b"), term("p"), term("o/2"));
        let mut ds = b.freeze_in_memory();
        assert!(ds.delete(&term("s/a"), &term("p"), &term("o/1")));
        ds.compact();
        assert_eq!(ds.len(), 1);
        assert!(ds.overlay().is_empty());
        // The now-unused terms survive compaction (pre-interned vocabulary
        // must never fall out of the dictionary).
        assert!(ds.lookup(&term("s/a")).is_some());
        assert!(ds.lookup(&term("o/1")).is_some());
        let model = [(term("s/b"), term("p"), term("o/2"))].into_iter().collect();
        assert_consistent(&ds, &model);
    }

    #[test]
    fn merged_scans_and_slices_agree_under_overlay() {
        let mut b = StoreBuilder::new();
        for i in 0..12u32 {
            b.insert(term(&format!("s/{i}")), term("p"), term(&format!("o/{}", i % 5)));
        }
        let mut ds = b.freeze_in_memory();
        // Mix of tombstones, re-adds and fresh inserts.
        assert!(ds.delete(&term("s/3"), &term("p"), &term("o/3")));
        assert!(ds.delete(&term("s/7"), &term("p"), &term("o/2")));
        assert!(ds.insert(term("s/3"), term("p"), term("o/3")));
        assert!(ds.insert(term("s/1"), term("p"), term("o/4")));
        let pat = [None, Some(ds.lookup(&term("p")).unwrap()), None];
        for order in IndexOrder::all_for_bound(false, true, false) {
            let full: Vec<[Id; 3]> = ds.scan_with(pat, order).collect();
            assert_eq!(full.len(), ds.count(pat), "{order:?}");
            // Keys ascend strictly in the order's layout.
            let keys: Vec<[Id; 3]> = full.iter().map(|&t| order.key_of(t)).collect();
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "{order:?} not sorted");
            // Every slicing reproduces the full scan.
            for step in 1..=full.len() {
                let mut pieced = Vec::new();
                let mut start = 0;
                while start < full.len() {
                    pieced.extend(ds.scan_slice_with(pat, order, start, start + step));
                    start += step;
                }
                assert_eq!(pieced, full, "{order:?} step {step}");
            }
        }
        // distinct_next stays exact under the overlay.
        let p = ds.lookup(&term("p")).unwrap();
        let mut subjects: Vec<Id> = ds.scan(pat).map(|t| t[0]).collect();
        subjects.sort_unstable();
        subjects.dedup();
        assert_eq!(ds.distinct_next([None, Some(p), None]), subjects.len());
        let mut objects: Vec<Id> = ds.scan(pat).map(|t| t[2]).collect();
        objects.sort_unstable();
        objects.dedup();
        assert_eq!(ds.objects_of(p), objects);
    }

    /// A store with a non-trivial overlay (tombstones, re-adds, fresh
    /// inserts) for the seek / cut / descending-scan tests: duplicate run
    /// keys on the object position, so run alignment is observable.
    fn build_runny() -> Dataset {
        let mut b = StoreBuilder::new();
        for i in 0..30u32 {
            b.insert(term(&format!("s/{i:02}")), term("p"), term(&format!("o/{}", i % 7)));
        }
        let mut ds = b.freeze_in_memory();
        assert!(ds.delete(&term("s/03"), &term("p"), &term("o/3")));
        assert!(ds.delete(&term("s/10"), &term("p"), &term("o/3")));
        assert!(ds.insert(term("s/03"), term("p"), term("o/3")));
        assert!(ds.insert(term("s/05"), term("p"), term("o/0")));
        assert!(ds.insert(term("s/29"), term("p"), term("o/6")));
        ds
    }

    #[test]
    fn seek_with_matches_linear_scan_positions() {
        let ds = build_runny();
        let p = ds.lookup(&term("p")).unwrap();
        let pat = [None, Some(p), None];
        for order in [IndexOrder::Pos, IndexOrder::Pso] {
            let full: Vec<[Id; 3]> = ds.scan_with(pat, order).collect();
            let keys: Vec<[Id; 3]> = full.iter().map(|&t| order.key_of(t)).collect();
            // prefix length 1 (the bound predicate) → unbound components
            // start at index 1; probe every key at granularities 1 and 2.
            for m in 1..=2usize {
                for probe in &keys {
                    let want = &probe[1..1 + m];
                    let lo = keys.iter().filter(|k| k[1..1 + m].cmp(want).is_lt()).count();
                    let hi = keys.iter().filter(|k| k[1..1 + m].cmp(want).is_le()).count();
                    assert_eq!(ds.seek_with(pat, order, want, false), lo, "{order:?} lo m={m}");
                    assert_eq!(ds.seek_with(pat, order, want, true), hi, "{order:?} hi m={m}");
                }
            }
            // Seeking resumes the sliced scan at the sought key.
            let probe = order.key_of(full[full.len() / 2]);
            let at = ds.seek_with(pat, order, &probe[1..2], false);
            let resumed: Vec<[Id; 3]> = ds.scan_slice_with(pat, order, at, full.len()).collect();
            assert_eq!(resumed, full[at..], "{order:?} resume");
        }
    }

    #[test]
    fn key_range_cuts_align_to_runs_and_cover_extent() {
        let ds = build_runny();
        let p = ds.lookup(&term("p")).unwrap();
        let pat = [None, Some(p), None];
        let order = IndexOrder::Pos;
        let full: Vec<[Id; 3]> = ds.scan_with(pat, order).collect();
        let keys: Vec<[Id; 3]> = full.iter().map(|&t| order.key_of(t)).collect();
        for target in 1..=full.len() + 2 {
            let cuts = ds.key_range_cuts(pat, order, 1, target);
            assert_eq!(cuts[0], 0, "target {target}");
            assert_eq!(*cuts.last().unwrap(), full.len(), "target {target}");
            assert!(cuts.windows(2).all(|w| w[0] < w[1]), "empty morsel at target {target}");
            // No run of equal leading key components straddles a cut.
            for &c in &cuts[1..cuts.len() - 1] {
                assert_ne!(keys[c - 1][1], keys[c][1], "run straddles cut {c} (target {target})");
            }
            // Morsel slices concatenate to the full scan.
            let mut pieced = Vec::new();
            for w in cuts.windows(2) {
                pieced.extend(ds.scan_slice_with(pat, order, w[0], w[1]));
            }
            assert_eq!(pieced, full, "target {target}");
        }
        // Empty scans produce zero morsels.
        let missing = [None, Some(Id(u32::MAX - 1)), None];
        assert_eq!(ds.key_range_cuts(missing, Dataset::default_order(missing), 1, 4), vec![0]);
    }

    #[test]
    fn scan_desc_runs_is_a_stable_descending_sort_of_the_forward_scan() {
        let ds = build_runny();
        let p = ds.lookup(&term("p")).unwrap();
        let pat = [None, Some(p), None];
        for order in [IndexOrder::Pos, IndexOrder::Pso] {
            let forward: Vec<[Id; 3]> = ds.scan_with(pat, order).collect();
            for m in 1..=2usize {
                let mut expect = forward.clone();
                // Stable descending sort on the first m unbound key
                // components — what ORDER BY … DESC over the forward
                // arrival order produces.
                expect.sort_by(|&a, &b| {
                    let (ka, kb) = (order.key_of(a), order.key_of(b));
                    kb[1..1 + m].cmp(&ka[1..1 + m])
                });
                let got: Vec<[Id; 3]> = ds.scan_desc_runs(pat, order, m).collect();
                assert_eq!(got, expect, "{order:?} m={m}");
            }
        }
        // Granularity 0 degenerates to the forward scan (one single run).
        let forward: Vec<[Id; 3]> = ds.scan_with(pat, IndexOrder::Pos).collect();
        let got: Vec<[Id; 3]> = ds.scan_desc_runs(pat, IndexOrder::Pos, 0).collect();
        assert_eq!(got, forward);
    }

    #[test]
    fn batch_apis_report_net_changes() {
        let mut b = StoreBuilder::new();
        b.insert(term("s/a"), term("p"), term("o/1"));
        let mut ds = b.freeze_in_memory();
        let n = ds.insert_batch(vec![
            (term("s/a"), term("p"), term("o/1")), // already visible
            (term("s/a"), term("p"), term("o/2")),
            (term("s/c"), term("p"), term("o/1")),
        ]);
        assert_eq!(n, 2);
        assert_eq!(ds.len(), 3);
        let n = ds.delete_batch(vec![
            (term("s/a"), term("p"), term("o/2")),
            (term("s/missing"), term("p"), term("o/1")), // unknown term
        ]);
        assert_eq!(n, 1);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn stress_echo_is_invisible_in_results() {
        // Build the same dataset plain and with a hand-seeded echo (what
        // PARAMBENCH_OVERLAY_STRESS does at freeze): every read agrees.
        let build = || {
            let mut b = StoreBuilder::new();
            for i in 0..10u32 {
                b.insert(term(&format!("s/{i}")), term("p"), term(&format!("o/{}", i % 4)));
            }
            b.freeze_in_memory()
        };
        let plain = build();
        let mut echoed = build();
        echoed.seed_stress_overlay();
        assert!(!echoed.overlay().is_empty());
        assert!(echoed.overlay().net_empty());
        assert_eq!(echoed.len(), plain.len());
        let p = plain.lookup(&term("p")).unwrap();
        for pat in [[None, None, None], [None, Some(p), None]] {
            let a: Vec<[Id; 3]> = plain.scan(pat).collect();
            let b2: Vec<[Id; 3]> = echoed.scan(pat).collect();
            assert_eq!(a, b2, "{pat:?}");
            assert_eq!(plain.count(pat), echoed.count(pat));
            assert_eq!(plain.distinct_next(pat), echoed.distinct_next(pat));
        }
        assert!(echoed.order_by_value_intact());
    }
}
