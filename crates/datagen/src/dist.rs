//! Sampling utilities shared by the generators.
//!
//! Everything is driven by a seeded [`rand::rngs::StdRng`], so a
//! `(config, seed)` pair always regenerates the identical dataset —
//! a property the workload-stability experiments (E2) depend on.

use rand::prelude::*;
use rand::rngs::StdRng;

/// A precomputed discrete distribution over `0..n` with Zipf(s) weights:
/// `P(k) ∝ 1/(k+1)^s`. Sampling is by binary search over the CDF.
///
/// Used for country populations, person "attractiveness" in the social
/// graph, post activity and travel-destination popularity — the skews the
/// paper's E1/E2 attribute to "real-world distributions".
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` ranks with exponent `s ≥ 0`.
    /// `s = 0` degenerates to uniform. Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(s >= 0.0 && s.is_finite(), "invalid Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the support is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (rank 0 is the most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Samples an index from explicit non-negative weights.
pub fn weighted_index(weights: &[f64], rng: &mut StdRng) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// A power-law-ish degree sampler: `max(min_deg, round(scale / u^alpha))`
/// clipped at `max_deg`, where `u ~ U(0,1)`. Produces the heavy-tailed
/// friend/post counts that make uniform parameter sampling unstable (E2).
#[derive(Debug, Clone, Copy)]
pub struct PowerLawDegree {
    pub min_deg: usize,
    pub max_deg: usize,
    pub scale: f64,
    pub alpha: f64,
}

impl PowerLawDegree {
    /// Samples one degree.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(1e-6..1.0);
        let d = (self.scale / u.powf(self.alpha)).round() as usize;
        d.clamp(self.min_deg, self.max_deg)
    }
}

/// Deterministic RNG from a root seed and a stream label, so independent
/// generator phases don't perturb each other when one changes.
pub fn stream_rng(seed: u64, label: &str) -> StdRng {
    // FNV-1a over the label, mixed into the seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_normalized_and_monotone() {
        let z = Zipf::new(10, 1.0);
        assert_eq!(z.len(), 10);
        let total: f64 = (0..10).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(9));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_respects_skew() {
        let z = Zipf::new(20, 1.2);
        let mut rng = stream_rng(42, "zipf-test");
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > 3 * counts[10]);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn weighted_index_prefers_heavy() {
        let mut rng = stream_rng(7, "weighted");
        let w = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..5_000 {
            counts[weighted_index(&w, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 5 * counts[2]);
    }

    #[test]
    fn degrees_respect_bounds() {
        let d = PowerLawDegree { min_deg: 1, max_deg: 100, scale: 3.0, alpha: 0.8 };
        let mut rng = stream_rng(1, "deg");
        let samples: Vec<usize> = (0..2_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| (1..=100).contains(&x)));
        // Heavy tail: someone should exceed 5× the minimum scale.
        assert!(samples.iter().any(|&x| x > 15));
        // But the median stays small.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        assert!(sorted[1000] <= 10);
    }

    #[test]
    fn stream_rng_is_deterministic_and_label_sensitive() {
        let a: u64 = stream_rng(5, "x").gen();
        let b: u64 = stream_rng(5, "x").gen();
        let c: u64 = stream_rng(5, "y").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
