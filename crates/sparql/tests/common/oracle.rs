//! An independent, deliberately naive SPARQL-subset evaluator used as the
//! differential-testing oracle for the streaming engine.
//!
//! This replaces the retired `legacy` module (the PR-1 materializing
//! executor): instead of shipping a second executor in the library, the
//! oracle lives in test support and evaluates queries the simplest way
//! that could possibly be right — nested-loop pattern extension over the
//! store's scans, then solution modifiers computed over *decoded terms*
//! (never over dictionary ids or the engine's solution tables).
//!
//! Pattern-combination semantics mirror the engine's documented subset
//! (UNION groups joined in order on variables shared with the part
//! evaluated before them; OPTIONAL left-joined on variables shared with
//! the required part; group-scoped filters), which PR 1's differential
//! suites validated against a naive evaluator. What this oracle chiefly
//! guards is the **modifier stack**: DISTINCT, GROUP BY/aggregation,
//! ORDER BY and LIMIT/OFFSET, which the engine now pushes into streaming
//! operators.
//!
//! Because ORDER BY only constrains the *sort keys*, a limited result may
//! legitimately differ from the oracle's in which tie rows survive the
//! cut. [`assert_matches`] therefore compares tie-class by tie-class: the
//! engine's rows must be a sub-multiset of the oracle's rows of the same
//! key class, with full equality for classes entirely inside the
//! OFFSET/LIMIT window.

use std::cmp::Ordering;
use std::collections::HashMap;

use parambench_rdf::dict::Id;
use parambench_rdf::store::Dataset;
use parambench_rdf::term::Term;
use parambench_sparql::ast::{AggFunc, Element, Expr, Projection, SelectQuery, VarOrTerm};
use parambench_sparql::exec::{eval_expr, Value, UNBOUND};
use parambench_sparql::results::{OutVal, ResultSet};

/// A naive solution table: named columns, id-level rows (UNBOUND = pad).
struct Table {
    vars: Vec<String>,
    rows: Vec<Vec<Id>>,
}

impl Table {
    fn unit() -> Table {
        Table { vars: Vec::new(), rows: vec![Vec::new()] }
    }

    fn col(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }
}

/// The oracle's fully modified result, *before* OFFSET/LIMIT slicing, plus
/// everything [`assert_matches`] needs to compare a limited engine result.
pub struct OracleOutput {
    pub columns: Vec<String>,
    /// Sorted (if ORDER BY) + projected + deduplicated (if DISTINCT) rows.
    pub full_rows: Vec<Vec<OutVal>>,
    /// The sort-key tuple of each row of `full_rows` (empty tuples when the
    /// query has no ORDER BY).
    keys: Vec<Vec<OutVal>>,
    offset: usize,
    limit: Option<usize>,
}

/// The variable/alias name of an ORDER BY key. The oracle's subset does
/// not evaluate expression keys (the engine has targeted unit tests for
/// those); the generators never draw them.
fn key_var(k: &parambench_sparql::ast::OrderKey) -> &str {
    k.target.as_var().expect("oracle order keys are plain variables")
}

/// Naive benchmark-order comparison over decoded values: numeric values
/// first (by value), then non-numeric terms in `Term` order, unbound last.
/// Mirrors the engine's ordering semantics without touching its code.
pub fn cmp_vals(a: &OutVal, b: &OutVal) -> Ordering {
    let num = |v: &OutVal| v.as_num();
    match (a, b) {
        (OutVal::Unbound, OutVal::Unbound) => Ordering::Equal,
        (OutVal::Unbound, _) => Ordering::Greater,
        (_, OutVal::Unbound) => Ordering::Less,
        _ => match (num(a), num(b)) {
            // Independent NaN-last total order (deliberately not the
            // engine's `cmp_numeric`, so the oracle cross-checks it).
            (Some(x), Some(y)) => match (x.is_nan(), y.is_nan()) {
                (false, false) => x.partial_cmp(&y).expect("non-NaN comparison"),
                (false, true) => Ordering::Less,
                (true, false) => Ordering::Greater,
                (true, true) => Ordering::Equal,
            },
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => match (a, b) {
                (OutVal::Term(x), OutVal::Term(y)) => x.cmp(y),
                _ => Ordering::Equal,
            },
        },
    }
}

/// Evaluates `query` naively over `ds`. Panics on queries outside the
/// supported subset (the generators only produce supported shapes).
pub fn evaluate(ds: &Dataset, query: &SelectQuery) -> OracleOutput {
    // --- split the WHERE clause exactly like the engine's subset ---
    let mut required = Vec::new();
    let mut filters = Vec::new();
    let mut optionals: Vec<(Vec<_>, Vec<Expr>)> = Vec::new();
    let mut unions: Vec<Vec<(Vec<_>, Vec<Expr>)>> = Vec::new();
    let flat = |elements: &[Element]| {
        let mut pats = Vec::new();
        let mut fs = Vec::new();
        for el in elements {
            match el {
                Element::Triple(t) => pats.push(t.clone()),
                Element::Filter(f) => fs.push(f.clone()),
                _ => panic!("oracle: nested groups unsupported"),
            }
        }
        (pats, fs)
    };
    for el in &query.where_clause {
        match el {
            Element::Triple(t) => required.push(t.clone()),
            Element::Filter(f) => filters.push(f.clone()),
            Element::Optional(inner) => optionals.push(flat(inner)),
            Element::Union(branches) => unions.push(branches.iter().map(|b| flat(b)).collect()),
        }
    }

    // --- required BGP ---
    let mut base = if required.is_empty() {
        None
    } else {
        let mut t = Table::unit();
        for p in &required {
            t = extend(ds, t, p);
        }
        Some(t)
    };

    // --- UNION groups, joined in order on shared variables ---
    for branches in &unions {
        let mut concat: Option<Table> = None;
        for (pats, fs) in branches {
            let mut t = Table::unit();
            for p in pats {
                t = extend(ds, t, p);
            }
            let t = filter(ds, t, fs);
            concat = Some(match concat {
                None => t,
                Some(mut acc) => {
                    let map: Vec<usize> = acc
                        .vars
                        .iter()
                        .map(|v| t.col(v).expect("union branches bind the same vars"))
                        .collect();
                    for row in &t.rows {
                        acc.rows.push(map.iter().map(|&c| row[c]).collect());
                    }
                    acc
                }
            });
        }
        let union_t = concat.expect("non-empty union");
        base = Some(match base {
            None => union_t,
            Some(b) => join(b, union_t),
        });
    }
    let mut table = base.expect("query has a base");
    let required_vars: Vec<String> = table.vars.clone();

    // --- OPTIONAL groups, left-joined on vars shared with the required part ---
    for (pats, fs) in &optionals {
        let mut t = Table::unit();
        for p in pats {
            t = extend(ds, t, p);
        }
        let t = filter(ds, t, fs);
        table = left_join(table, t, &required_vars);
    }

    // --- top-level filters ---
    table = filter(ds, table, &filters);

    // --- modifiers over decoded values ---
    let decode = |id: Id| -> OutVal {
        if id == UNBOUND {
            OutVal::Unbound
        } else {
            OutVal::Term(ds.decode(id).clone())
        }
    };

    let has_aggs = query.projections.iter().any(|p| matches!(p, Projection::Aggregate { .. }));

    // Build the solution rows: projections first, then helper ORDER BY
    // columns (variables not already projected).
    let mut columns: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<OutVal>> = Vec::new();
    if has_aggs {
        // Group rows by the GROUP BY variables, in first-seen order.
        let group_cols: Vec<usize> =
            query.group_by.iter().map(|g| table.col(g).expect("group var bound")).collect();
        let mut order: Vec<Vec<Id>> = Vec::new();
        let mut groups: HashMap<Vec<Id>, Vec<Vec<Id>>> = HashMap::new();
        for row in &table.rows {
            let key: Vec<Id> = group_cols.iter().map(|&c| row[c]).collect();
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(row.clone());
        }
        if query.group_by.is_empty() && order.is_empty() {
            // Implicit single group over empty input: one all-empty group.
            order.push(Vec::new());
            groups.insert(Vec::new(), Vec::new());
        }
        for p in &query.projections {
            columns.push(match p {
                Projection::Var(v) => v.clone(),
                Projection::Aggregate { alias, .. } => alias.clone(),
            });
        }
        for k in &query.order_by {
            if !columns.contains(&key_var(k).to_string()) {
                columns.push(key_var(k).to_string());
            }
        }
        for key in &order {
            let members = &groups[key];
            let mut out_row: Vec<OutVal> = Vec::new();
            for name in &columns {
                if let Some(gi) = query.group_by.iter().position(|g| g == name) {
                    out_row.push(decode(key[gi]));
                    continue;
                }
                let p = query
                    .projections
                    .iter()
                    .find(|p| matches!(p, Projection::Aggregate { alias, .. } if alias == name))
                    .expect("column is a group var or an aggregate alias");
                let Projection::Aggregate { func, var, distinct, .. } = p else { unreachable!() };
                out_row.push(fold_naive(ds, &table, members, *func, var.as_deref(), *distinct));
            }
            rows.push(out_row);
        }
    } else {
        for p in &query.projections {
            if let Projection::Var(v) = p {
                columns.push(v.clone());
            }
        }
        for k in &query.order_by {
            if !columns.contains(&key_var(k).to_string()) {
                columns.push(key_var(k).to_string());
            }
        }
        let cols: Vec<usize> =
            columns.iter().map(|v| table.col(v).expect("projected var bound")).collect();
        for row in &table.rows {
            rows.push(cols.iter().map(|&c| decode(row[c])).collect());
        }
    }

    // Stable sort by the ORDER BY keys.
    let key_cols: Vec<(usize, bool)> = query
        .order_by
        .iter()
        .map(|k| (columns.iter().position(|c| c == key_var(k)).expect("key col"), k.descending))
        .collect();
    if !key_cols.is_empty() {
        rows.sort_by(|a, b| {
            for &(c, desc) in &key_cols {
                let ord = cmp_vals(&a[c], &b[c]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    // Capture key tuples, project to the declared outputs, then DISTINCT.
    let out_width = query.projections.len();
    let keys: Vec<Vec<OutVal>> =
        rows.iter().map(|r| key_cols.iter().map(|&(c, _)| r[c].clone()).collect()).collect();
    let mut keyed: Vec<(Vec<OutVal>, Vec<OutVal>)> = rows
        .into_iter()
        .zip(keys)
        .map(|(mut r, k)| {
            r.truncate(out_width);
            (r, k)
        })
        .collect();
    if query.distinct {
        let mut seen = std::collections::HashSet::new();
        keyed.retain(|(r, _)| seen.insert(format!("{r:?}")));
    }
    let (full_rows, keys): (Vec<_>, Vec<_>) = keyed.into_iter().unzip();

    OracleOutput {
        columns: columns[..out_width].to_vec(),
        full_rows,
        keys,
        offset: query.offset.unwrap_or(0),
        limit: query.limit,
    }
}

/// Extends every solution with every matching triple of `p`.
fn extend(ds: &Dataset, table: Table, p: &parambench_sparql::ast::TriplePattern) -> Table {
    let slots = [&p.subject, &p.predicate, &p.object];
    let mut vars = table.vars.clone();
    for s in slots {
        if let VarOrTerm::Var(v) = s {
            if !vars.contains(v) {
                vars.push(v.clone());
            }
        }
    }
    let mut rows = Vec::new();
    'row: for row in &table.rows {
        // Bind the access pattern from constants and already-bound vars.
        let mut access: [Option<Id>; 3] = [None, None, None];
        for (i, s) in slots.iter().enumerate() {
            match s {
                VarOrTerm::Term(t) => match ds.lookup(t) {
                    Some(id) => access[i] = Some(id),
                    None => continue 'row, // constant absent: no matches
                },
                VarOrTerm::Var(v) => {
                    if let Some(c) = table.col(v) {
                        access[i] = Some(row[c]);
                    }
                }
                VarOrTerm::Param(_) => panic!("oracle: unbound parameter"),
            }
        }
        for triple in ds.scan(access) {
            // Repeated variables inside the pattern must agree.
            let mut bound: HashMap<&str, Id> = HashMap::new();
            let mut ok = true;
            for (i, s) in slots.iter().enumerate() {
                if let VarOrTerm::Var(v) = s {
                    match bound.get(v.as_str()) {
                        Some(&prev) if prev != triple[i] => {
                            ok = false;
                            break;
                        }
                        _ => {
                            bound.insert(v, triple[i]);
                        }
                    }
                }
            }
            if !ok {
                continue;
            }
            let mut out = row.clone();
            for v in &vars[table.vars.len()..] {
                out.push(bound[v.as_str()]);
            }
            rows.push(out);
        }
    }
    Table { vars, rows }
}

/// Keeps rows on which every filter evaluates to boolean true (shared
/// row-expression semantics — the oracle targets modifiers, not filters).
fn filter(ds: &Dataset, table: Table, filters: &[Expr]) -> Table {
    if filters.is_empty() {
        return table;
    }
    let var_col: HashMap<String, usize> =
        table.vars.iter().enumerate().map(|(c, v)| (v.clone(), c)).collect();
    let rows = table
        .rows
        .into_iter()
        .filter(|row| {
            filters.iter().all(|f| matches!(eval_expr(f, row, &var_col, ds), Value::Bool(true)))
        })
        .collect();
    Table { vars: table.vars, rows }
}

/// Inner join on all shared variables (hash-indexed, semantics naive).
fn join(left: Table, right: Table) -> Table {
    let shared: Vec<(usize, usize)> = left
        .vars
        .iter()
        .enumerate()
        .filter_map(|(lc, v)| right.col(v).map(|rc| (lc, rc)))
        .collect();
    let right_new: Vec<usize> =
        (0..right.vars.len()).filter(|&rc| !left.vars.contains(&right.vars[rc])).collect();
    let mut vars = left.vars.clone();
    for &rc in &right_new {
        vars.push(right.vars[rc].clone());
    }
    let mut index: HashMap<Vec<Id>, Vec<usize>> = HashMap::new();
    for (i, row) in right.rows.iter().enumerate() {
        let key: Vec<Id> = shared.iter().map(|&(_, rc)| row[rc]).collect();
        index.entry(key).or_default().push(i);
    }
    let mut rows = Vec::new();
    for lrow in &left.rows {
        let key: Vec<Id> = shared.iter().map(|&(lc, _)| lrow[lc]).collect();
        if let Some(matches) = index.get(&key) {
            for &ri in matches {
                let mut out = lrow.clone();
                for &rc in &right_new {
                    out.push(right.rows[ri][rc]);
                }
                rows.push(out);
            }
        }
    }
    Table { vars, rows }
}

/// Left outer join on the variables of `right` shared with `join_scope`
/// (the engine's OPTIONAL semantics: keys are the variables shared with
/// the *required* part; other shared variables keep the left value).
fn left_join(left: Table, right: Table, join_scope: &[String]) -> Table {
    let keys: Vec<(usize, usize)> = right
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| join_scope.contains(v))
        .filter_map(|(rc, v)| left.col(v).map(|lc| (lc, rc)))
        .collect();
    let right_new: Vec<usize> =
        (0..right.vars.len()).filter(|&rc| !left.vars.contains(&right.vars[rc])).collect();
    let mut vars = left.vars.clone();
    for &rc in &right_new {
        vars.push(right.vars[rc].clone());
    }
    let mut index: HashMap<Vec<Id>, Vec<usize>> = HashMap::new();
    for (i, row) in right.rows.iter().enumerate() {
        let key: Vec<Id> = keys.iter().map(|&(_, rc)| row[rc]).collect();
        index.entry(key).or_default().push(i);
    }
    let mut rows = Vec::new();
    for lrow in &left.rows {
        let key: Vec<Id> = keys.iter().map(|&(lc, _)| lrow[lc]).collect();
        let matches =
            if key.contains(&UNBOUND) { None } else { index.get(&key).filter(|m| !m.is_empty()) };
        match matches {
            Some(matches) => {
                for &ri in matches {
                    let mut out = lrow.clone();
                    for &rc in &right_new {
                        out.push(right.rows[ri][rc]);
                    }
                    rows.push(out);
                }
            }
            None => {
                let mut out = lrow.clone();
                out.extend(std::iter::repeat_n(UNBOUND, right_new.len()));
                rows.push(out);
            }
        }
    }
    Table { vars, rows }
}

/// Naive aggregate fold over a group's rows, on decoded numeric values.
/// Subset semantics (mirrors the engine's documented behaviour): COUNT
/// counts bound values; SUM sums numeric values (0 if none); AVG divides
/// by the numeric count (unbound when 0); MIN/MAX fold numeric values
/// only (unbound when none).
fn fold_naive(
    ds: &Dataset,
    table: &Table,
    members: &[Vec<Id>],
    func: AggFunc,
    var: Option<&str>,
    distinct: bool,
) -> OutVal {
    let col = var.map(|v| table.col(v).expect("aggregate input var bound"));
    let mut count = 0u64;
    let mut num_count = 0u64;
    let mut sum = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut seen: std::collections::HashSet<Term> = std::collections::HashSet::new();
    for row in members {
        match col {
            None => count += 1, // COUNT(*)
            Some(c) => {
                let id = row[c];
                if id == UNBOUND {
                    continue;
                }
                let term = ds.decode(id).clone();
                if distinct && !seen.insert(term.clone()) {
                    continue;
                }
                count += 1;
                if let Some(n) = term.numeric_value() {
                    num_count += 1;
                    sum += n;
                    min = min.min(n);
                    max = max.max(n);
                }
            }
        }
    }
    match func {
        AggFunc::Count => OutVal::Num(count as f64),
        AggFunc::Sum => OutVal::Num(sum),
        AggFunc::Avg => {
            if num_count == 0 {
                OutVal::Unbound
            } else {
                OutVal::Num(sum / num_count as f64)
            }
        }
        AggFunc::Min => {
            if num_count == 0 {
                OutVal::Unbound
            } else {
                OutVal::Num(min)
            }
        }
        AggFunc::Max => {
            if num_count == 0 {
                OutVal::Unbound
            } else {
                OutVal::Num(max)
            }
        }
    }
}

/// Asserts that an engine result is a valid answer w.r.t. the oracle:
///
/// * identical output columns;
/// * exactly the rows the OFFSET/LIMIT window selects, compared tie-class
///   by tie-class: classes fully inside the window must match as
///   multisets; boundary classes must be sub-multisets of the oracle's
///   class (ties at the cut are legitimately implementation-defined).
///
/// Without ORDER BY the whole result is one class, so this degrades to
/// "correct row count + sub-multiset of the full result" under LIMIT and
/// exact multiset equality without it.
pub fn assert_matches(got: &ResultSet, oracle: &OracleOutput, context: &str) {
    assert_eq!(got.columns, oracle.columns, "columns diverge for {context}");
    let n = oracle.full_rows.len();
    let lo = oracle.offset.min(n);
    let hi = match oracle.limit {
        Some(l) => (oracle.offset + l).min(n),
        None => n,
    };
    assert_eq!(
        got.rows.len(),
        hi - lo,
        "row count diverges for {context}: oracle window [{lo},{hi}) of {n}"
    );

    // Walk tie classes (consecutive rows with equal key tuples).
    let key_eq = |a: &Vec<OutVal>, b: &Vec<OutVal>| {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| cmp_vals(x, y) == Ordering::Equal)
    };
    let mut class_start = 0usize;
    while class_start < n {
        let mut class_end = class_start + 1;
        while class_end < n && key_eq(&oracle.keys[class_start], &oracle.keys[class_end]) {
            class_end += 1;
        }
        let a = class_start.max(lo);
        let b = class_end.min(hi);
        if a < b {
            let mut got_rows: Vec<String> =
                got.rows[a - lo..b - lo].iter().map(|r| format!("{r:?}")).collect();
            let mut class_rows: Vec<String> =
                oracle.full_rows[class_start..class_end].iter().map(|r| format!("{r:?}")).collect();
            got_rows.sort();
            class_rows.sort();
            if class_start >= lo && class_end <= hi {
                assert_eq!(
                    got_rows, class_rows,
                    "class [{class_start},{class_end}) diverges for {context}"
                );
            } else {
                // Boundary class: engine rows must be a sub-multiset.
                let mut it = class_rows.iter();
                for g in &got_rows {
                    assert!(
                        it.any(|c| c == g),
                        "row {g} not in oracle tie class [{class_start},{class_end}) for {context}"
                    );
                }
            }
        }
        class_start = class_end;
    }
}
