//! The triple store: a write-once builder and a frozen, fully indexed dataset.

use crate::dict::{Dictionary, Id};
use crate::index::{IndexOrder, PermIndex};
use crate::stats::{CharacteristicSets, DatasetStats};
use crate::term::Term;

/// A triple pattern at the id level: `None` = wildcard position.
pub type IdPattern = [Option<Id>; 3];

/// Accumulates triples (at the term level), then freezes into a [`Dataset`].
///
/// The builder is the single mutation point of the system: once
/// [`StoreBuilder::freeze`] runs, the dataset is immutable and safe to share
/// across threads (`Dataset: Send + Sync`).
#[derive(Debug, Default)]
pub struct StoreBuilder {
    dict: Dictionary,
    triples: Vec<[Id; 3]>,
}

impl StoreBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of (possibly duplicate) triples inserted so far.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if no triple was inserted.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Access to the dictionary being built (for pre-interning vocabulary).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Inserts a triple of terms.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) {
        let s = self.dict.encode(s);
        let p = self.dict.encode(p);
        let o = self.dict.encode(o);
        self.triples.push([s, p, o]);
    }

    /// Inserts a triple of already-interned ids.
    ///
    /// # Panics
    /// When any id was not handed out by this builder's dictionary. The
    /// check is unconditional: in a release build an out-of-range id would
    /// otherwise corrupt the frozen indexes silently (or panic much later,
    /// deep inside `reorder_by_value`, far from the culprit).
    pub fn insert_ids(&mut self, s: Id, p: Id, o: Id) {
        let n = self.dict.len();
        assert!(
            s.index() < n && p.index() < n && o.index() < n,
            "insert_ids([{s}, {p}, {o}]): id out of range for a dictionary of {n} terms"
        );
        self.triples.push([s, p, o]);
    }

    /// Deduplicates, builds all six permutation indexes and dataset
    /// statistics, and returns the immutable dataset.
    ///
    /// Freezing first rewrites the dictionary into *value order*
    /// ([`Dictionary::reorder_by_value`]): ascending ids then mean
    /// ascending ORDER BY values (numerics first by value, then term
    /// order), so every sorted permutation index doubles as a sorted
    /// result source and the executor can skip sorts behind an
    /// order-compatible scan.
    ///
    /// When the `PARAMBENCH_SNAPSHOT_FREEZE` env knob is set (see
    /// [`crate::snapshot::SNAPSHOT_FREEZE_ENV`]), the frozen dataset is
    /// round-tripped through a temporary on-disk snapshot and the *loaded*
    /// store is returned instead — pointing an entire test suite at the
    /// mapped-scan path without touching a single test.
    pub fn freeze(self) -> Dataset {
        let ds = self.freeze_in_memory();
        if crate::snapshot::freeze_roundtrip_enabled() {
            return crate::snapshot::roundtrip_via_temp_snapshot(&ds)
                .expect("PARAMBENCH_SNAPSHOT_FREEZE round-trip");
        }
        ds
    }

    /// [`StoreBuilder::freeze`] without the env-gated snapshot round-trip:
    /// always builds (and returns) the heap-resident store. The benchmark
    /// harness uses this to time cold builds, and differential tests to
    /// hold the in-memory side fixed while the loaded side varies.
    pub fn freeze_in_memory(mut self) -> Dataset {
        let old_to_new = self.dict.reorder_by_value();
        for triple in &mut self.triples {
            for slot in triple.iter_mut() {
                *slot = Id(old_to_new[slot.index()]);
            }
        }
        self.triples.sort_unstable();
        self.triples.dedup();
        let indexes: Vec<PermIndex> =
            IndexOrder::ALL.iter().map(|&order| PermIndex::build(order, &self.triples)).collect();
        let indexes: [PermIndex; 6] = indexes.try_into().expect("six orders");
        let stats = DatasetStats::compute(&indexes[IndexOrder::Pso.slot()], &self.dict);
        let char_sets = CharacteristicSets::compute(&indexes[IndexOrder::Spo.slot()]);
        Dataset { dict: self.dict, indexes, stats, char_sets }
    }
}

/// An immutable, fully indexed RDF dataset.
///
/// Datasets come into existence two ways: built in memory by
/// [`StoreBuilder::freeze`], or reloaded from a persistent snapshot by
/// [`Dataset::load`] — in which case the triple arrays and bucket
/// directories are served zero-copy from the snapshot's bytes (see
/// [`crate::snapshot`]). The query surface is identical either way.
#[derive(Debug)]
pub struct Dataset {
    pub(crate) dict: Dictionary,
    pub(crate) indexes: [PermIndex; 6],
    pub(crate) stats: DatasetStats,
    pub(crate) char_sets: CharacteristicSets,
}

impl Dataset {
    /// True when this dataset was reloaded from a snapshot and serves its
    /// scans from the snapshot's bytes (OS-mapped or arena-backed) rather
    /// than a freeze-time heap build.
    pub fn is_loaded(&self) -> bool {
        self.indexes.iter().all(PermIndex::is_loaded)
    }

    /// True when this dataset's scans are served from an OS file mapping
    /// (the zero-copy fast path; false for heap builds and for the
    /// read-into-arena fallback forced by `PARAMBENCH_SNAPSHOT_MMAP=off`).
    pub fn is_mapped(&self) -> bool {
        self.indexes.iter().all(PermIndex::is_mapped)
    }
    /// The term dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Pre-computed dataset statistics.
    pub fn stats(&self) -> &DatasetStats {
        &self.stats
    }

    /// Pre-computed characteristic sets (star-query statistics).
    pub fn char_sets(&self) -> &CharacteristicSets {
        &self.char_sets
    }

    /// Total number of distinct triples.
    pub fn len(&self) -> usize {
        self.indexes[0].len()
    }

    /// True if the dataset holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The index with the given ordering.
    #[allow(clippy::should_implement_trait)] // domain term: a store "index", not ops::Index
    pub fn index(&self, order: IndexOrder) -> &PermIndex {
        &self.indexes[order.slot()]
    }

    /// The default index order serving an id-level pattern.
    pub fn default_order(pattern: IdPattern) -> IndexOrder {
        IndexOrder::for_bound(pattern[0].is_some(), pattern[1].is_some(), pattern[2].is_some())
    }

    /// Chooses the index and key prefix serving an id-level pattern.
    fn plan_access(&self, pattern: IdPattern) -> (&PermIndex, Vec<Id>) {
        self.plan_access_with(pattern, Self::default_order(pattern))
    }

    /// The index of `order` and the bound-key prefix for `pattern`.
    /// `order` must cover the pattern's bound positions
    /// ([`IndexOrder::covers_bound`]).
    fn plan_access_with(&self, pattern: IdPattern, order: IndexOrder) -> (&PermIndex, Vec<Id>) {
        debug_assert!(
            order.covers_bound(pattern[0].is_some(), pattern[1].is_some(), pattern[2].is_some()),
            "{order:?} does not cover the bound positions of {pattern:?}"
        );
        let idx = self.index(order);
        let perm = order.perm();
        let mut prefix = Vec::with_capacity(3);
        for &pos in &perm {
            match pattern[pos] {
                Some(id) => prefix.push(id),
                None => break,
            }
        }
        (idx, prefix)
    }

    /// Iterates all SPO triples matching `pattern`.
    pub fn scan(&self, pattern: IdPattern) -> impl Iterator<Item = [Id; 3]> + '_ {
        self.scan_with(pattern, Self::default_order(pattern))
    }

    /// Iterates all SPO triples matching `pattern` out of the index with
    /// the given `order` (which must cover the pattern's bound positions).
    /// The choice never changes *which* triples match — only the order they
    /// are delivered in: ascending by the unbound key positions of `order`.
    pub fn scan_with(
        &self,
        pattern: IdPattern,
        order: IndexOrder,
    ) -> impl Iterator<Item = [Id; 3]> + '_ {
        let (idx, prefix) = self.plan_access_with(pattern, order);
        let end = idx.range(&prefix).len();
        // `prefix` is moved into the closure-owning iterator below.
        ScanIter { idx, prefix, pos: 0, end }
    }

    /// Iterates the sub-range `[start, end)` of the triples matching
    /// `pattern`, in the same index order [`Dataset::scan`] uses — the
    /// morsel primitive of parallel scans: consecutive slices concatenated
    /// in order reproduce the full scan exactly. `end` is clamped to the
    /// match count.
    pub fn scan_slice(
        &self,
        pattern: IdPattern,
        start: usize,
        end: usize,
    ) -> impl Iterator<Item = [Id; 3]> + '_ {
        self.scan_slice_with(pattern, Self::default_order(pattern), start, end)
    }

    /// [`Dataset::scan_slice`] over an explicit index `order` — so morsels
    /// of an order-chosen scan concatenate to [`Dataset::scan_with`] of the
    /// same order exactly.
    pub fn scan_slice_with(
        &self,
        pattern: IdPattern,
        order: IndexOrder,
        start: usize,
        end: usize,
    ) -> impl Iterator<Item = [Id; 3]> + '_ {
        let (idx, prefix) = self.plan_access_with(pattern, order);
        let len = idx.range(&prefix).len();
        ScanIter { idx, prefix, pos: start.min(len), end: end.min(len) }
    }

    /// Exact number of triples matching `pattern` (binary search only).
    pub fn count(&self, pattern: IdPattern) -> usize {
        let (idx, prefix) = self.plan_access(pattern);
        idx.count(&prefix)
    }

    /// True if at least one triple matches `pattern`.
    pub fn contains(&self, pattern: IdPattern) -> bool {
        self.count(pattern) > 0
    }

    /// Exact number of distinct values of the *first unbound* position in
    /// index order for `pattern` — e.g. for `(?, p, o)` the number of
    /// distinct subjects.
    pub fn distinct_next(&self, pattern: IdPattern) -> usize {
        let (idx, prefix) = self.plan_access(pattern);
        idx.distinct_after(&prefix)
    }

    /// Looks up a term id.
    pub fn lookup(&self, term: &Term) -> Option<Id> {
        self.dict.lookup(term)
    }

    /// Decodes an id back to its term.
    pub fn decode(&self, id: Id) -> &Term {
        self.dict.decode(id)
    }

    /// Iterates the distinct objects of triples with predicate `p` (e.g. a
    /// parameter domain such as "all countries") in ascending id order,
    /// without allocating. Preferred over [`Dataset::objects_of`] on hot
    /// paths (domain extraction scans every value once per curation run).
    pub fn objects_of_iter(&self, p: Id) -> impl Iterator<Item = Id> + '_ {
        DistinctSeconds { range: self.index(IndexOrder::Pos).range(&[p]), last: None }
    }

    /// Iterates the distinct subjects of triples with predicate `p` in
    /// ascending id order, without allocating.
    pub fn subjects_of_iter(&self, p: Id) -> impl Iterator<Item = Id> + '_ {
        DistinctSeconds { range: self.index(IndexOrder::Pso).range(&[p]), last: None }
    }

    /// All distinct objects of triples with predicate `p`. Sorted by id.
    /// Thin allocating wrapper around [`Dataset::objects_of_iter`].
    pub fn objects_of(&self, p: Id) -> Vec<Id> {
        self.objects_of_iter(p).collect()
    }

    /// All distinct subjects of triples with predicate `p`. Sorted by id.
    /// Thin allocating wrapper around [`Dataset::subjects_of_iter`].
    pub fn subjects_of(&self, p: Id) -> Vec<Id> {
        self.subjects_of_iter(p).collect()
    }
}

/// Iterator over the distinct values in key position 1 of a sorted,
/// single-prefix index range (duplicates form runs, so one look-behind
/// value suffices).
struct DistinctSeconds<'a> {
    range: &'a [[Id; 3]],
    last: Option<Id>,
}

impl Iterator for DistinctSeconds<'_> {
    type Item = Id;

    fn next(&mut self) -> Option<Id> {
        while let Some((key, rest)) = self.range.split_first() {
            self.range = rest;
            let v = key[1];
            if self.last != Some(v) {
                self.last = Some(v);
                return Some(v);
            }
        }
        None
    }
}

/// Owning scan iterator over (a slice of) one index range.
struct ScanIter<'a> {
    idx: &'a PermIndex,
    prefix: Vec<Id>,
    pos: usize,
    end: usize,
}

impl<'a> Iterator for ScanIter<'a> {
    type Item = [Id; 3];

    fn next(&mut self) -> Option<[Id; 3]> {
        let range = self.idx.range(&self.prefix);
        if self.pos < self.end {
            let key = range[self.pos];
            self.pos += 1;
            Some(self.idx.order().spo_of(key))
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.end.saturating_sub(self.pos);
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample() -> Dataset {
        let mut b = StoreBuilder::new();
        let alice = Term::iri("http://e/alice");
        let bob = Term::iri("http://e/bob");
        let carol = Term::iri("http://e/carol");
        let knows = Term::iri("http://e/knows");
        let name = Term::iri("http://e/name");
        b.insert(alice.clone(), knows.clone(), bob.clone());
        b.insert(alice.clone(), knows.clone(), carol.clone());
        b.insert(bob.clone(), knows.clone(), carol.clone());
        b.insert(alice.clone(), name.clone(), Term::literal("Alice"));
        b.insert(bob.clone(), name.clone(), Term::literal("Bob"));
        // duplicate — must be removed by freeze
        b.insert(alice, knows, bob);
        b.freeze()
    }

    #[test]
    fn freeze_dedups() {
        let ds = build_sample();
        assert_eq!(ds.len(), 5);
    }

    #[test]
    fn scan_by_various_masks() {
        let ds = build_sample();
        let alice = ds.lookup(&Term::iri("http://e/alice")).unwrap();
        let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
        let carol = ds.lookup(&Term::iri("http://e/carol")).unwrap();

        assert_eq!(ds.count([None, None, None]), 5);
        assert_eq!(ds.count([Some(alice), None, None]), 3);
        assert_eq!(ds.count([None, Some(knows), None]), 3);
        assert_eq!(ds.count([None, None, Some(carol)]), 2);
        assert_eq!(ds.count([Some(alice), Some(knows), None]), 2);
        assert_eq!(ds.count([Some(alice), None, Some(carol)]), 1);
        assert_eq!(ds.count([None, Some(knows), Some(carol)]), 2);
        assert_eq!(ds.count([Some(alice), Some(knows), Some(carol)]), 1);

        // scans agree with counts for every mask
        for s in [None, Some(alice)] {
            for p in [None, Some(knows)] {
                for o in [None, Some(carol)] {
                    let pat = [s, p, o];
                    assert_eq!(ds.scan(pat).count(), ds.count(pat), "{pat:?}");
                    for t in ds.scan(pat) {
                        if let Some(sv) = s {
                            assert_eq!(t[0], sv);
                        }
                        if let Some(pv) = p {
                            assert_eq!(t[1], pv);
                        }
                        if let Some(ov) = o {
                            assert_eq!(t[2], ov);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn contains_and_distinct() {
        let ds = build_sample();
        let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
        let name = ds.lookup(&Term::iri("http://e/name")).unwrap();
        assert!(ds.contains([None, Some(knows), None]));
        // distinct subjects of `knows`: alice, bob
        assert_eq!(ds.distinct_next([None, Some(knows), None]), 2);
        // distinct subjects of `name`: alice, bob
        assert_eq!(ds.distinct_next([None, Some(name), None]), 2);
    }

    #[test]
    fn objects_and_subjects_of() {
        let ds = build_sample();
        let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
        assert_eq!(ds.objects_of(knows).len(), 2); // bob, carol
        assert_eq!(ds.subjects_of(knows).len(), 2); // alice, bob
    }

    #[test]
    fn iterator_variants_match_allocating_wrappers() {
        let ds = build_sample();
        for pred in ["http://e/knows", "http://e/name"] {
            let p = ds.lookup(&Term::iri(pred)).unwrap();
            let objs: Vec<Id> = ds.objects_of_iter(p).collect();
            assert_eq!(objs, ds.objects_of(p), "objects of {pred}");
            let subs: Vec<Id> = ds.subjects_of_iter(p).collect();
            assert_eq!(subs, ds.subjects_of(p), "subjects of {pred}");
            // Distinct and sorted.
            let mut dedup = objs.clone();
            dedup.dedup();
            assert_eq!(dedup, objs);
            assert!(objs.windows(2).all(|w| w[0] < w[1]));
        }
        // A predicate with no triples yields an empty iterator.
        let missing = Id(9999);
        assert_eq!(ds.objects_of_iter(missing).count(), 0);
    }

    #[test]
    fn scan_slices_concatenate_to_full_scan() {
        let ds = build_sample();
        let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
        for pat in [[None, None, None], [None, Some(knows), None]] {
            let full: Vec<[Id; 3]> = ds.scan(pat).collect();
            for step in 1..=full.len() {
                let mut pieced = Vec::new();
                let mut start = 0;
                while start < full.len() {
                    pieced.extend(ds.scan_slice(pat, start, start + step));
                    start += step;
                }
                assert_eq!(pieced, full, "step {step} over {pat:?}");
            }
            // Out-of-range slices clamp instead of panicking.
            assert_eq!(ds.scan_slice(pat, full.len() + 5, full.len() + 9).count(), 0);
            assert_eq!(ds.scan_slice(pat, 0, usize::MAX).count(), full.len());
        }
    }

    #[test]
    fn freeze_orders_ids_by_value() {
        let mut b = StoreBuilder::new();
        b.insert(Term::iri("s/z"), Term::iri("p"), Term::integer(30));
        b.insert(Term::iri("s/a"), Term::iri("p"), Term::integer(4));
        b.insert(Term::iri("s/m"), Term::iri("p"), Term::integer(200));
        let ds = b.freeze();
        // Ascending id ⇔ ascending value order, for every pair of ids.
        for a in 0..ds.dict().len() as u32 {
            for bb in (a + 1)..ds.dict().len() as u32 {
                assert_ne!(
                    ds.dict().compare(Id(a), Id(bb)),
                    std::cmp::Ordering::Greater,
                    "ids out of value order after freeze"
                );
            }
        }
        // Scanning (?, p, ?) therefore delivers objects sorted by VALUE
        // when subjects tie — and subjects sorted by term order overall.
        let p = ds.lookup(&Term::iri("p")).unwrap();
        let objs: Vec<f64> =
            ds.scan([None, Some(p), None]).map(|t| ds.dict().numeric(t[2]).unwrap()).collect();
        let subj: Vec<&Term> = ds.scan([None, Some(p), None]).map(|t| ds.decode(t[0])).collect();
        assert!(subj.windows(2).all(|w| w[0] <= w[1]), "subjects not in term order");
        assert_eq!(objs.len(), 3);
        // Per-subject numeric order holds trivially (one object each); the
        // POS index delivers prices in ascending numeric order.
        let by_obj: Vec<f64> = ds
            .scan_with([None, Some(p), None], IndexOrder::Pos)
            .map(|t| ds.dict().numeric(t[2]).unwrap())
            .collect();
        assert_eq!(by_obj, vec![4.0, 30.0, 200.0]);
    }

    #[test]
    fn scan_with_alternative_orders_matches_scan_set() {
        let ds = build_sample();
        let knows = ds.lookup(&Term::iri("http://e/knows")).unwrap();
        let pat = [None, Some(knows), None];
        let mut base: Vec<[Id; 3]> = ds.scan(pat).collect();
        base.sort_unstable();
        for order in IndexOrder::all_for_bound(false, true, false) {
            let mut got: Vec<[Id; 3]> = ds.scan_with(pat, order).collect();
            // Same triple set, possibly different delivery order.
            got.sort_unstable();
            assert_eq!(got, base, "{order:?}");
            // Slices concatenate to the ordered scan exactly.
            let full: Vec<[Id; 3]> = ds.scan_with(pat, order).collect();
            let mut pieced = Vec::new();
            for start in (0..full.len()).step_by(2) {
                pieced.extend(ds.scan_slice_with(pat, order, start, start + 2));
            }
            assert_eq!(pieced, full, "{order:?}");
        }
    }

    #[test]
    fn empty_dataset() {
        let ds = StoreBuilder::new().freeze();
        assert!(ds.is_empty());
        assert_eq!(ds.count([None, None, None]), 0);
        assert_eq!(ds.scan([None, None, None]).count(), 0);
    }

    /// Regression (PR 7): `insert_ids` only `debug_assert!`ed its ids, so a
    /// release build would let an out-of-range id corrupt the frozen
    /// indexes silently. The bound check is now unconditional.
    #[test]
    fn insert_ids_rejects_foreign_ids_unconditionally() {
        let mut b = StoreBuilder::new();
        let s = b.dict_mut().encode(Term::iri("http://e/s"));
        let p = b.dict_mut().encode(Term::iri("http://e/p"));
        let o = b.dict_mut().encode(Term::integer(1));
        b.insert_ids(s, p, o); // in-range: fine
        let out_of_range = Id(b.dict_mut().len() as u32);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.insert_ids(s, p, out_of_range);
        }));
        assert!(panicked.is_err(), "an id the dictionary never issued must be refused");
    }
}
