//! End-to-end acceptance gates for the modifier pushdown: the streaming
//! pipeline with pushed modifiers (`Engine::execute`) against the
//! materialize-then-modify baseline (`Engine::execute_unpushed`) on
//! benchmark-shaped BSBM templates.
//!
//! Asserted per template class:
//! * identical result sets (tie-breaking is pinned, so row-for-row);
//! * strictly lower `peak_tuples` for the streaming TopK and the streaming
//!   aggregation;
//! * strictly less scanned data under LIMIT early exit;
//! * lower wall time for TopK vs full sort (min-of-N to damp scheduler
//!   noise; the workload is sized so the gap is structural, not marginal).

use std::time::Duration;

use parambench::datagen::{bsbm::schema, Bsbm, BsbmConfig};
use parambench::rdf::Term;
use parambench::sparql::{Binding, Engine, Prepared, QueryOutput};

fn root_binding() -> Binding {
    // The root product type selects every product: the worst case for the
    // materializing baseline, which holds the full join result.
    Binding::new().with("type", Term::iri(schema::product_type(0)))
}

fn min_wall(engine: &Engine<'_>, prepared: &Prepared, pushed: bool, runs: usize) -> Duration {
    (0..runs)
        .map(|_| {
            let out = if pushed {
                engine.execute(prepared).unwrap()
            } else {
                engine.execute_unpushed(prepared).unwrap()
            };
            out.wall_time
        })
        .min()
        .expect("at least one run")
}

#[test]
fn topk_template_has_strictly_lower_peak_and_wall_time() {
    let data = Bsbm::generate(BsbmConfig { products: 4000, ..Default::default() });
    let engine = Engine::new(&data.dataset);
    let template = Bsbm::q_cheapest_products_of_type();
    let prepared = engine.prepare_template(&template, &root_binding()).unwrap();

    let pushed = engine.execute(&prepared).unwrap();
    let unpushed = engine.execute_unpushed(&prepared).unwrap();

    assert_eq!(
        pushed.results, unpushed.results,
        "pushed TopK must reproduce the stable-sort prefix exactly"
    );
    // Since PR 5 the optimizer serves ORDER BY ASC(?price) straight from
    // the POS index: the delivered order eliminates the sort entirely
    // (sorted_rows == 0) and the Slice early-exits, so the pushed plan may
    // do strictly *less* join work than the draining baseline.
    assert_eq!(pushed.stats.sorted_rows, 0, "order-compatible scan should eliminate the sort");
    assert!(
        pushed.cout <= unpushed.cout,
        "early exit may only reduce join work (pushed {} vs unpushed {})",
        pushed.cout,
        unpushed.cout
    );
    assert!(
        pushed.stats.peak_tuples < unpushed.stats.peak_tuples,
        "streaming TopK peak {} must be strictly below the materialized sort peak {}",
        pushed.stats.peak_tuples,
        unpushed.stats.peak_tuples
    );

    // Wall time: the baseline decodes-and-sorts every product of the type;
    // the pushed plan keeps 10 rows in a heap. Compare min-of-5 to damp
    // scheduler noise.
    let pushed_wall = min_wall(&engine, &prepared, true, 5);
    let unpushed_wall = min_wall(&engine, &prepared, false, 5);
    assert!(
        pushed_wall < unpushed_wall,
        "pushed TopK ({pushed_wall:?}) should beat materialize+sort ({unpushed_wall:?})"
    );
}

#[test]
fn aggregation_template_streams_groups_with_lower_peak() {
    let data = Bsbm::generate(BsbmConfig { products: 1500, ..Default::default() });
    let engine = Engine::new(&data.dataset);
    let template = Bsbm::q4_feature_price_by_type();
    let prepared = engine.prepare_template(&template, &root_binding()).unwrap();

    let pushed = engine.execute(&prepared).unwrap();
    let unpushed = engine.execute_unpushed(&prepared).unwrap();

    assert_eq!(pushed.results, unpushed.results, "result sets must be identical");
    assert_eq!(pushed.cout, unpushed.cout, "aggregation consumes the whole input");
    assert_eq!(pushed.stats.cout, unpushed.stats.cout);
    assert_eq!(pushed.stats.cout_optional, unpushed.stats.cout_optional);
    assert!(
        pushed.stats.peak_tuples < unpushed.stats.peak_tuples,
        "streaming aggregation peak {} must be strictly below the materialized peak {}",
        pushed.stats.peak_tuples,
        unpushed.stats.peak_tuples
    );
}

#[test]
fn limit_without_order_stops_scanning_early() {
    let data = Bsbm::generate(BsbmConfig { products: 2000, ..Default::default() });
    let engine = Engine::new(&data.dataset);
    let text = format!(
        "SELECT ?p ?f WHERE {{ ?p <{ty}> <{root}> . ?p <{pf}> ?f }} LIMIT 25",
        ty = schema::RDF_TYPE,
        root = schema::product_type(0),
        pf = schema::PRODUCT_FEATURE
    );
    let query = parambench::sparql::parse_query(&text).unwrap();
    let prepared = engine.prepare(&query).unwrap();

    let pushed = engine.execute(&prepared).unwrap();
    let unpushed = engine.execute_unpushed(&prepared).unwrap();

    assert_eq!(pushed.results, unpushed.results, "LIMIT takes the same prefix");
    assert_eq!(pushed.results.len(), 25);
    assert!(
        pushed.stats.scanned < unpushed.stats.scanned,
        "early exit must scan strictly less: pushed {} vs unpushed {}",
        pushed.stats.scanned,
        unpushed.stats.scanned
    );
    assert!(
        pushed.cout <= unpushed.cout,
        "early exit may only reduce join output: {} vs {}",
        pushed.cout,
        unpushed.cout
    );
    // Per-join accounting must stay consistent with total Cout even when
    // the LIMIT abandons joins mid-flight (no OPTIONAL in this query, so
    // every counted tuple belongs to a join_cards entry).
    let per_join: u64 = pushed.stats.join_cards.iter().map(|(_, n)| n).sum();
    assert_eq!(per_join, pushed.stats.cout, "join_cards diverged from Cout under early exit");
    assert!(
        pushed.stats.peak_tuples < unpushed.stats.peak_tuples,
        "bounded prefix must beat full materialization: {} vs {}",
        pushed.stats.peak_tuples,
        unpushed.stats.peak_tuples
    );
}

#[test]
fn optional_and_distinct_agree_end_to_end() {
    let data = Bsbm::generate(BsbmConfig { products: 400, ..Default::default() });
    let engine = Engine::new(&data.dataset);
    // Products with their type, optionally a feature, deduplicated —
    // OPTIONAL exercises UNBOUND rows flowing through streaming DISTINCT.
    let text = format!(
        "SELECT DISTINCT ?t ?f WHERE {{ ?p <{ty}> ?t OPTIONAL {{ ?p <{pf}> ?f }} }}",
        ty = schema::RDF_TYPE,
        pf = schema::PRODUCT_FEATURE
    );
    let query = parambench::sparql::parse_query(&text).unwrap();
    let prepared = engine.prepare(&query).unwrap();
    let pushed = engine.execute(&prepared).unwrap();
    let unpushed = engine.execute_unpushed(&prepared).unwrap();
    let norm = |out: &QueryOutput| {
        let mut rows: Vec<String> = out.results.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    };
    assert_eq!(norm(&pushed), norm(&unpushed));
    assert_eq!(pushed.cout, unpushed.cout);
}
