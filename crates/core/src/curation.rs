//! End-to-end parameter curation and workload sampling.
//!
//! Ties the pipeline together: domain → profile → cluster →
//! [`CuratedWorkload`], from which the benchmark driver draws either the
//! paper's **baseline** (uniform over the whole domain — the strategy the
//! paper shows to be broken) or the **curated** strategy (stratified within
//! one parameter class, which restores P1–P3).

use parambench_sparql::engine::Engine;
use parambench_sparql::template::{Binding, QueryTemplate};

use crate::cluster::{cluster, ClusterConfig, Clustering, ParameterClass};
use crate::domain::ParameterDomain;
use crate::error::CurationError;
use crate::profile::{profile_domain, ProfileConfig};

/// Configuration of the full curation pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct CurationConfig {
    /// Profiling bounds (domain sampling).
    pub profile: ProfileConfig,
    /// Clustering knobs (ε, minimum class size).
    pub cluster: ClusterConfig,
}

/// A curated workload: the template plus its parameter classes.
#[derive(Debug, Clone)]
pub struct CuratedWorkload {
    template: QueryTemplate,
    clustering: Clustering,
}

impl CuratedWorkload {
    /// The template this workload drives.
    pub fn template(&self) -> &QueryTemplate {
        &self.template
    }

    /// The parameter classes, largest first.
    pub fn classes(&self) -> &[ParameterClass] {
        &self.clustering.classes
    }

    /// Clustering diagnostics.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Draws `n` bindings from class `class_id` (shuffled; with replacement
    /// only if the class is smaller than `n`). This is the paper's proposed
    /// strategy: "the workload generator can produce separate parameter
    /// bindings by sampling them from every parameter class independently".
    pub fn sample_class(
        &self,
        class_id: usize,
        n: usize,
        seed: u64,
    ) -> Result<Vec<Binding>, CurationError> {
        let class = self
            .clustering
            .classes
            .iter()
            .find(|c| c.id == class_id)
            .ok_or(CurationError::NoClasses)?;
        let pool: Vec<Binding> = class.members.iter().map(|m| m.binding.clone()).collect();
        Ok(ParameterDomain::shuffle_sample(&pool, n, seed))
    }

    /// Per-class report string.
    pub fn describe(&self) -> String {
        format!("template {}:\n{}", self.template.name(), self.clustering.describe())
    }
}

/// Runs the full pipeline: profile the domain, cluster the profiles.
pub fn curate(
    engine: &Engine<'_>,
    template: &QueryTemplate,
    domain: &ParameterDomain,
    config: &CurationConfig,
) -> Result<CuratedWorkload, CurationError> {
    let profiles = profile_domain(engine, template, domain, &config.profile)?;
    let clustering = cluster(&profiles, &config.cluster)?;
    Ok(CuratedWorkload { template: template.clone(), clustering })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parambench_rdf::store::StoreBuilder;
    use parambench_rdf::term::Term;

    /// Types with wildly different extents: type/0 has 900 products,
    /// type/1 … type/9 have 10 each — a miniature BSBM Q4 situation.
    fn skewed() -> parambench_rdf::store::Dataset {
        let mut b = StoreBuilder::new();
        for i in 0..990 {
            let p = Term::iri(format!("prod/{i}"));
            let ty = if i < 900 { 0 } else { 1 + (i - 900) / 10 };
            b.insert(p.clone(), Term::iri("type"), Term::iri(format!("class/{ty}")));
            b.insert(p.clone(), Term::iri("feature"), Term::iri(format!("f/{}", i % 37)));
            b.insert(p, Term::iri("price"), Term::integer((i % 100) as i64));
        }
        b.freeze()
    }

    fn template() -> QueryTemplate {
        QueryTemplate::parse(
            "mini-q4",
            "SELECT ?f (AVG(?price) AS ?avg) WHERE { ?p <type> %type . ?p <feature> ?f . ?p <price> ?price } GROUP BY ?f",
        )
        .unwrap()
    }

    #[test]
    fn curation_splits_generic_from_specific_types() {
        let ds = skewed();
        let engine = Engine::new(&ds);
        let domain = ParameterDomain::from_objects(&ds, "type", &Term::iri("type")).unwrap();
        let cfg = CurationConfig {
            cluster: ClusterConfig { epsilon: 1.0, min_class_size: 1 },
            ..Default::default()
        };
        let workload = curate(&engine, &template(), &domain, &cfg).unwrap();
        assert!(
            workload.classes().len() >= 2,
            "generic and specific types must separate:\n{}",
            workload.describe()
        );
        // The biggest class holds the nine specific types; the generic type
        // is in its own (smaller, costlier) class.
        let big = &workload.classes()[0];
        let costly = workload
            .classes()
            .iter()
            .max_by(|a, b| a.cost_hi.partial_cmp(&b.cost_hi).unwrap())
            .unwrap();
        assert!(costly.cost_lo > big.cost_hi, "cost separation");
        assert_eq!(costly.len(), 1, "exactly the generic type");
    }

    #[test]
    fn class_sampling_stays_within_class() {
        let ds = skewed();
        let engine = Engine::new(&ds);
        let domain = ParameterDomain::from_objects(&ds, "type", &Term::iri("type")).unwrap();
        let cfg = CurationConfig {
            cluster: ClusterConfig { epsilon: 1.0, min_class_size: 1 },
            ..Default::default()
        };
        let workload = curate(&engine, &template(), &domain, &cfg).unwrap();
        let class = &workload.classes()[0];
        let members: std::collections::BTreeSet<String> =
            class.members.iter().map(|m| format!("{}", m.binding)).collect();
        let sample = workload.sample_class(class.id, 20, 7).unwrap();
        assert_eq!(sample.len(), 20);
        for b in &sample {
            assert!(members.contains(&format!("{b}")), "sample escaped its class");
        }
    }

    #[test]
    fn sampling_unknown_class_is_error() {
        let ds = skewed();
        let engine = Engine::new(&ds);
        let domain = ParameterDomain::from_objects(&ds, "type", &Term::iri("type")).unwrap();
        let workload = curate(
            &engine,
            &template(),
            &domain,
            &CurationConfig {
                cluster: ClusterConfig { epsilon: 1.0, min_class_size: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(workload.sample_class(999, 5, 0).is_err());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let ds = skewed();
        let engine = Engine::new(&ds);
        let domain = ParameterDomain::from_objects(&ds, "type", &Term::iri("type")).unwrap();
        let workload = curate(
            &engine,
            &template(),
            &domain,
            &CurationConfig {
                cluster: ClusterConfig { epsilon: 1.0, min_class_size: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        let a = workload.sample_class(0, 5, 3).unwrap();
        let b = workload.sample_class(0, 5, 3).unwrap();
        assert_eq!(a, b);
    }
}
