//! Correlation coefficients.
//!
//! §III of the paper justifies using `Cout` as a runtime proxy by its ≈85%
//! Pearson correlation with the observed running time; the `cost_correlation`
//! experiment recomputes that number on our engine, and Spearman is provided
//! as a robustness check (runtime distributions are heavy-tailed, where rank
//! correlation is the safer statistic).

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` if lengths differ, fewer than two points, or either
/// sample has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson over mid-ranks, ties averaged).
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Mid-ranks of a sample (ties receive the average of their rank range).
pub fn ranks(data: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.sort_unstable_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("finite data"));
    let mut out = vec![0.0; data.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && data[order[j + 1]] == data[order[i]] {
            j += 1;
        }
        // Mid-rank for the tie group [i, j] (1-based ranks).
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let y_neg = [40.0, 30.0, 20.0, 10.0];
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_orthogonal() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, -1.0, 1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[3.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(spearman(&[], &[]).is_none());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // y = x^3 is perfectly rank-correlated even though nonlinear.
        let x: [f64; 6] = [-2.0, -1.0, 0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson is high but strictly below 1.
        let p = pearson(&x, &y).unwrap();
        assert!(p < 1.0 - 1e-6 && p > 0.8);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }
}
