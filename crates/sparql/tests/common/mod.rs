//! Shared test support for the integration suites.

pub mod oracle;
