//! The batched Volcano execution pipeline: pull-based physical operators
//! over fixed-size columnar [`Id`] batches.
//!
//! This is the engine's only execution substrate. Instead of building a
//! full [`Bindings`] table per plan node — memory scaling with exactly the
//! `Cout` quantity the paper studies — the pipeline holds only hash-join
//! build sides plus one in-flight batch per operator, and the peak
//! intermediate-tuple count recorded in [`ExecStats::peak_tuples`]
//! measures the difference against the materialize-then-modify baseline
//! (`Engine::execute_unpushed`).
//!
//! Operator inventory (joins report their output cardinality into
//! [`ExecStats`] per emitted batch, so measured `Cout` stays consistent
//! even when a downstream LIMIT stops the pipeline early):
//!
//! * [`IndexScan`] — one triple pattern over the permutation indexes;
//! * [`HashJoinBuild`] / [`HashJoinProbe`] — inner hash join; the build
//!   side is chosen by the optimizer's cardinality estimates;
//! * [`BindJoin`] — index nested-loop join probing the permutation indexes
//!   once per left row (selective joins);
//! * [`LeftOuterJoin`] — OPTIONAL semantics, right side built;
//! * [`FilterEval`] — row-level FILTER evaluation;
//! * [`Project`] — late materialization: drops every column the result
//!   does not need before the final decode;
//! * [`UnionAll`] — concatenation of same-schema branches.
//!
//! Solution-modifier operators (DISTINCT, TopK, Slice, streaming
//! aggregation) live in [`crate::modifiers`]. Physical plans are produced
//! from logical [`crate::plan::PlanNode`] trees by
//! [`crate::plan::PlanNode::lower`] (serial) or
//! [`crate::plan::PlanNode::lower_parallel`] (morsel-driven).
//!
//! # Morsel-driven parallelism
//!
//! The [`Exchange`]/[`Gather`] pair parallelizes qualifying plans across a
//! `std::thread` worker pool. [`Exchange`] partitions the plan's *driving*
//! [`IndexScan`] range into fixed-size morsels; each worker instantiates
//! its own copy of the streaming spine ([`SharedBuildProbe`] probes into
//! hash tables built once and shared read-only, [`BindJoin`] probes the
//! permutation indexes directly) over one morsel at a time, and [`Gather`]
//! re-emits the per-morsel batches **in morsel-index order** — never in
//! worker arrival order. Together with the fixed wave size
//! ([`MORSELS_PER_WAVE`], deliberately *not* derived from the thread
//! count) this makes rows, row order, measured `Cout` and `scanned`
//! bit-identical at any thread count; only wall-clock time changes.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hash, Hasher, RandomState};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use parambench_rdf::dict::Id;
use parambench_rdf::index::IndexOrder;
use parambench_rdf::store::Dataset;

use crate::ast::Expr;
use crate::exec::{row_passes, Bindings, ExecConfig, ExecStats, WorkerPool, UNBOUND};
use crate::plan::{PlannedPattern, Slot};

/// Rows per batch. Large enough to amortize per-batch dispatch, small
/// enough that in-flight data stays cache-resident.
pub const BATCH_SIZE: usize = 1024;

/// Which `Cout` accumulator an operator's join output counts into:
/// joins of the required BGP feed [`ExecStats::cout`], joins inside
/// OPTIONAL groups feed [`ExecStats::cout_optional`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoutBucket {
    /// Joins of the required BGP.
    Required,
    /// Joins inside OPTIONAL groups.
    Optional,
}

impl CoutBucket {
    #[inline]
    fn bump(self, stats: &mut ExecStats, n: u64) {
        match self {
            CoutBucket::Required => stats.cout += n,
            CoutBucket::Optional => stats.cout_optional += n,
        }
    }
}

/// A fixed-capacity columnar chunk of bindings: `schema[c]` is the variable
/// slot stored in column `c`. Zero-column batches carry an explicit row
/// count (existence checks).
#[derive(Debug, Clone)]
pub struct Batch {
    schema: Vec<usize>,
    columns: Vec<Vec<Id>>,
    rows: usize,
}

impl Batch {
    /// An empty batch with the given column schema.
    pub fn with_schema(schema: Vec<usize>) -> Self {
        let columns = schema.iter().map(|_| Vec::with_capacity(BATCH_SIZE)).collect();
        Batch { schema, columns, rows: 0 }
    }

    /// The variable slot of each column.
    pub fn schema(&self) -> &[usize] {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// True once the batch reached [`BATCH_SIZE`].
    pub fn is_full(&self) -> bool {
        self.rows >= BATCH_SIZE
    }

    /// Column `c` as a contiguous slice.
    pub fn column(&self, c: usize) -> &[Id] {
        &self.columns[c]
    }

    /// The value at (`row`, `col`).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Id {
        self.columns[col][row]
    }

    /// Appends one row (must match the schema width).
    #[inline]
    pub fn push_row(&mut self, row: &[Id]) {
        debug_assert_eq!(row.len(), self.schema.len());
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Copies row `row` into `buf` (which must match the schema width).
    #[inline]
    pub fn read_row(&self, row: usize, buf: &mut [Id]) {
        for (c, col) in self.columns.iter().enumerate() {
            buf[c] = col[row];
        }
    }
}

/// A pull-based physical operator producing columnar batches.
///
/// Contract: `next_batch` returns `Some` of a **non-empty** batch, or
/// `None` once the operator is exhausted (and stays `None`). Operators
/// register emitted batches with [`ExecStats::grow`] and release consumed
/// input batches with [`ExecStats::shrink`], so `stats.peak_tuples` tracks
/// the real high-water mark of resident intermediate tuples.
pub trait Operator {
    /// The variable slot of each output column.
    fn schema(&self) -> &[usize];

    /// Produces the next batch of bindings.
    fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch>;
}

/// A boxed operator tied to the dataset lifetime.
pub type BoxedOperator<'a> = Box<dyn Operator + 'a>;

/// Position pairs a scanned triple must match for the pattern's repeated
/// variables (e.g. `?x <p> ?x` yields `(0, 2)`). Shared by every operator
/// that scans triples against a [`PlannedPattern`].
fn eq_pairs(pattern: &PlannedPattern) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..3 {
        for j in (i + 1)..3 {
            if let (Slot::Var(a), Slot::Var(b)) = (pattern.slots[i], pattern.slots[j]) {
                if a == b {
                    out.push((i, j));
                }
            }
        }
    }
    out
}

/// Runs a pipeline to completion, materializing its output only once, at
/// the result boundary.
pub fn drain(mut op: BoxedOperator<'_>, stats: &mut ExecStats) -> Bindings {
    let mut out = Bindings::empty(op.schema().to_vec());
    let width = op.schema().len();
    let mut row_buf = vec![UNBOUND; width];
    while let Some(batch) = op.next_batch(stats) {
        for r in 0..batch.len() {
            batch.read_row(r, &mut row_buf);
            out.push_row(&row_buf);
        }
        // Accounting transfer: the batch's tuples (already grown by the
        // producer) now live on in `out`, so no grow/shrink is needed.
    }
    out
}

// ---------------------------------------------------------------------------
// IndexScan
// ---------------------------------------------------------------------------

/// Scans one triple pattern out of the store's permutation indexes.
pub struct IndexScan<'a> {
    schema: Vec<usize>,
    /// `None` when the pattern contains an absent constant (provably empty)
    /// or the scan is exhausted.
    state: Option<ScanState<'a>>,
}

struct ScanState<'a> {
    iter: Box<dyn Iterator<Item = [Id; 3]> + 'a>,
    /// Triple position feeding each output column.
    col_pos: Vec<usize>,
    /// Repeated-variable equality constraints within the pattern.
    eq_pairs: Vec<(usize, usize)>,
    /// Overlay delta entries this scan's pattern range consults, flushed
    /// into [`ExecStats::overlay_rows`] on the first batch. Charged once
    /// per logical scan: morsels other than the first report 0 so the
    /// total is independent of how many morsels a wave used.
    overlay_entries: u64,
}

impl<'a> IndexScan<'a> {
    /// Scans the pattern's full index range (default index order).
    pub fn new(ds: &'a Dataset, pattern: &PlannedPattern) -> Self {
        Self::over(ds, pattern, None, None, true)
    }

    /// Scans the pattern out of an explicitly chosen permutation index
    /// (`None` = default): same rows, delivered sorted by that index's
    /// unbound key positions — the order the plan layer advertises through
    /// `PlanNode::delivered_order`.
    pub fn with_order(
        ds: &'a Dataset,
        pattern: &PlannedPattern,
        order: Option<IndexOrder>,
    ) -> Self {
        Self::over(ds, pattern, order, None, true)
    }

    /// Scans only rows `[start, end)` of the pattern's index range — one
    /// morsel of a parallel scan. Consecutive morsels concatenated in
    /// index order reproduce [`IndexScan::with_order`] of the same order
    /// exactly. The morsel starting at row 0 charges the logical scan's
    /// overlay entries (exactly one driver morsel starts there).
    pub fn morsel(
        ds: &'a Dataset,
        pattern: &PlannedPattern,
        order: Option<IndexOrder>,
        start: usize,
        end: usize,
    ) -> Self {
        Self::over(ds, pattern, order, Some((start, end)), start == 0)
    }

    /// [`IndexScan::morsel`] with an explicit overlay-charge decision. The
    /// right side of a parallel merge join is sliced by key-derived bounds:
    /// its first slice need not start at row 0 and several empty slices may
    /// share a position, so "starts at 0" no longer identifies one unique
    /// morsel per logical scan — the caller marks exactly one (morsel
    /// index 0) as the charging one, keeping `ExecStats::overlay_rows`
    /// geometry-independent.
    pub(crate) fn morsel_charged(
        ds: &'a Dataset,
        pattern: &PlannedPattern,
        order: Option<IndexOrder>,
        start: usize,
        end: usize,
        charge_overlay: bool,
    ) -> Self {
        Self::over(ds, pattern, order, Some((start, end)), charge_overlay)
    }

    /// Scans the pattern's full range in **descending** key order, run by
    /// run: runs of the leading `run_components` unbound key components
    /// are visited in reverse key order while rows *within* a run keep
    /// forward order — exactly a stable descending sort of the forward
    /// scan on those components. This is what lets the engine serve
    /// `ORDER BY ... DESC` straight from the index (`sorted_rows == 0`)
    /// while reproducing the forced-off baseline's tie order bit for bit.
    pub fn descending(
        ds: &'a Dataset,
        pattern: &PlannedPattern,
        order: Option<IndexOrder>,
        run_components: usize,
    ) -> Self {
        let schema = pattern.var_slots();
        if pattern.has_absent() {
            return IndexScan { schema, state: None };
        }
        let access = pattern.access();
        let order = order.unwrap_or_else(|| Dataset::default_order(access));
        let overlay_entries = ds.overlay_entries(access) as u64;
        let iter = Box::new(ds.scan_desc_runs(access, order, run_components));
        Self::from_parts(pattern, schema, iter, overlay_entries)
    }

    fn over(
        ds: &'a Dataset,
        pattern: &PlannedPattern,
        order: Option<IndexOrder>,
        slice: Option<(usize, usize)>,
        charge_overlay: bool,
    ) -> Self {
        let schema = pattern.var_slots();
        if pattern.has_absent() {
            return IndexScan { schema, state: None };
        }
        let access = pattern.access();
        let order = order.unwrap_or_else(|| Dataset::default_order(access));
        let overlay_entries = if charge_overlay { ds.overlay_entries(access) as u64 } else { 0 };
        let iter: Box<dyn Iterator<Item = [Id; 3]> + 'a> = match slice {
            None => Box::new(ds.scan_with(access, order)),
            Some((start, end)) => Box::new(ds.scan_slice_with(access, order, start, end)),
        };
        Self::from_parts(pattern, schema, iter, overlay_entries)
    }

    fn from_parts(
        pattern: &PlannedPattern,
        schema: Vec<usize>,
        iter: Box<dyn Iterator<Item = [Id; 3]> + 'a>,
        overlay_entries: u64,
    ) -> Self {
        let col_pos: Vec<usize> = schema
            .iter()
            .map(|&v| {
                pattern
                    .slots
                    .iter()
                    .position(|s| s.as_var() == Some(v))
                    .expect("var comes from this pattern")
            })
            .collect();
        let eq_pairs = eq_pairs(pattern);
        IndexScan { schema, state: Some(ScanState { iter, col_pos, eq_pairs, overlay_entries }) }
    }
}

impl Operator for IndexScan<'_> {
    fn schema(&self) -> &[usize] {
        &self.schema
    }

    fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch> {
        let state = self.state.as_mut()?;
        stats.overlay_rows += std::mem::take(&mut state.overlay_entries);
        let mut out = Batch::with_schema(self.schema.clone());
        let mut row = vec![UNBOUND; self.schema.len()];
        while !out.is_full() {
            let Some(triple) = state.iter.next() else {
                self.state = None;
                break;
            };
            stats.scanned += 1;
            if state.eq_pairs.iter().any(|&(i, j)| triple[i] != triple[j]) {
                continue;
            }
            for (c, &pos) in state.col_pos.iter().enumerate() {
                row[c] = triple[pos];
            }
            out.push_row(&row);
        }
        if out.is_empty() {
            self.state = None;
            return None;
        }
        stats.grow(out.len());
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// Hash join (build + probe)
// ---------------------------------------------------------------------------

/// Per-batch output accounting shared by the inner join operators: counts
/// emitted tuples into the `Cout` bucket and into a lazily created
/// `ExecStats::join_cards` entry, in lockstep. Keeping both per batch
/// (rather than at operator finish) preserves the invariant
/// `cout == sum(join_cards)` even when a downstream LIMIT abandons the
/// join mid-flight.
struct JoinCardRecorder {
    signature: String,
    bucket: CoutBucket,
    /// Index of this join's entry in `ExecStats::join_cards`, created on
    /// first use (entries are append-only, so the index stays valid).
    cards_ix: Option<usize>,
}

impl JoinCardRecorder {
    fn new(signature: String, bucket: CoutBucket) -> Self {
        JoinCardRecorder { signature, bucket, cards_ix: None }
    }

    /// Counts `n` output tuples; call with 0 at finish so completed joins
    /// report themselves even when they never emitted.
    fn record(&mut self, stats: &mut ExecStats, n: u64) {
        let ix = match self.cards_ix {
            Some(ix) => ix,
            None => {
                stats.join_cards.push((self.signature.clone(), 0));
                let ix = stats.join_cards.len() - 1;
                self.cards_ix = Some(ix);
                ix
            }
        };
        stats.join_cards[ix].1 += n;
        self.bucket.bump(stats, n);
    }
}

/// The materialized side of a hash join: row storage plus the key index.
/// Stays resident (and counted in [`ExecStats::peak_tuples`]) until the
/// owning probe operator is dropped — or, when shared read-only across a
/// [`Gather`]'s workers, until the gather exhausts its morsels.
///
/// The key index is split into hash partitions so
/// [`HashJoinBuild::build_partitioned`] can fill them from independent
/// workers. Row indices are always assigned in the build input's row
/// order, and each key lives in exactly one partition, so a key's match
/// list is in global row order regardless of how the table was built —
/// the property that keeps probe output order identical between the
/// serial and the partitioned build.
pub struct HashJoinBuild {
    rows: Bindings,
    /// Key → row indices, one map per hash partition (serial builds use a
    /// single partition).
    partitions: Vec<HashMap<Vec<Id>, Vec<usize>>>,
    /// Partition selector; kept with the table so lookups and builds
    /// agree for its whole lifetime.
    hasher: RandomState,
}

impl HashJoinBuild {
    /// Drains `child` and indexes its rows on `join_vars`.
    ///
    /// The drained batches' residency accounting transfers to the build
    /// table (which is not released until the join finishes), so the build
    /// side shows up in the peak exactly as long as it is live.
    pub fn build(
        mut child: BoxedOperator<'_>,
        join_vars: &[usize],
        stats: &mut ExecStats,
    ) -> HashJoinBuild {
        let mut rows = Bindings::empty(child.schema().to_vec());
        let key_cols: Vec<usize> =
            join_vars.iter().map(|&v| rows.col_of(v).expect("join var in build side")).collect();
        let mut table: HashMap<Vec<Id>, Vec<usize>> = HashMap::new();
        let width = rows.cols().len();
        let mut row_buf = vec![UNBOUND; width];
        while let Some(batch) = child.next_batch(stats) {
            for r in 0..batch.len() {
                batch.read_row(r, &mut row_buf);
                let key: Vec<Id> = key_cols.iter().map(|&c| row_buf[c]).collect();
                table.entry(key).or_default().push(rows.len());
                rows.push_row(&row_buf);
            }
        }
        stats.build_rows += rows.len() as u64;
        HashJoinBuild { rows, partitions: vec![table], hasher: RandomState::new() }
    }

    /// Parallel build of a *scan* build side: workers extract rows and key
    /// hashes per morsel (phase 1), then one worker per hash partition
    /// walks the morsels **in index order** inserting its partition's keys
    /// (phase 2). Global row numbering follows scan order, so probing the
    /// result is bit-identical to probing a serially built table.
    pub fn build_partitioned(
        ds: &Dataset,
        pattern: &PlannedPattern,
        order: Option<IndexOrder>,
        join_vars: &[usize],
        cfg: &ExecConfig,
        stats: &mut ExecStats,
    ) -> HashJoinBuild {
        let schema = pattern.var_slots();
        let mut rows = Bindings::empty(schema.clone());
        if pattern.has_absent() {
            return HashJoinBuild {
                rows,
                partitions: vec![HashMap::new()],
                hasher: RandomState::new(),
            };
        }
        let width = schema.len();
        let col_pos: Vec<usize> = schema
            .iter()
            .map(|&v| {
                pattern.slots.iter().position(|s| s.as_var() == Some(v)).expect("var from pattern")
            })
            .collect();
        let key_cols: Vec<usize> = join_vars
            .iter()
            .map(|&v| schema.iter().position(|&c| c == v).expect("join var in build side"))
            .collect();
        let eq = eq_pairs(pattern);
        let hasher = RandomState::new();

        // Phase 1: per-morsel row extraction (eq-pair filtering, column
        // layout, key hashing) fans out across the pool; results land in
        // morsel-indexed slots.
        let exchange = Exchange::new(ds.count(pattern.access()), cfg.morsel_rows);
        let access = pattern.access();
        let scan_order = order.unwrap_or_else(|| Dataset::default_order(access));
        let extract = |m: usize| -> (Vec<Id>, Vec<u64>, u64) {
            let morsel = exchange.morsel(m);
            let mut flat = Vec::new();
            let mut hashes = Vec::new();
            let mut scanned = 0u64;
            let mut row = vec![UNBOUND; width];
            for triple in ds.scan_slice_with(access, scan_order, morsel.start, morsel.end) {
                scanned += 1;
                if eq.iter().any(|&(i, j)| triple[i] != triple[j]) {
                    continue;
                }
                for (c, &pos) in col_pos.iter().enumerate() {
                    row[c] = triple[pos];
                }
                let mut h = hasher.build_hasher();
                for &c in &key_cols {
                    row[c].hash(&mut h);
                }
                hashes.push(h.finish());
                flat.extend_from_slice(&row);
            }
            (flat, hashes, scanned)
        };
        let morsels = scatter(exchange.morsel_count(), cfg.threads, cfg.worker_pool(), &extract);

        // Global row numbering: concatenate morsels in index order.
        let mut bases = Vec::with_capacity(morsels.len());
        for (flat, _, scanned) in &morsels {
            bases.push(rows.len());
            rows.extend_rows(flat);
            stats.scanned += scanned;
        }

        // Phase 2: one worker per hash partition; each walks every morsel
        // in order and inserts only the keys that hash into its partition,
        // so per-key match lists come out in global row order.
        let nparts = cfg.threads.clamp(1, 8);
        let fill = |p: usize| -> HashMap<Vec<Id>, Vec<usize>> {
            let mut table: HashMap<Vec<Id>, Vec<usize>> = HashMap::new();
            for ((flat, hashes, _), &base) in morsels.iter().zip(&bases) {
                for (i, &h) in hashes.iter().enumerate() {
                    if h as usize % nparts != p {
                        continue;
                    }
                    let row = &flat[i * width..(i + 1) * width];
                    let key: Vec<Id> = key_cols.iter().map(|&c| row[c]).collect();
                    table.entry(key).or_default().push(base + i);
                }
            }
            table
        };
        let partitions = scatter(nparts, cfg.threads, cfg.worker_pool(), &fill);

        stats.grow(rows.len());
        stats.build_rows += rows.len() as u64;
        HashJoinBuild { rows, partitions, hasher }
    }

    /// Variable slot of each build-row column.
    pub fn schema(&self) -> &[usize] {
        self.rows.cols()
    }

    /// Number of build rows (the table's contribution to `peak_tuples`).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the build side produced no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row indices matching `key`, in global build-row order.
    fn matches(&self, key: &[Id]) -> Option<&Vec<usize>> {
        let p = if self.partitions.len() == 1 {
            0
        } else {
            let mut h = self.hasher.build_hasher();
            for id in key {
                id.hash(&mut h);
            }
            h.finish() as usize % self.partitions.len()
        };
        self.partitions[p].get(key)
    }
}

/// Where an output column's value comes from during probe-side assembly.
#[derive(Debug, Clone, Copy)]
enum ColSource {
    Probe(usize),
    Build(usize),
}

/// The build side as seen by a probe core: owned by the join (released on
/// finish) or shared read-only across a [`Gather`]'s workers (residency
/// accounted by the gather, never released here).
enum BuildRef {
    Owned(HashJoinBuild),
    Shared(Arc<HashJoinBuild>),
}

impl BuildRef {
    fn get(&self) -> &HashJoinBuild {
        match self {
            BuildRef::Owned(b) => b,
            BuildRef::Shared(b) => b,
        }
    }
}

/// The probe engine shared by [`HashJoinProbe`] and [`SharedBuildProbe`]:
/// output-schema/source layout, the resumable probe loop and the per-batch
/// `Cout` recording live here exactly once, so the serial and the parallel
/// hash join cannot drift apart.
struct ProbeCore {
    schema: Vec<usize>,
    build: Option<BuildRef>,
    probe_key_cols: Vec<usize>,
    sources: Vec<ColSource>,
    recorder: JoinCardRecorder,
    /// In-progress probe batch: (batch, row index, match offset).
    cursor: Option<(Batch, usize, usize)>,
    done: bool,
}

impl ProbeCore {
    /// Lays out the output schema (semantic-left columns lead, regardless
    /// of which side built) and the per-column sources. `stream_is_left`
    /// says whether the streaming probe side is the semantic left operand.
    fn new(
        probe_schema: &[usize],
        build_schema: &[usize],
        stream_is_left: bool,
        join_vars: &[usize],
        signature: String,
        bucket: CoutBucket,
    ) -> Self {
        let (left_schema, right_schema) = if stream_is_left {
            (probe_schema, build_schema)
        } else {
            (build_schema, probe_schema)
        };
        let mut schema: Vec<usize> = left_schema.to_vec();
        for &v in right_schema {
            if !schema.contains(&v) {
                schema.push(v);
            }
        }
        let col_in = |s: &[usize], v: usize| s.iter().position(|&c| c == v);
        let sources: Vec<ColSource> = schema
            .iter()
            .map(|&v| match col_in(probe_schema, v) {
                Some(c) => ColSource::Probe(c),
                None => ColSource::Build(col_in(build_schema, v).expect("var from one side")),
            })
            .collect();
        let probe_key_cols: Vec<usize> = join_vars
            .iter()
            .map(|&v| col_in(probe_schema, v).expect("join var in probe side"))
            .collect();
        ProbeCore {
            schema,
            build: None,
            probe_key_cols,
            sources,
            recorder: JoinCardRecorder::new(signature, bucket),
            cursor: None,
            done: false,
        }
    }

    fn finish(&mut self, stats: &mut ExecStats) {
        // A join that completed without emitting still reports itself.
        self.recorder.record(stats, 0);
        // Release an owned build side: the join output has been handed on.
        // A shared build stays resident until its gather exhausts.
        if let Some(BuildRef::Owned(build)) = self.build.take() {
            stats.shrink(build.len());
        }
        self.done = true;
    }

    /// One `next_batch` step probing the build with rows pulled from
    /// `probe`, resuming mid-batch across calls; finishes (and releases an
    /// owned build) when the probe side is exhausted.
    fn fill(&mut self, probe: &mut BoxedOperator<'_>, stats: &mut ExecStats) -> Option<Batch> {
        let mut out = Batch::with_schema(self.schema.clone());
        {
            let build = self.build.as_ref().expect("build installed before fill").get();
            let mut probe_buf = vec![UNBOUND; probe.schema().len()];
            let mut row_buf = vec![UNBOUND; self.schema.len()];
            'fill: while !out.is_full() {
                let (batch, mut row, mut offset) = match self.cursor.take() {
                    Some(c) => c,
                    None => match probe.next_batch(stats) {
                        Some(b) => (b, 0, 0),
                        None => break 'fill,
                    },
                };
                while row < batch.len() {
                    batch.read_row(row, &mut probe_buf);
                    let key: Vec<Id> = self.probe_key_cols.iter().map(|&c| probe_buf[c]).collect();
                    if let Some(matches) = build.matches(&key) {
                        while offset < matches.len() {
                            if out.is_full() {
                                self.cursor = Some((batch, row, offset));
                                break 'fill;
                            }
                            let brow = build.rows.row(matches[offset]);
                            for (k, src) in self.sources.iter().enumerate() {
                                row_buf[k] = match *src {
                                    ColSource::Probe(c) => probe_buf[c],
                                    ColSource::Build(c) => brow[c],
                                };
                            }
                            out.push_row(&row_buf);
                            offset += 1;
                        }
                    }
                    offset = 0;
                    row += 1;
                }
                stats.shrink(batch.len());
            }
        }
        if self.cursor.is_none() && out.is_empty() {
            self.finish(stats);
            return None;
        }
        if self.cursor.is_none() && !out.is_full() {
            // Probe exhausted with a final partial batch: account now so a
            // trailing next_batch call just returns None.
            self.finish(stats);
        }
        // Report Cout per emitted batch (not at finish): a downstream LIMIT
        // may stop pulling before exhaustion, and already-produced tuples
        // must still be counted.
        self.recorder.record(stats, out.len() as u64);
        stats.grow(out.len());
        Some(out)
    }
}

/// Inner hash join: streams the probe child against the built side.
/// `build_right` says which *semantic* side (left = first operand, whose
/// columns lead the output schema) is materialized — the optimizer picks
/// the side with the smaller estimated cardinality.
pub struct HashJoinProbe<'a> {
    core: ProbeCore,
    join_vars: Vec<usize>,
    /// Children waiting to run (build child first); emptied on first pull.
    pending: Option<(BoxedOperator<'a>, BoxedOperator<'a>)>,
    probe: Option<BoxedOperator<'a>>,
}

impl<'a> HashJoinProbe<'a> {
    /// An inner hash join of `left ⋈ right` on `join_vars`; `build_right`
    /// selects which semantic side is materialized.
    pub fn new(
        left: BoxedOperator<'a>,
        right: BoxedOperator<'a>,
        join_vars: Vec<usize>,
        build_right: bool,
        signature: String,
        bucket: CoutBucket,
    ) -> Self {
        let (build_schema, probe_schema): (&[usize], &[usize]) = if build_right {
            (right.schema(), left.schema())
        } else {
            (left.schema(), right.schema())
        };
        let core =
            ProbeCore::new(probe_schema, build_schema, build_right, &join_vars, signature, bucket);
        let pending = if build_right { (right, left) } else { (left, right) };
        HashJoinProbe { core, join_vars, pending: Some(pending), probe: None }
    }
}

impl Operator for HashJoinProbe<'_> {
    fn schema(&self) -> &[usize] {
        &self.core.schema
    }

    fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch> {
        if self.core.done {
            return None;
        }
        if let Some((build_child, probe_child)) = self.pending.take() {
            let build = HashJoinBuild::build(build_child, &self.join_vars, stats);
            let mut probe_child = probe_child;
            if build.is_empty() {
                // Empty build side: the join is empty, but the probe subtree
                // must still run so its joins contribute to measured `Cout`
                // exactly as in the materializing executor.
                while let Some(batch) = probe_child.next_batch(stats) {
                    stats.shrink(batch.len());
                }
                self.core.finish(stats);
                return None;
            }
            self.core.build = Some(BuildRef::Owned(build));
            self.probe = Some(probe_child);
        }
        let probe = self.probe.as_mut().expect("installed above");
        self.core.fill(probe, stats)
    }
}

// ---------------------------------------------------------------------------
// Bind join (index nested-loop into the permutation indexes)
// ---------------------------------------------------------------------------

/// For every left row, binds the shared variables into the triple pattern
/// and probes the store's indexes — the streaming equivalent of the legacy
/// adaptive bind join. Output equals `HashJoinProbe(left, IndexScan(pat))`
/// but touches only the index ranges the left rows select.
pub struct BindJoin<'a> {
    ds: &'a Dataset,
    left: BoxedOperator<'a>,
    pattern: PlannedPattern,
    schema: Vec<usize>,
    /// Per triple position: the left column that binds it, if any.
    left_col_of: Vec<Option<usize>>,
    /// (output column, triple position) for columns new to this pattern.
    new_cols: Vec<(usize, usize)>,
    eq_pairs: Vec<(usize, usize)>,
    recorder: JoinCardRecorder,
    cursor: Option<BindCursor<'a>>,
    done: bool,
}

/// An open index probe plus the residual `(triple position, value)`
/// equality checks the scanned triples must satisfy (repeat-bound vars).
type OpenScan<'a> = (Box<dyn Iterator<Item = [Id; 3]> + 'a>, Vec<(usize, Id)>);

struct BindCursor<'a> {
    batch: Batch,
    row: usize,
    /// Active index probe for the current left row.
    scan: Option<OpenScan<'a>>,
}

impl<'a> BindJoin<'a> {
    /// An index nested-loop join probing `pattern` once per `left` row.
    pub fn new(
        ds: &'a Dataset,
        left: BoxedOperator<'a>,
        pattern: PlannedPattern,
        join_vars: &[usize],
        signature: String,
        bucket: CoutBucket,
    ) -> Self {
        let mut schema: Vec<usize> = left.schema().to_vec();
        for v in pattern.var_slots() {
            if !schema.contains(&v) {
                schema.push(v);
            }
        }
        let left_col_of: Vec<Option<usize>> = (0..3)
            .map(|pos| match pattern.slots[pos] {
                Slot::Var(v) if join_vars.contains(&v) => {
                    left.schema().iter().position(|&c| c == v)
                }
                _ => None,
            })
            .collect();
        let new_cols: Vec<(usize, usize)> = schema
            .iter()
            .enumerate()
            .skip(left.schema().len())
            .map(|(k, &v)| {
                let pos = pattern
                    .slots
                    .iter()
                    .position(|s| s.as_var() == Some(v))
                    .expect("new column from this pattern");
                (k, pos)
            })
            .collect();
        let eq_pairs = eq_pairs(&pattern);
        BindJoin {
            ds,
            left,
            pattern,
            schema,
            left_col_of,
            new_cols,
            eq_pairs,
            recorder: JoinCardRecorder::new(signature, bucket),
            cursor: None,
            done: false,
        }
    }

    fn finish(&mut self, stats: &mut ExecStats) {
        self.recorder.record(stats, 0);
        self.done = true;
    }
}

impl Operator for BindJoin<'_> {
    fn schema(&self) -> &[usize] {
        &self.schema
    }

    fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch> {
        if self.done {
            return None;
        }
        let ds = self.ds;
        let left_width = self.left.schema().len();
        let mut out = Batch::with_schema(self.schema.clone());
        let mut row_buf = vec![UNBOUND; self.schema.len()];
        'fill: while !out.is_full() {
            if self.cursor.is_none() {
                match self.left.next_batch(stats) {
                    Some(batch) => self.cursor = Some(BindCursor { batch, row: 0, scan: None }),
                    None => break 'fill,
                }
            }
            let cursor = self.cursor.as_mut().expect("ensured above");
            if cursor.row >= cursor.batch.len() {
                let released = cursor.batch.len();
                self.cursor = None;
                stats.shrink(released);
                continue 'fill;
            }
            cursor.batch.read_row(cursor.row, &mut row_buf[..left_width]);
            if cursor.scan.is_none() {
                // Bind the shared variables of this left row into the
                // pattern's access mask; repeat-bound positions become
                // residual equality checks on the scanned triples.
                let mut access = self.pattern.access();
                let mut checks: Vec<(usize, Id)> = Vec::new();
                let mut unbound_key = false;
                for (pos, slot) in access.iter_mut().enumerate() {
                    if let Some(c) = self.left_col_of[pos] {
                        let v = row_buf[c];
                        if v == UNBOUND {
                            // Unbound join key (from OPTIONAL) never matches.
                            unbound_key = true;
                            break;
                        }
                        if slot.is_none() {
                            *slot = Some(v);
                        } else {
                            checks.push((pos, v));
                        }
                    }
                }
                if unbound_key {
                    cursor.row += 1;
                    continue 'fill;
                }
                cursor.scan = Some((Box::new(ds.scan(access)), checks));
            }
            let (scan, checks) = cursor.scan.as_mut().expect("opened above");
            let mut scan_exhausted = false;
            while !out.is_full() {
                let Some(triple) = scan.next() else {
                    scan_exhausted = true;
                    break;
                };
                stats.scanned += 1;
                if self.eq_pairs.iter().any(|&(i, j)| triple[i] != triple[j]) {
                    continue;
                }
                if checks.iter().any(|&(pos, v)| triple[pos] != v) {
                    continue;
                }
                for &(k, pos) in &self.new_cols {
                    row_buf[k] = triple[pos];
                }
                out.push_row(&row_buf);
            }
            if scan_exhausted {
                cursor.scan = None;
                cursor.row += 1;
            }
        }
        if self.cursor.is_none() {
            self.finish(stats);
        }
        if out.is_empty() {
            return None;
        }
        // Per-batch Cout reporting: survives downstream LIMIT early exit.
        self.recorder.record(stats, out.len() as u64);
        stats.grow(out.len());
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// Merge join (order-aware, no build phase)
// ---------------------------------------------------------------------------

/// Streaming merge join of two inputs that both deliver `key` as the
/// leading prefix of their sorted order (ascending ids — which the
/// value-ordered dictionary makes ascending ORDER BY order).
///
/// Neither side is materialized: the left streams row by row, the right is
/// consumed through a monotone cursor, and only the right rows of the
/// *current* key run are buffered (released when the run ends) — the
/// zero-`build_rows` replacement for a hash join whose build side the
/// optimizer can prove arrives sorted. Output is emitted left-major (for
/// each left row, its matching right run in right order), which both
/// preserves the left side's delivered order for downstream consumers and
/// makes the output sequence bit-identical to a hash join that builds the
/// right side and streams the left — the equivalence the forced-off
/// differential lowering relies on.
///
/// On exhaustion of either side the other is drained to completion, so
/// sub-join `Cout` and `scanned` match the hash lowering exactly (a
/// downstream LIMIT that stops pulling skips the drain on both paths).
pub struct MergeJoin<'a> {
    schema: Vec<usize>,
    left: BoxedOperator<'a>,
    right: BoxedOperator<'a>,
    left_key_cols: Vec<usize>,
    right_key_cols: Vec<usize>,
    /// (output column, right column) for right-only columns.
    right_only: Vec<(usize, usize)>,
    recorder: JoinCardRecorder,
    /// In-progress left batch: (batch, row index, run offset).
    lcursor: Option<(Batch, usize, usize)>,
    /// Unconsumed right batch + position (the monotone cursor).
    rbatch: Option<(Batch, usize)>,
    right_done: bool,
    /// Key of the buffered right run, if any.
    run_key: Option<Vec<Id>>,
    /// Right rows matching `run_key`, in right arrival order.
    run: Vec<Vec<Id>>,
    /// Last left key seen, for the unconditional sortedness check: a merge
    /// join fed an unsorted left input silently drops matches, so the
    /// invariant is verified on every row (one slice compare against an
    /// already-decoded key) and violations surface as
    /// [`crate::error::QueryError::Exec`] instead of wrong answers.
    prev_left_key: Option<Vec<Id>>,
    done: bool,
}

impl<'a> MergeJoin<'a> {
    /// A merge join of `left ⋈ right` on `key` (a shared-variable sequence
    /// both inputs deliver as their leading sort order).
    pub fn new(
        left: BoxedOperator<'a>,
        right: BoxedOperator<'a>,
        key: &[usize],
        signature: String,
        bucket: CoutBucket,
    ) -> Self {
        assert!(!key.is_empty(), "merge join needs a non-empty key");
        let mut schema: Vec<usize> = left.schema().to_vec();
        for &v in right.schema() {
            if !schema.contains(&v) {
                schema.push(v);
            }
        }
        let col_in = |s: &[usize], v: usize| s.iter().position(|&c| c == v);
        let left_key_cols: Vec<usize> =
            key.iter().map(|&v| col_in(left.schema(), v).expect("key var in left")).collect();
        let right_key_cols: Vec<usize> =
            key.iter().map(|&v| col_in(right.schema(), v).expect("key var in right")).collect();
        let right_only: Vec<(usize, usize)> = schema
            .iter()
            .enumerate()
            .skip(left.schema().len())
            .map(|(k, &v)| (k, col_in(right.schema(), v).expect("right-only var in right")))
            .collect();
        MergeJoin {
            schema,
            left,
            right,
            left_key_cols,
            right_key_cols,
            right_only,
            recorder: JoinCardRecorder::new(signature, bucket),
            lcursor: None,
            rbatch: None,
            right_done: false,
            run_key: None,
            run: Vec::new(),
            prev_left_key: None,
            done: false,
        }
    }

    /// Clears the buffered run, then advances the right cursor to `key`:
    /// skips smaller keys, buffers the equal-key run, stops at the first
    /// greater key (kept as lookahead). The cursor never moves backwards —
    /// left keys arrive non-decreasing.
    fn advance_right_to(&mut self, key: &[Id], stats: &mut ExecStats) {
        stats.shrink(self.run.len());
        self.run.clear();
        self.run_key = None;
        let width = self.right.schema().len();
        let mut row_buf = vec![UNBOUND; width];
        'advance: loop {
            let (batch, idx) = match self.rbatch.as_mut() {
                Some(c) => c,
                None => {
                    if self.right_done {
                        break 'advance;
                    }
                    match self.right.next_batch(stats) {
                        Some(b) => {
                            self.rbatch = Some((b, 0));
                            continue 'advance;
                        }
                        None => {
                            self.right_done = true;
                            break 'advance;
                        }
                    }
                }
            };
            if *idx >= batch.len() {
                let released = batch.len();
                self.rbatch = None;
                stats.shrink(released);
                continue 'advance;
            }
            let mut cmp = std::cmp::Ordering::Equal;
            for (&kc, &kv) in self.right_key_cols.iter().zip(key) {
                match batch.value(*idx, kc).cmp(&kv) {
                    std::cmp::Ordering::Equal => continue,
                    other => {
                        cmp = other;
                        break;
                    }
                }
            }
            match cmp {
                std::cmp::Ordering::Less => *idx += 1,
                std::cmp::Ordering::Equal => {
                    batch.read_row(*idx, &mut row_buf);
                    self.run.push(row_buf.clone());
                    stats.grow(1);
                    *idx += 1;
                }
                std::cmp::Ordering::Greater => break 'advance,
            }
        }
        if !self.run.is_empty() {
            self.run_key = Some(key.to_vec());
        }
    }

    /// Pulls-and-releases the rest of an operator (exhaustion drain): the
    /// side that outlives its partner still runs to completion so its
    /// sub-joins report `Cout` and scans exactly as the hash lowering does.
    fn drain_rest(op: &mut BoxedOperator<'_>, stats: &mut ExecStats) {
        while let Some(batch) = op.next_batch(stats) {
            stats.shrink(batch.len());
        }
    }

    fn finish(&mut self, stats: &mut ExecStats) {
        stats.shrink(self.run.len());
        self.run.clear();
        self.run_key = None;
        if let Some((batch, _)) = self.rbatch.take() {
            stats.shrink(batch.len());
        }
        Self::drain_rest(&mut self.right, stats);
        if let Some((batch, _, _)) = self.lcursor.take() {
            stats.shrink(batch.len());
        }
        Self::drain_rest(&mut self.left, stats);
        self.recorder.record(stats, 0);
        self.done = true;
    }

    /// Stops the join *without* the exhaustion drain — the
    /// invariant-violation path, where pulling the rest of a pipeline that
    /// already produced out-of-order rows would only compound the damage.
    /// Everything resident is released so tuple accounting still balances.
    fn abort(&mut self, stats: &mut ExecStats) {
        stats.shrink(self.run.len());
        self.run.clear();
        self.run_key = None;
        if let Some((batch, _)) = self.rbatch.take() {
            stats.shrink(batch.len());
        }
        if let Some((batch, _, _)) = self.lcursor.take() {
            stats.shrink(batch.len());
        }
        self.done = true;
    }
}

impl Operator for MergeJoin<'_> {
    fn schema(&self) -> &[usize] {
        &self.schema
    }

    fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch> {
        if self.done {
            return None;
        }
        let left_width = self.left.schema().len();
        let mut out = Batch::with_schema(self.schema.clone());
        let mut row_buf = vec![UNBOUND; self.schema.len()];
        let mut exhausted = false;
        'fill: while !out.is_full() {
            if self.lcursor.is_none() {
                match self.left.next_batch(stats) {
                    Some(batch) => self.lcursor = Some((batch, 0, 0)),
                    None => {
                        exhausted = true;
                        break 'fill;
                    }
                }
            }
            let (batch, row, _) = self.lcursor.as_mut().expect("ensured above");
            if *row >= batch.len() {
                let released = batch.len();
                self.lcursor = None;
                stats.shrink(released);
                continue 'fill;
            }
            batch.read_row(*row, &mut row_buf[..left_width]);
            let key: Vec<Id> = self.left_key_cols.iter().map(|&c| row_buf[c]).collect();
            match &mut self.prev_left_key {
                Some(prev) if *prev > key => {
                    // Unconditional, not debug-only: with overlay-merged
                    // and morsel-sliced inputs feeding the join, a silent
                    // release-build misjoin is the worst failure mode.
                    stats.record_exec_error(crate::error::ExecError::invariant(
                        "merge join",
                        format!("left input not sorted on its key: {prev:?} then {key:?}"),
                    ));
                    self.abort(stats);
                    return None;
                }
                Some(prev) => prev.clone_from(&key),
                None => self.prev_left_key = Some(key.clone()),
            }
            if self.run_key.as_deref() != Some(key.as_slice()) {
                // Borrow dance: advance_right_to needs &mut self, the left
                // cursor state survives in self.lcursor.
                let (b, r, o) = self.lcursor.take().expect("held above");
                self.advance_right_to(&key, stats);
                self.lcursor = Some((b, r, o));
                if self.run.is_empty() && self.right_done {
                    // No run and no more right rows: every remaining left
                    // row is unmatched — drain and finish.
                    exhausted = true;
                    break 'fill;
                }
            }
            let (_, row, offset) = self.lcursor.as_mut().expect("restored above");
            if self.run.is_empty() {
                *row += 1;
                *offset = 0;
                continue 'fill;
            }
            while *offset < self.run.len() {
                if out.is_full() {
                    break 'fill;
                }
                let rrow = &self.run[*offset];
                for &(k, rc) in &self.right_only {
                    row_buf[k] = rrow[rc];
                }
                out.push_row(&row_buf);
                *offset += 1;
            }
            if *offset >= self.run.len() {
                *row += 1;
                *offset = 0;
            }
        }
        if exhausted {
            self.finish(stats);
        }
        if out.is_empty() {
            if !self.done {
                // Filled nothing but not exhausted (cannot happen: the loop
                // only exits full or exhausted) — defensive finish.
                self.finish(stats);
            }
            return None;
        }
        // Per-batch Cout reporting: survives downstream LIMIT early exit.
        self.recorder.record(stats, out.len() as u64);
        stats.grow(out.len());
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// Left outer join (OPTIONAL)
// ---------------------------------------------------------------------------

/// Left-outer hash join: every left row survives; matching right rows
/// extend it, otherwise right-only columns are [`UNBOUND`]. The right
/// (optional) side is built; the left streams.
pub struct LeftOuterJoin<'a> {
    schema: Vec<usize>,
    join_vars: Vec<usize>,
    left: BoxedOperator<'a>,
    right: Option<BoxedOperator<'a>>,
    build: Option<HashJoinBuild>,
    left_key_cols: Vec<usize>,
    /// (output column, build column) pairs for right-only columns.
    right_only: Vec<(usize, usize)>,
    /// In-progress left batch: (batch, row, match offset).
    cursor: Option<(Batch, usize, usize)>,
    done: bool,
}

impl<'a> LeftOuterJoin<'a> {
    /// A left-outer join of `left ⟕ right` on `join_vars` (right is built).
    pub fn new(left: BoxedOperator<'a>, right: BoxedOperator<'a>, join_vars: Vec<usize>) -> Self {
        let mut schema: Vec<usize> = left.schema().to_vec();
        for &v in right.schema() {
            if !schema.contains(&v) {
                schema.push(v);
            }
        }
        let left_key_cols: Vec<usize> = join_vars
            .iter()
            .map(|&v| left.schema().iter().position(|&c| c == v).expect("join var in left"))
            .collect();
        let right_only: Vec<(usize, usize)> = schema
            .iter()
            .enumerate()
            .skip(left.schema().len())
            .map(|(k, &v)| {
                let rc = right
                    .schema()
                    .iter()
                    .position(|&c| c == v)
                    .expect("right-only var from right side");
                (k, rc)
            })
            .collect();
        LeftOuterJoin {
            schema,
            join_vars,
            left,
            right: Some(right),
            build: None,
            left_key_cols,
            right_only,
            cursor: None,
            done: false,
        }
    }

    fn finish(&mut self, stats: &mut ExecStats) {
        if let Some(build) = self.build.take() {
            stats.shrink(build.len());
        }
        self.done = true;
    }
}

impl Operator for LeftOuterJoin<'_> {
    fn schema(&self) -> &[usize] {
        &self.schema
    }

    fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch> {
        if self.done {
            return None;
        }
        if let Some(right) = self.right.take() {
            self.build = Some(HashJoinBuild::build(right, &self.join_vars, stats));
        }
        let build = self.build.as_ref().expect("built above");
        let left_width = self.left.schema().len();

        let mut out = Batch::with_schema(self.schema.clone());
        let mut row_buf = vec![UNBOUND; self.schema.len()];
        'fill: while !out.is_full() {
            let (batch, mut row, mut offset) = match self.cursor.take() {
                Some(c) => c,
                None => match self.left.next_batch(stats) {
                    Some(b) => (b, 0, 0),
                    None => break 'fill,
                },
            };
            while row < batch.len() {
                batch.read_row(row, &mut row_buf[..left_width]);
                let key: Vec<Id> = self.left_key_cols.iter().map(|&c| row_buf[c]).collect();
                let matches = if key.contains(&UNBOUND) {
                    None
                } else {
                    build.matches(&key).filter(|m| !m.is_empty())
                };
                match matches {
                    Some(matches) => {
                        while offset < matches.len() {
                            if out.is_full() {
                                self.cursor = Some((batch, row, offset));
                                break 'fill;
                            }
                            let rrow = build.rows.row(matches[offset]);
                            for &(k, rc) in &self.right_only {
                                row_buf[k] = rrow[rc];
                            }
                            out.push_row(&row_buf);
                            offset += 1;
                        }
                    }
                    None => {
                        if out.is_full() {
                            self.cursor = Some((batch, row, 0));
                            break 'fill;
                        }
                        for &(k, _) in &self.right_only {
                            row_buf[k] = UNBOUND;
                        }
                        out.push_row(&row_buf);
                    }
                }
                offset = 0;
                row += 1;
            }
            stats.shrink(batch.len());
        }
        if self.cursor.is_none() && out.is_empty() {
            self.finish(stats);
            return None;
        }
        if self.cursor.is_none() && !out.is_full() {
            self.finish(stats);
        }
        // Per-batch Cout reporting: survives downstream LIMIT early exit.
        stats.cout_optional += out.len() as u64;
        stats.grow(out.len());
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// FilterEval
// ---------------------------------------------------------------------------

/// Drops rows on which any FILTER expression does not evaluate to true.
pub struct FilterEval<'a> {
    child: BoxedOperator<'a>,
    filters: Vec<Expr>,
    var_col: HashMap<String, usize>,
    ds: &'a Dataset,
}

impl<'a> FilterEval<'a> {
    /// `var_names` maps variable slots to names (the engine's table); the
    /// filter evaluator wants name → column for the child schema.
    pub fn new(
        child: BoxedOperator<'a>,
        filters: Vec<Expr>,
        var_names: &[String],
        ds: &'a Dataset,
    ) -> Self {
        let var_col = child
            .schema()
            .iter()
            .enumerate()
            .map(|(col, &slot)| (var_names[slot].clone(), col))
            .collect();
        FilterEval { child, filters, var_col, ds }
    }
}

impl Operator for FilterEval<'_> {
    fn schema(&self) -> &[usize] {
        self.child.schema()
    }

    fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch> {
        let width = self.child.schema().len();
        let mut row_buf = vec![UNBOUND; width];
        loop {
            let batch = self.child.next_batch(stats)?;
            let mut out = Batch::with_schema(batch.schema().to_vec());
            for r in 0..batch.len() {
                batch.read_row(r, &mut row_buf);
                if row_passes(&row_buf, &self.filters, &self.var_col, self.ds) {
                    out.push_row(&row_buf);
                }
            }
            stats.shrink(batch.len());
            if !out.is_empty() {
                stats.grow(out.len());
                return Some(out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

/// Late materialization: keeps only the columns whose variable slots the
/// result actually needs, so the final drain (and the dictionary decode in
/// the results layer) never touches dead columns.
pub struct Project<'a> {
    child: BoxedOperator<'a>,
    /// Child column index per output column.
    keep: Vec<usize>,
    schema: Vec<usize>,
}

impl<'a> Project<'a> {
    /// Projects `child` onto `slots` (slots absent from the child schema
    /// are ignored; duplicates are dropped).
    pub fn new(child: BoxedOperator<'a>, slots: &[usize]) -> Self {
        let mut keep = Vec::new();
        let mut schema = Vec::new();
        for &slot in slots {
            if schema.contains(&slot) {
                continue;
            }
            if let Some(c) = child.schema().iter().position(|&v| v == slot) {
                keep.push(c);
                schema.push(slot);
            }
        }
        Project { child, keep, schema }
    }
}

impl Operator for Project<'_> {
    fn schema(&self) -> &[usize] {
        &self.schema
    }

    fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch> {
        let batch = self.child.next_batch(stats)?;
        let mut out = Batch::with_schema(self.schema.clone());
        for (k, &c) in self.keep.iter().enumerate() {
            out.columns[k].extend_from_slice(batch.column(c));
        }
        out.rows = batch.len();
        stats.shrink(batch.len());
        stats.grow(out.len());
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// UnionAll
// ---------------------------------------------------------------------------

/// Concatenates branches that bind the same variable set (validated at
/// prepare time); columns are remapped onto the first branch's order.
pub struct UnionAll<'a> {
    branches: Vec<(BoxedOperator<'a>, Vec<usize>)>,
    current: usize,
    schema: Vec<usize>,
}

impl<'a> UnionAll<'a> {
    /// Concatenates `branches` (all binding the same variable set).
    pub fn new(branches: Vec<BoxedOperator<'a>>) -> Self {
        assert!(!branches.is_empty(), "UNION with no branches");
        let schema: Vec<usize> = branches[0].schema().to_vec();
        let branches = branches
            .into_iter()
            .map(|b| {
                let mapping: Vec<usize> = schema
                    .iter()
                    .map(|&slot| {
                        b.schema().iter().position(|&v| v == slot).expect("same-var union branches")
                    })
                    .collect();
                (b, mapping)
            })
            .collect();
        UnionAll { branches, current: 0, schema }
    }
}

impl Operator for UnionAll<'_> {
    fn schema(&self) -> &[usize] {
        &self.schema
    }

    fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch> {
        while self.current < self.branches.len() {
            let (branch, mapping) = &mut self.branches[self.current];
            match branch.next_batch(stats) {
                Some(batch) => {
                    let mut out = Batch::with_schema(self.schema.clone());
                    for (k, &c) in mapping.iter().enumerate() {
                        out.columns[k].extend_from_slice(batch.column(c));
                    }
                    out.rows = batch.len();
                    // Straight transfer: same tuple count in, same out.
                    return Some(out);
                }
                None => self.current += 1,
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel execution: Exchange / SharedBuildProbe / Gather
// ---------------------------------------------------------------------------

/// Morsels dispatched per wave. Deliberately a fixed constant — *not*
/// derived from the thread count — so the amount of work completed before
/// a downstream LIMIT stops pulling (and with it measured `Cout` and
/// `scanned`) is identical at any thread count. Early exit is therefore
/// wave-granular under parallel execution: at most one wave of surplus
/// work, bounded by `MORSELS_PER_WAVE × ExecConfig::morsel_rows` driving
/// rows.
pub const MORSELS_PER_WAVE: usize = 32;

/// One contiguous chunk of the driving scan's index range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Position in the morsel sequence (the merge key [`Gather`] orders by).
    pub index: usize,
    /// First driving-scan row (inclusive).
    pub start: usize,
    /// Last driving-scan row (exclusive).
    pub end: usize,
}

/// Partitions a scan extent into [`Morsel`]s — fixed-size row chunks, or
/// explicit key-range cuts when the spine carries merge joins (a run of
/// equal merge keys must never straddle a morsel). The geometry depends
/// only on the extent and `morsel_rows` (or the cut table, itself a
/// function of the data and `morsel_rows`), never on the thread count —
/// the root of the engine's any-thread-count determinism.
#[derive(Debug, Clone)]
pub struct Exchange {
    extent: usize,
    morsel_rows: usize,
    /// Explicit morsel boundaries (`cuts[i]..cuts[i + 1]` is morsel `i`),
    /// produced by `Dataset::key_range_cuts`. `None` = fixed-size chunks.
    cuts: Option<Arc<Vec<usize>>>,
}

impl Exchange {
    /// An exchange over `extent` driving rows in chunks of `morsel_rows`.
    pub fn new(extent: usize, morsel_rows: usize) -> Self {
        Exchange { extent, morsel_rows: morsel_rows.max(1), cuts: None }
    }

    /// An exchange cutting the driving scan at explicit row boundaries.
    /// `cuts` must start at 0 and be non-decreasing; its last entry is the
    /// extent. The one-entry table `[0]` (empty scan) yields zero morsels.
    pub fn with_cuts(cuts: Vec<usize>) -> Self {
        debug_assert!(
            cuts.first() == Some(&0) && cuts.windows(2).all(|w| w[0] <= w[1]),
            "cut table must start at 0 and be non-decreasing: {cuts:?}"
        );
        let extent = *cuts.last().expect("cut table is never empty");
        Exchange { extent, morsel_rows: 1, cuts: Some(Arc::new(cuts)) }
    }

    /// Total number of morsels.
    pub fn morsel_count(&self) -> usize {
        match &self.cuts {
            Some(cuts) => cuts.len() - 1,
            None => self.extent.div_ceil(self.morsel_rows),
        }
    }

    /// The `index`-th morsel (the last one may be short).
    pub fn morsel(&self, index: usize) -> Morsel {
        match &self.cuts {
            Some(cuts) => Morsel { index, start: cuts[index], end: cuts[index + 1] },
            None => {
                let start = index * self.morsel_rows;
                Morsel { index, start, end: (start + self.morsel_rows).min(self.extent) }
            }
        }
    }
}

/// Runs `job(0..count)` across the calling thread plus extra workers
/// claiming indexes from a shared cursor, and returns the results in index
/// order. This is the executor's only thread-spawn site: the extra workers
/// (at most `threads.min(count) - 1`) are leased non-blockingly from
/// `pool`, so concurrent queries share one process-wide thread budget. The
/// caller always participates in the schedule, so progress never depends
/// on pool availability — with no lease (or one thread, or one job)
/// everything runs inline through the same index schedule. Results land in
/// per-index slots, so output order is identical at any lease size.
fn scatter<T: Send>(
    count: usize,
    threads: usize,
    pool: &WorkerPool,
    job: &(dyn Fn(usize) -> T + Sync),
) -> Vec<T> {
    if threads <= 1 || count <= 1 {
        return (0..count).map(job).collect();
    }
    let extra = pool.try_acquire(threads.min(count) - 1);
    if extra == 0 {
        return (0..count).map(job).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let work = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= count {
            break;
        }
        let v = job(i);
        *slots[i].lock().expect("result slot poisoned") = Some(v);
    };
    std::thread::scope(|scope| {
        for _ in 0..extra {
            scope.spawn(work);
        }
        work();
    });
    pool.release(extra);
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("result slot poisoned").expect("worker filled every slot"))
        .collect()
}

/// Inner hash join probing a **shared, read-only** build table — the
/// per-worker operator of a parallel hash join. A thin wrapper over the
/// same probe core as [`HashJoinProbe`]; the build side was constructed
/// once (by [`crate::plan::PlanNode::lower_parallel`]) and its residency
/// is accounted by the owning gather, so finishing a probe never shrinks
/// it.
pub struct SharedBuildProbe<'a> {
    core: ProbeCore,
    child: BoxedOperator<'a>,
}

impl<'a> SharedBuildProbe<'a> {
    /// `stream_is_left` says whether the streaming `child` is the
    /// *semantic* left operand (whose columns lead the output schema),
    /// mirroring [`HashJoinProbe`]'s `build_right` choice.
    pub fn new(
        child: BoxedOperator<'a>,
        build: Arc<HashJoinBuild>,
        join_vars: &[usize],
        stream_is_left: bool,
        signature: String,
        bucket: CoutBucket,
    ) -> Self {
        let mut core = ProbeCore::new(
            child.schema(),
            build.schema(),
            stream_is_left,
            join_vars,
            signature,
            bucket,
        );
        core.build = Some(BuildRef::Shared(build));
        SharedBuildProbe { core, child }
    }
}

impl Operator for SharedBuildProbe<'_> {
    fn schema(&self) -> &[usize] {
        &self.core.schema
    }

    fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch> {
        if self.core.done {
            return None;
        }
        if self.core.build.as_ref().expect("installed at construction").get().is_empty() {
            // Same contract as HashJoinProbe: the probe subtree still runs
            // so its joins contribute to measured `Cout`.
            while let Some(batch) = self.child.next_batch(stats) {
                stats.shrink(batch.len());
            }
            self.core.finish(stats);
            return None;
        }
        self.core.fill(&mut self.child, stats)
    }
}

/// One operator level of a parallel plan's streaming spine, bottom-up
/// from the driving scan. Every worker assembles the same step sequence
/// over its morsel; shared builds are reference-counted, everything else
/// is cloned per morsel.
pub enum SpineStep {
    /// Index nested-loop join probing `pattern` per streamed row.
    Bind {
        /// The probed triple pattern.
        pattern: PlannedPattern,
        /// Shared variable slots.
        join_vars: Vec<usize>,
        /// Plan signature path for `ExecStats::join_cards`.
        signature: String,
    },
    /// Hash probe into a shared read-only build table.
    Probe {
        /// The pre-built side, shared across workers.
        build: Arc<HashJoinBuild>,
        /// Shared variable slots.
        join_vars: Vec<usize>,
        /// Whether the streaming side is the semantic left operand.
        stream_is_left: bool,
        /// Plan signature path for `ExecStats::join_cards`.
        signature: String,
    },
    /// Morsel-private merge join against a key-aligned slice of a sorted
    /// index scan — the zero-build parallel lowering of a spine
    /// [`crate::plan::PlanNode::MergeJoin`]. `bounds[i]..bounds[i + 1]` is
    /// the right-side row slice of morsel `i`: computed once per logical
    /// scan by [`ParallelSource::new`] via the right index's cursor-seek
    /// (`Dataset::seek_with` on the driver morsel's first key), and pinned
    /// to `[0, right extent]` at the edges so the slices *partition* the
    /// right scan — `scanned` stays geometry-independent because the
    /// serial merge join drains its right side to completion too.
    Merge {
        /// The sorted right-side pattern.
        pattern: PlannedPattern,
        /// Index order serving the right side (`None` = default).
        order: Option<IndexOrder>,
        /// The merge key (shared variable slots, in delivered-order
        /// sequence).
        join_vars: Vec<usize>,
        /// Plan signature path for `ExecStats::join_cards`.
        signature: String,
        /// Per-morsel right-side row bounds (filled by
        /// [`ParallelSource::new`]; the plan layer emits a placeholder).
        bounds: Arc<Vec<usize>>,
    },
}

/// A morsel-parallel pipeline: the driving scan's [`Exchange`] plus the
/// spine steps every worker stacks on top of its morsel. Consumed either
/// through [`Gather`] (an [`Operator`] that merges worker batches in
/// morsel order) or through [`ParallelSource::process`] (per-morsel
/// folding for parallel aggregation).
pub struct ParallelSource<'a> {
    ds: &'a Dataset,
    driver: PlannedPattern,
    /// Index order of the driving scan (`None` = default): morsels are
    /// slices of *this* order, so their in-order concatenation reproduces
    /// the serial ordered scan exactly.
    driver_order: Option<IndexOrder>,
    steps: Vec<SpineStep>,
    exchange: Exchange,
    threads: usize,
    /// Pool the wave workers are leased from (resolved from the config at
    /// construction).
    pool: &'static WorkerPool,
    bucket: CoutBucket,
    schema: Vec<usize>,
    /// Tuples resident in the shared build tables, released once all
    /// morsels have run.
    shared_tuples: usize,
}

impl<'a> ParallelSource<'a> {
    /// Assembles a source from the driving pattern and its spine steps.
    /// `stats` residency for the shared builds must already be registered
    /// (they were built with it).
    pub fn new(
        ds: &'a Dataset,
        driver: PlannedPattern,
        driver_order: Option<IndexOrder>,
        mut steps: Vec<SpineStep>,
        cfg: &ExecConfig,
        bucket: CoutBucket,
    ) -> Self {
        let extent = if driver.has_absent() { 0 } else { ds.count(driver.access()) };
        // Merge steps switch the exchange to key-range cuts: the driving
        // scan is cut only at run boundaries of its shortest merge-key
        // prefix, so no run of equal keys — of *any* merge step, since
        // longer-prefix runs nest inside shorter-prefix runs — straddles a
        // morsel. Without merge steps the fixed-size geometry is kept.
        let merge_runs = steps
            .iter()
            .filter_map(|s| match s {
                SpineStep::Merge { join_vars, .. } => Some(join_vars.len()),
                _ => None,
            })
            .min();
        let exchange = match merge_runs {
            None => Exchange::new(extent, cfg.morsel_rows),
            Some(run_components) => {
                let access = driver.access();
                let order = driver_order.unwrap_or_else(|| Dataset::default_order(access));
                let cuts = ds.key_range_cuts(access, order, run_components, cfg.morsel_rows);
                Self::fill_merge_bounds(ds, &driver, order, &cuts, &mut steps);
                Exchange::with_cuts(cuts)
            }
        };
        let shared_tuples = steps
            .iter()
            .map(|s| match s {
                SpineStep::Probe { build, .. } => build.len(),
                SpineStep::Bind { .. } | SpineStep::Merge { .. } => 0,
            })
            .sum();
        let schema = Self::spine_schema(&driver, &steps);
        debug_assert_eq!(
            schema,
            Self::assemble(
                ds,
                &driver,
                driver_order,
                &steps,
                bucket,
                Morsel { index: 0, start: 0, end: 0 }
            )
            .schema(),
            "spine_schema must mirror the assembled operators' layout"
        );
        ParallelSource {
            ds,
            driver,
            driver_order,
            steps,
            exchange,
            threads: cfg.threads.max(1),
            pool: cfg.worker_pool(),
            bucket,
            schema,
            shared_tuples,
        }
    }

    /// Output schema (identical to the serial lowering's root schema).
    pub fn schema(&self) -> &[usize] {
        &self.schema
    }

    /// Folds the output schema of the assembled spine without constructing
    /// any operators, mirroring [`BindJoin::new`] (left columns, then new
    /// pattern columns) and [`ProbeCore::new`] (semantic-left columns
    /// lead). The debug assertion in [`ParallelSource::new`] pins the two
    /// layouts together.
    fn spine_schema(driver: &PlannedPattern, steps: &[SpineStep]) -> Vec<usize> {
        let mut schema = driver.var_slots();
        for step in steps {
            match step {
                SpineStep::Bind { pattern, .. } => {
                    for v in pattern.var_slots() {
                        if !schema.contains(&v) {
                            schema.push(v);
                        }
                    }
                }
                SpineStep::Probe { build, stream_is_left, .. } => {
                    let (lead, trail) = if *stream_is_left {
                        (std::mem::take(&mut schema), build.schema().to_vec())
                    } else {
                        (build.schema().to_vec(), std::mem::take(&mut schema))
                    };
                    schema = lead;
                    for v in trail {
                        if !schema.contains(&v) {
                            schema.push(v);
                        }
                    }
                }
                // Mirrors MergeJoin::new: left columns, then new right ones.
                SpineStep::Merge { pattern, .. } => {
                    for v in pattern.var_slots() {
                        if !schema.contains(&v) {
                            schema.push(v);
                        }
                    }
                }
            }
        }
        schema
    }

    /// Computes each merge step's per-morsel right-side bounds — the
    /// cursor-seek discipline: morsel `i`'s right slice starts where the
    /// driver's first key at cut `i` begins in the right index
    /// (`Dataset::seek_with`, lower bound), so the private merge join sees
    /// every right row matching any driver key of its morsel. Bounds 0 and
    /// last pin `[0, right extent]`: the below-first-key and
    /// above-last-key right rows the serial join would skip/drain land in
    /// the first/last morsel, keeping `scanned` geometry-independent.
    fn fill_merge_bounds(
        ds: &Dataset,
        driver: &PlannedPattern,
        driver_order: IndexOrder,
        cuts: &[usize],
        steps: &mut [SpineStep],
    ) {
        let access = driver.access();
        // Unbound key positions of the driving index, in key order — the
        // triple positions whose values form the keys `seek_with` compares.
        let key_positions: Vec<usize> =
            driver_order.perm().iter().copied().filter(|&pos| access[pos].is_none()).collect();
        // First-key components at each interior cut (the edge cuts 0 and
        // `extent` need no key: their bounds are pinned).
        let interior = if cuts.len() > 2 { &cuts[1..cuts.len() - 1] } else { &[][..] };
        let cut_keys: Vec<Vec<Id>> = interior
            .iter()
            .map(|&row| {
                let spo = ds
                    .scan_slice_with(access, driver_order, row, row + 1)
                    .next()
                    .expect("interior cuts lie strictly inside the scan");
                key_positions.iter().map(|&pos| spo[pos]).collect()
            })
            .collect();
        for step in steps {
            if let SpineStep::Merge { pattern, order, join_vars, bounds, .. } = step {
                let raccess = pattern.access();
                let rorder = order.unwrap_or_else(|| Dataset::default_order(raccess));
                let k = join_vars.len();
                let mut b = Vec::with_capacity(cuts.len());
                b.push(0);
                for key in &cut_keys {
                    b.push(ds.seek_with(raccess, rorder, &key[..k], false));
                }
                b.push(ds.count(raccess));
                *bounds = Arc::new(b);
            }
        }
    }

    /// One worker pipeline over one morsel.
    fn assemble(
        ds: &'a Dataset,
        driver: &PlannedPattern,
        driver_order: Option<IndexOrder>,
        steps: &[SpineStep],
        bucket: CoutBucket,
        m: Morsel,
    ) -> BoxedOperator<'a> {
        let mut op: BoxedOperator<'a> =
            Box::new(IndexScan::morsel(ds, driver, driver_order, m.start, m.end));
        for step in steps {
            op = match step {
                SpineStep::Bind { pattern, join_vars, signature } => Box::new(BindJoin::new(
                    ds,
                    op,
                    pattern.clone(),
                    join_vars,
                    signature.clone(),
                    bucket,
                )),
                SpineStep::Probe { build, join_vars, stream_is_left, signature } => {
                    Box::new(SharedBuildProbe::new(
                        op,
                        Arc::clone(build),
                        join_vars,
                        *stream_is_left,
                        signature.clone(),
                        bucket,
                    ))
                }
                SpineStep::Merge { pattern, order, join_vars, signature, bounds } => {
                    // Defensive clamp for placeholder bounds (the schema
                    // assertion assembles before geometry exists): an
                    // out-of-range morsel gets an empty right slice.
                    let (rstart, rend) = if m.index + 1 < bounds.len() {
                        (bounds[m.index], bounds[m.index + 1])
                    } else {
                        (0, 0)
                    };
                    let right: BoxedOperator<'a> = Box::new(IndexScan::morsel_charged(
                        ds,
                        pattern,
                        *order,
                        rstart,
                        rend,
                        m.index == 0,
                    ));
                    Box::new(MergeJoin::new(op, right, join_vars, signature.clone(), bucket))
                }
            };
        }
        op
    }

    /// Runs one contiguous wave of morsels across the pool; results come
    /// back in morsel order, each with the worker's private [`ExecStats`].
    fn run_wave(&self, wave: Range<usize>) -> Vec<(Vec<Batch>, ExecStats)> {
        let base = wave.start;
        scatter(wave.len(), self.threads, self.pool, &|i| {
            let m = self.exchange.morsel(base + i);
            let mut stats = ExecStats::default();
            let mut op = Self::assemble(
                self.ds,
                &self.driver,
                self.driver_order,
                &self.steps,
                self.bucket,
                m,
            );
            let mut batches = Vec::new();
            while let Some(b) = op.next_batch(&mut stats) {
                batches.push(b);
            }
            (batches, stats)
        })
    }

    /// Drains every morsel through `job` (a fresh pipeline per morsel with
    /// its own stats), wave by wave, handing each result to `sink` in
    /// morsel-index order — the parallel-aggregation driver: `job` folds a
    /// morsel into a partial accumulator, `sink` merges partials in the
    /// deterministic order. Shared builds are released when all morsels
    /// have run.
    pub fn process<T: Send>(
        self,
        stats: &mut ExecStats,
        job: impl Fn(BoxedOperator<'a>, &mut ExecStats) -> T + Sync,
        mut sink: impl FnMut(T, &mut ExecStats),
    ) {
        let count = self.exchange.morsel_count();
        let mut next = 0;
        while next < count {
            let wave = next..(next + MORSELS_PER_WAVE).min(count);
            let base = wave.start;
            let parts: Vec<(T, ExecStats)> = scatter(wave.len(), self.threads, self.pool, &|i| {
                let m = self.exchange.morsel(base + i);
                let mut st = ExecStats::default();
                let op = Self::assemble(
                    self.ds,
                    &self.driver,
                    self.driver_order,
                    &self.steps,
                    self.bucket,
                    m,
                );
                let v = job(op, &mut st);
                (v, st)
            });
            next = wave.end;
            let (values, worker_stats): (Vec<T>, Vec<ExecStats>) = parts.into_iter().unzip();
            stats.absorb_workers(worker_stats);
            for v in values {
                sink(v, stats);
            }
        }
        stats.shrink(self.shared_tuples);
    }
}

/// The consumer end of a morsel-parallel pipeline: pulls like any other
/// [`Operator`], internally dispatching waves of morsels to the pool and
/// re-emitting their batches **by morsel index** (never worker arrival
/// order), so downstream operators observe exactly the serial row order.
/// A downstream LIMIT that stops pulling stops the workers at the next
/// wave boundary.
pub struct Gather<'a> {
    source: ParallelSource<'a>,
    next_morsel: usize,
    buffer: VecDeque<Batch>,
    done: bool,
}

impl<'a> Gather<'a> {
    /// Wraps a parallel source for pull-based consumption.
    pub fn new(source: ParallelSource<'a>) -> Self {
        Gather { source, next_morsel: 0, buffer: VecDeque::new(), done: false }
    }
}

impl Operator for Gather<'_> {
    fn schema(&self) -> &[usize] {
        self.source.schema()
    }

    fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch> {
        loop {
            if let Some(b) = self.buffer.pop_front() {
                return Some(b);
            }
            if self.done {
                return None;
            }
            let count = self.source.exchange.morsel_count();
            if self.next_morsel >= count {
                self.done = true;
                // All morsels ran: the shared build tables are dead.
                stats.shrink(self.source.shared_tuples);
                return None;
            }
            let wave = self.next_morsel..(self.next_morsel + MORSELS_PER_WAVE).min(count);
            self.next_morsel = wave.end;
            let parts = self.source.run_wave(wave);
            let mut worker_stats = Vec::with_capacity(parts.len());
            for (batches, st) in parts {
                worker_stats.push(st);
                self.buffer.extend(batches);
            }
            stats.absorb_workers(worker_stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanNode;
    use parambench_rdf::store::StoreBuilder;
    use parambench_rdf::term::Term;

    /// A chain dataset big enough to cross batch boundaries.
    fn chain_dataset(n: usize) -> Dataset {
        let mut b = StoreBuilder::new();
        let next = Term::iri("p/next");
        let label = Term::iri("p/label");
        for i in 0..n {
            b.insert(Term::iri(format!("n/{i}")), next.clone(), Term::iri(format!("n/{}", i + 1)));
            if i % 2 == 0 {
                b.insert(Term::iri(format!("n/{i}")), label.clone(), Term::integer(i as i64));
            }
        }
        b.freeze()
    }

    fn pattern(ds: &Dataset, pred: &str, s: usize, o: usize, idx: usize) -> PlannedPattern {
        let p = ds.lookup(&Term::iri(pred)).unwrap();
        PlannedPattern { idx, slots: [Slot::Var(s), Slot::Bound(p), Slot::Var(o)] }
    }

    fn sorted_rows(b: &Bindings) -> Vec<Vec<Id>> {
        let mut rows: Vec<Vec<Id>> = b.iter().map(|r| r.to_vec()).collect();
        rows.sort();
        rows
    }

    #[test]
    fn index_scan_batches_cover_all_rows() {
        let n = 3 * BATCH_SIZE + 17;
        let ds = chain_dataset(n);
        let mut stats = ExecStats::default();
        let mut scan = IndexScan::new(&ds, &pattern(&ds, "p/next", 0, 1, 0));
        let mut total = 0;
        let mut batches = 0;
        while let Some(batch) = scan.next_batch(&mut stats) {
            assert!(!batch.is_empty());
            assert!(batch.len() <= BATCH_SIZE);
            total += batch.len();
            batches += 1;
        }
        assert_eq!(total, n);
        assert!(batches >= 4, "expected multiple batches, got {batches}");
        assert_eq!(stats.scanned, n as u64);
        assert_eq!(stats.cout, 0);
        // Exhausted operators stay exhausted.
        assert!(scan.next_batch(&mut stats).is_none());
    }

    #[test]
    fn hash_join_produces_expected_chain_rows() {
        let n = 500;
        let ds = chain_dataset(n);
        let scan = |s, o, idx| {
            Box::new(IndexScan::new(&ds, &pattern(&ds, "p/next", s, o, idx))) as BoxedOperator<'_>
        };
        let mut stats = ExecStats::default();
        let join = HashJoinProbe::new(
            scan(0, 1, 0),
            scan(1, 2, 1),
            vec![1],
            true,
            "HJ(S0,S1)".into(),
            CoutBucket::Required,
        );
        let got = drain(Box::new(join), &mut stats);
        // Chain i→i+1 for i in 0..n: two-hop paths exist for i in 0..n-1.
        assert_eq!(got.cols(), &[0, 1, 2]);
        assert_eq!(got.len(), n - 1);
        assert_eq!(stats.cout, (n - 1) as u64);
        assert_eq!(stats.join_cards.len(), 1);
        assert_eq!(stats.join_cards[0].1, (n - 1) as u64);
    }

    #[test]
    fn hash_join_build_side_choice_is_transparent() {
        let ds = chain_dataset(300);
        let scan = |s, o, idx| {
            Box::new(IndexScan::new(&ds, &pattern(&ds, "p/next", s, o, idx))) as BoxedOperator<'_>
        };
        for build_right in [false, true] {
            let mut stats = ExecStats::default();
            let join = HashJoinProbe::new(
                scan(0, 1, 0),
                scan(1, 2, 1),
                vec![1],
                build_right,
                "sig".into(),
                CoutBucket::Required,
            );
            let out = drain(Box::new(join), &mut stats);
            assert_eq!(out.cols(), &[0, 1, 2], "build_right={build_right}");
            assert_eq!(out.len(), 299, "build_right={build_right}");
            assert_eq!(stats.cout, 299);
        }
    }

    #[test]
    fn bind_join_matches_hash_join() {
        let ds = chain_dataset(400);
        let scan = |s, o, idx| {
            Box::new(IndexScan::new(&ds, &pattern(&ds, "p/next", s, o, idx))) as BoxedOperator<'_>
        };
        let mut hash_stats = ExecStats::default();
        let via_hash = drain(
            Box::new(HashJoinProbe::new(
                scan(0, 1, 0),
                scan(1, 2, 1),
                vec![1],
                true,
                "sig".into(),
                CoutBucket::Required,
            )),
            &mut hash_stats,
        );
        let mut bind_stats = ExecStats::default();
        let via_bind = drain(
            Box::new(BindJoin::new(
                &ds,
                scan(0, 1, 0),
                pattern(&ds, "p/next", 1, 2, 1),
                &[1],
                "sig".into(),
                CoutBucket::Required,
            )),
            &mut bind_stats,
        );
        assert_eq!(via_bind.cols(), via_hash.cols());
        assert_eq!(sorted_rows(&via_bind), sorted_rows(&via_hash));
        assert_eq!(bind_stats.cout, hash_stats.cout);
        // The bind join only touches the ranges its left rows select, so it
        // scans fewer (or equal) triples than materializing the full scan.
        assert!(bind_stats.scanned <= hash_stats.scanned);
    }

    #[test]
    fn merge_join_is_bit_identical_to_stream_left_hash_join() {
        // Duplicate-heavy keys: label objects repeat (i % 2 == 0 → i), and
        // we join label(s,o) with label(s,o2) on s — every subject expands
        // 1×1, then next(s,o) ⋈ label(s,l) gives duplicates on the probe.
        let n = 2 * BATCH_SIZE + 123;
        let ds = chain_dataset(n);
        let next = |s, o, idx| pattern(&ds, "p/next", s, o, idx);
        let label = |s, o, idx| pattern(&ds, "p/label", s, o, idx);
        // Both sides sorted by var 0 (subject) via their default Pso scans.
        for (lp, rp) in [(next(0, 1, 0), label(0, 2, 1)), (label(0, 1, 0), next(0, 2, 1))] {
            let mut mj_stats = ExecStats::default();
            let mj = MergeJoin::new(
                Box::new(IndexScan::new(&ds, &lp)),
                Box::new(IndexScan::new(&ds, &rp)),
                &[0],
                "sig".into(),
                CoutBucket::Required,
            );
            let got = drain(Box::new(mj), &mut mj_stats);

            let mut hj_stats = ExecStats::default();
            let hj = HashJoinProbe::new(
                Box::new(IndexScan::new(&ds, &lp)),
                Box::new(IndexScan::new(&ds, &rp)),
                vec![0],
                true, // build right, stream left: the merge join's sequence
                "sig".into(),
                CoutBucket::Required,
            );
            let want = drain(Box::new(hj), &mut hj_stats);

            assert_eq!(got.cols(), want.cols());
            let got_rows: Vec<Vec<Id>> = got.iter().map(|r| r.to_vec()).collect();
            let want_rows: Vec<Vec<Id>> = want.iter().map(|r| r.to_vec()).collect();
            assert_eq!(got_rows, want_rows, "merge join must emit the exact hash sequence");
            assert_eq!(mj_stats.cout, hj_stats.cout);
            assert_eq!(mj_stats.scanned, hj_stats.scanned, "both drain both sides fully");
            assert_eq!(hj_stats.build_rows as usize, ds.count(rp.access()));
            assert_eq!(mj_stats.build_rows, 0, "merge joins build nothing");
            assert!(mj_stats.peak_tuples < hj_stats.peak_tuples);
        }
    }

    #[test]
    fn merge_join_empty_sides_drain_like_hash() {
        let ds = chain_dataset(300);
        let absent = PlannedPattern { idx: 9, slots: [Slot::Var(0), Slot::Absent, Slot::Var(3)] };
        // Empty right: left must still be drained (scanned counted).
        let mut stats = ExecStats::default();
        let mj = MergeJoin::new(
            Box::new(IndexScan::new(&ds, &pattern(&ds, "p/next", 0, 1, 0))),
            Box::new(IndexScan::new(&ds, &absent)),
            &[0],
            "sig".into(),
            CoutBucket::Required,
        );
        let out = drain(Box::new(mj), &mut stats);
        assert!(out.is_empty());
        assert_eq!(stats.scanned, 300, "left side drained for Cout/scan parity");
        assert_eq!(stats.cout, 0);

        // Empty left: right drained.
        let mut stats = ExecStats::default();
        let mj = MergeJoin::new(
            Box::new(IndexScan::new(&ds, &absent)),
            Box::new(IndexScan::new(&ds, &pattern(&ds, "p/next", 0, 1, 0))),
            &[0],
            "sig".into(),
            CoutBucket::Required,
        );
        let out = drain(Box::new(mj), &mut stats);
        assert!(out.is_empty());
        assert_eq!(stats.scanned, 300, "right side drained for Cout/scan parity");
        assert_eq!(stats.cout, 0);
    }

    /// Emits one hand-built batch whose join column regresses (5 then 2),
    /// violating the merge join's sorted-input contract.
    struct UnsortedInput {
        schema: Vec<usize>,
        emitted: bool,
    }

    impl Operator for UnsortedInput {
        fn schema(&self) -> &[usize] {
            &self.schema
        }

        fn next_batch(&mut self, stats: &mut ExecStats) -> Option<Batch> {
            if self.emitted {
                return None;
            }
            self.emitted = true;
            let mut b = Batch::with_schema(self.schema.clone());
            b.push_row(&[Id(5), Id(100)]);
            b.push_row(&[Id(2), Id(101)]);
            stats.grow(b.len());
            Some(b)
        }
    }

    #[test]
    fn merge_join_surfaces_unsorted_left_as_typed_error() {
        let ds = chain_dataset(50);
        let left = Box::new(UnsortedInput { schema: vec![0, 3], emitted: false });
        let right =
            Box::new(IndexScan::new(&ds, &pattern(&ds, "p/next", 0, 1, 0))) as BoxedOperator<'_>;
        let mut stats = ExecStats::default();
        let mut mj = MergeJoin::new(left, right, &[0], "sig".into(), CoutBucket::Required);
        while mj.next_batch(&mut stats).is_some() {}
        let err = stats.exec_error.clone().expect("unsorted left input must be reported");
        assert_eq!(err.op, "merge join");
        assert!(err.message.contains("not sorted"), "unexpected message: {}", err.message);
        // The join aborted without draining its inputs and stays exhausted.
        assert!(mj.next_batch(&mut stats).is_none());
        // The error converts into the public typed variant.
        assert!(matches!(crate::error::QueryError::from(err), crate::error::QueryError::Exec(_)));
    }

    #[test]
    fn index_scan_with_order_delivers_alternative_sort() {
        let ds = chain_dataset(500);
        let pat = pattern(&ds, "p/next", 0, 1, 0);
        // Default (Pso): sorted by subject column; Pos: sorted by object.
        let mut stats = ExecStats::default();
        let mut scan = IndexScan::with_order(&ds, &pat, Some(IndexOrder::Pos));
        let mut last: Option<Id> = None;
        while let Some(batch) = scan.next_batch(&mut stats) {
            let obj_col = batch.schema().iter().position(|&v| v == 1).unwrap();
            for r in 0..batch.len() {
                let v = batch.value(r, obj_col);
                if let Some(prev) = last {
                    assert!(prev <= v, "POS scan must deliver objects ascending");
                }
                last = Some(v);
            }
        }
        assert_eq!(stats.scanned, 500);
    }

    #[test]
    fn left_outer_join_pads_unmatched() {
        let ds = chain_dataset(10);
        let people =
            Box::new(IndexScan::new(&ds, &pattern(&ds, "p/next", 0, 1, 0))) as BoxedOperator<'_>;
        let labels =
            Box::new(IndexScan::new(&ds, &pattern(&ds, "p/label", 0, 2, 1))) as BoxedOperator<'_>;
        let mut stats = ExecStats::default();
        let out = drain(Box::new(LeftOuterJoin::new(people, labels, vec![0])), &mut stats);
        assert_eq!(out.len(), 10); // every left row survives
        let label_col = out.col_of(2).unwrap();
        let unbound = out.iter().filter(|r| r[label_col] == UNBOUND).count();
        assert_eq!(unbound, 5); // odd nodes have no label
        assert_eq!(stats.cout_optional, 10);
        assert_eq!(stats.cout, 0);
    }

    #[test]
    fn filter_and_project_stream_through() {
        let ds = chain_dataset(50);
        let labels =
            Box::new(IndexScan::new(&ds, &pattern(&ds, "p/label", 0, 1, 0))) as BoxedOperator<'_>;
        let var_names = vec!["n".to_string(), "l".to_string()];
        let filter = crate::ast::Expr::Binary(
            crate::ast::BinOp::Ge,
            Box::new(crate::ast::Expr::Var("l".into())),
            Box::new(crate::ast::Expr::Const(Term::integer(20))),
        );
        let filtered = Box::new(FilterEval::new(labels, vec![filter], &var_names, &ds));
        let projected = Box::new(Project::new(filtered, &[1]));
        let mut stats = ExecStats::default();
        let out = drain(projected, &mut stats);
        assert_eq!(out.cols(), &[1]);
        // labels 20, 22, ..., 48 → 15 rows
        assert_eq!(out.len(), 15);
    }

    #[test]
    fn union_all_concatenates_and_remaps() {
        let ds = chain_dataset(20);
        let a =
            Box::new(IndexScan::new(&ds, &pattern(&ds, "p/label", 0, 1, 0))) as BoxedOperator<'_>;
        // Same variable set, but the pattern binds them in reversed slot roles.
        let p = ds.lookup(&Term::iri("p/label")).unwrap();
        let rev = PlannedPattern { idx: 1, slots: [Slot::Var(1), Slot::Bound(p), Slot::Var(0)] };
        let b = Box::new(IndexScan::new(&ds, &rev)) as BoxedOperator<'_>;
        let mut stats = ExecStats::default();
        let union = UnionAll::new(vec![a, b]);
        assert_eq!(union.schema(), &[0, 1]);
        let out = drain(Box::new(union), &mut stats);
        assert_eq!(out.len(), 20);
    }

    /// Forces morselization regardless of extent/estimate size.
    fn tiny_morsel_cfg(threads: usize, morsel_rows: usize) -> ExecConfig {
        ExecConfig {
            threads,
            morsel_rows,
            min_driver_rows: 1,
            min_est_cost: 0.0,
            mem_budget_rows: None,
            ..ExecConfig::default()
        }
    }

    #[test]
    fn exchange_partitions_cover_extent_exactly() {
        let ex = Exchange::new(100, 32);
        assert_eq!(ex.morsel_count(), 4);
        let mut covered = 0;
        for i in 0..ex.morsel_count() {
            let m = ex.morsel(i);
            assert_eq!(m.index, i);
            assert_eq!(m.start, covered);
            covered = m.end;
        }
        assert_eq!(covered, 100);
        assert_eq!(Exchange::new(0, 32).morsel_count(), 0);
        // Degenerate morsel size clamps to 1 row per morsel.
        assert_eq!(Exchange::new(3, 0).morsel_count(), 3);
    }

    #[test]
    fn gather_reproduces_serial_rows_order_and_cout_at_any_thread_count() {
        let n = 3 * BATCH_SIZE + 311;
        let ds = chain_dataset(n);
        let scan_node = |s, o, idx| PlanNode::Scan {
            pattern: pattern(&ds, "p/next", s, o, idx),
            est_card: n as f64,
            order: None,
        };
        // Two-join chain: exercises a shared hash build AND a bind join on
        // the spine, depending on what the estimates select.
        let plan = PlanNode::HashJoin {
            left: Box::new(PlanNode::HashJoin {
                left: Box::new(scan_node(0, 1, 0)),
                right: Box::new(scan_node(1, 2, 1)),
                join_vars: vec![1],
                est_card: n as f64,
            }),
            right: Box::new(scan_node(2, 3, 2)),
            join_vars: vec![2],
            est_card: n as f64,
        };
        let mut serial_stats = ExecStats::default();
        let serial = drain(plan.lower(&ds, CoutBucket::Required), &mut serial_stats);

        let mut reference: Option<(Vec<Vec<Id>>, u64, u64)> = None;
        for threads in [1, 2, 4] {
            let cfg = tiny_morsel_cfg(threads, 97);
            let mut stats = ExecStats::default();
            let src = plan
                .lower_parallel(&ds, CoutBucket::Required, &cfg, &mut stats)
                .expect("forced config must qualify");
            let got = drain(Box::new(Gather::new(src)), &mut stats);
            // Bit-identical to the serial pipeline: same rows, same order.
            let rows: Vec<Vec<Id>> = got.iter().map(|r| r.to_vec()).collect();
            let serial_rows: Vec<Vec<Id>> = serial.iter().map(|r| r.to_vec()).collect();
            assert_eq!(rows, serial_rows, "threads={threads}");
            assert_eq!(stats.cout, serial_stats.cout, "threads={threads}");
            assert_eq!(stats.scanned, serial_stats.scanned, "threads={threads}");
            // And identical across thread counts, peak included.
            let key = (rows, stats.cout, stats.peak_tuples);
            match &reference {
                None => reference = Some(key),
                Some(r) => assert_eq!(*r, key, "threads={threads} diverged"),
            }
        }
    }

    /// A BSBM-flavoured star: every product has one type triple, two
    /// feature triples (duplicate subject keys — real runs the key-range
    /// exchange must not split) and one price triple.
    fn star_dataset(n: usize) -> Dataset {
        let mut b = StoreBuilder::new();
        let ty = Term::iri("p/type");
        let feature = Term::iri("p/feature");
        let price = Term::iri("p/price");
        for i in 0..n {
            let s = Term::iri(format!("prod/{i}"));
            b.insert(s.clone(), ty.clone(), Term::iri("c/Product"));
            b.insert(s.clone(), feature.clone(), Term::iri(format!("f/{}", i % 7)));
            b.insert(s.clone(), feature.clone(), Term::iri(format!("f/{}", (i + 3) % 7)));
            b.insert(s, price.clone(), Term::integer(i as i64));
        }
        b.freeze()
    }

    #[test]
    fn parallel_merge_join_is_bit_identical_across_threads_and_geometries() {
        let n = 4 * BATCH_SIZE / 2 + 201;
        let ds = star_dataset(n);
        let scan_node = |pred, s, o, idx, card: f64| PlanNode::Scan {
            pattern: pattern(&ds, pred, s, o, idx),
            est_card: card,
            order: None,
        };
        // All-merge star on the subject: feature (driver, runs of 2) ⋈
        // price ⋈ type — the shape the forced-order optimizer emits for
        // BSBM-style star queries.
        let plan = PlanNode::MergeJoin {
            left: Box::new(PlanNode::MergeJoin {
                left: Box::new(scan_node("p/feature", 0, 1, 0, 2.0 * n as f64)),
                right: Box::new(scan_node("p/price", 0, 2, 1, n as f64)),
                key: vec![0],
                est_card: 2.0 * n as f64,
            }),
            right: Box::new(scan_node("p/type", 0, 3, 2, n as f64)),
            key: vec![0],
            est_card: 2.0 * n as f64,
        };

        let mut serial_stats = ExecStats::default();
        let serial = drain(plan.lower(&ds, CoutBucket::Required), &mut serial_stats);
        assert_eq!(serial.len(), 2 * n);
        assert_eq!(serial_stats.build_rows, 0, "all-merge plan builds nothing");
        let serial_rows: Vec<Vec<Id>> = serial.iter().map(|r| r.to_vec()).collect();

        // Off declines: the serial lowering would hash-join, and the two
        // modes must not be mixed inside one differential signature.
        let off = ExecConfig { order_exec: crate::exec::OrderExec::Off, ..tiny_morsel_cfg(4, 7) };
        let mut off_stats = ExecStats::default();
        assert!(plan.lower_parallel(&ds, CoutBucket::Required, &off, &mut off_stats).is_none());

        let mut reference: Option<(u64, u64, u64)> = None;
        for threads in [1, 4] {
            // Two key-range geometries, including a deliberately tiny one.
            for morsel_rows in [7, 397] {
                let cfg = ExecConfig {
                    order_exec: crate::exec::OrderExec::Auto,
                    ..tiny_morsel_cfg(threads, morsel_rows)
                };
                let mut stats = ExecStats::default();
                let src = plan
                    .lower_parallel(&ds, CoutBucket::Required, &cfg, &mut stats)
                    .expect("spine merge joins must lower parallel");
                assert!(
                    src.exchange.morsel_count() >= 2,
                    "threads={threads} morsel_rows={morsel_rows}: want >= 2 morsels, got {}",
                    src.exchange.morsel_count()
                );
                let got = drain(Box::new(Gather::new(src)), &mut stats);
                let rows: Vec<Vec<Id>> = got.iter().map(|r| r.to_vec()).collect();
                assert_eq!(rows, serial_rows, "threads={threads} morsel_rows={morsel_rows}");
                assert_eq!(stats.cout, serial_stats.cout);
                assert_eq!(stats.build_rows, 0, "merge morsels must not build");
                // `scanned` is geometry-independent: the right sides are
                // charged once per logical scan, like the serial drain.
                assert_eq!(
                    stats.scanned, serial_stats.scanned,
                    "threads={threads} morsel_rows={morsel_rows}"
                );
                let key = (stats.cout, stats.scanned, stats.build_rows);
                match &reference {
                    None => reference = Some(key),
                    Some(r) => assert_eq!(*r, key, "threads={threads} rows={morsel_rows}"),
                }
            }
        }
    }

    #[test]
    fn partitioned_build_probes_identically_to_serial_build() {
        let n = 2 * BATCH_SIZE + 57;
        let ds = chain_dataset(n);
        let pat = pattern(&ds, "p/next", 1, 2, 1);
        let mut serial_stats = ExecStats::default();
        let serial =
            HashJoinBuild::build(Box::new(IndexScan::new(&ds, &pat)), &[1], &mut serial_stats);
        let cfg = tiny_morsel_cfg(4, 131);
        let mut part_stats = ExecStats::default();
        let partitioned =
            HashJoinBuild::build_partitioned(&ds, &pat, None, &[1], &cfg, &mut part_stats);
        assert_eq!(partitioned.len(), serial.len());
        assert_eq!(partitioned.schema(), serial.schema());
        // Every key resolves to the same match list (global row order), so
        // probe output is bit-identical whichever build produced the table.
        for row in serial.rows.iter() {
            let key = &row[..1];
            let a = serial.matches(key).expect("key from build rows");
            let b = partitioned.matches(key).expect("same key set");
            assert_eq!(a, b);
            for (&i, &j) in a.iter().zip(b) {
                assert_eq!(serial.rows.row(i), partitioned.rows.row(j));
            }
        }
    }

    #[test]
    fn gather_stops_dispatching_waves_when_not_pulled() {
        let n = MORSELS_PER_WAVE * 64 * 4; // 4 waves at 64-row morsels
        let ds = chain_dataset(n);
        let plan = PlanNode::HashJoin {
            left: Box::new(PlanNode::Scan {
                pattern: pattern(&ds, "p/next", 0, 1, 0),
                est_card: n as f64,
                order: None,
            }),
            right: Box::new(PlanNode::Scan {
                pattern: pattern(&ds, "p/label", 0, 2, 1),
                est_card: (n / 2) as f64,
                order: None,
            }),
            join_vars: vec![0],
            est_card: n as f64,
        };
        let cfg = tiny_morsel_cfg(4, 64);
        let mut stats = ExecStats::default();
        let src = plan
            .lower_parallel(&ds, CoutBucket::Required, &cfg, &mut stats)
            .expect("forced config must qualify");
        let mut gather = Gather::new(src);
        // Pull one batch, then stop — as a satisfied LIMIT would.
        assert!(gather.next_batch(&mut stats).is_some());
        // At most one wave of driving rows was scanned on top of the
        // (eagerly built) build side.
        let wave_rows = (MORSELS_PER_WAVE * 64) as u64;
        let build_rows = ds.count([None, ds.lookup(&Term::iri("p/label")), None]) as u64;
        assert!(
            stats.scanned <= build_rows + wave_rows,
            "scanned {} exceeds build {build_rows} + one wave {wave_rows}",
            stats.scanned
        );
    }

    #[test]
    fn pipeline_peak_stays_below_materialization_on_multi_join() {
        let n = 4000usize;
        let ds = chain_dataset(n);
        let scan_node = |s, o, idx| PlanNode::Scan {
            pattern: pattern(&ds, "p/next", s, o, idx),
            est_card: n as f64,
            order: None,
        };
        // Three-hop chain join: two intermediate results of ~n rows each.
        let plan = PlanNode::HashJoin {
            left: Box::new(PlanNode::HashJoin {
                left: Box::new(scan_node(0, 1, 0)),
                right: Box::new(scan_node(1, 2, 1)),
                join_vars: vec![1],
                est_card: n as f64,
            }),
            right: Box::new(scan_node(2, 3, 2)),
            join_vars: vec![2],
            est_card: n as f64,
        };
        let mut stream_stats = ExecStats::default();
        let got = drain(plan.lower(&ds, CoutBucket::Required), &mut stream_stats);

        // Three-hop paths exist for i in 0..n-2; Cout sums both joins.
        assert_eq!(got.len(), n - 2);
        assert_eq!(stream_stats.cout, ((n - 1) + (n - 2)) as u64);
        // A materializing executor would hold at least both scan outputs
        // plus both join outputs (~4n tuples) at its peak; the streaming
        // pipeline (estimate-selected bind joins + batches) must stay well
        // below even a single materialized intermediate, excluding the
        // drained output rows themselves (which any executor must hold).
        let output_rows = got.len() as u64;
        assert!(
            stream_stats.peak_tuples < output_rows + (n as u64) / 2,
            "streaming peak {} should stay below output ({output_rows}) + n/2",
            stream_stats.peak_tuples,
        );
    }
}
