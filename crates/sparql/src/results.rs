//! Solution modifiers and result sets: GROUP BY / aggregation, ORDER BY,
//! DISTINCT, OFFSET/LIMIT and projection to decoded terms.

use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

use parambench_rdf::dict::Id;
use parambench_rdf::store::Dataset;
use parambench_rdf::term::Term;

use crate::ast::{AggFunc, OrderKey, Projection, SelectQuery};
use crate::error::QueryError;
use crate::exec::{Bindings, UNBOUND};

/// A value in a (pre-decoding) solution table.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SolVal {
    Id(Id),
    Num(f64),
    Unbound,
}

/// A decoded output value.
#[derive(Debug, Clone, PartialEq)]
pub enum OutVal {
    /// An RDF term from the dataset.
    Term(Term),
    /// A computed numeric value (aggregate result).
    Num(f64),
    /// No binding (OPTIONAL mismatch).
    Unbound,
}

impl OutVal {
    /// Numeric view of the value, when it has one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            OutVal::Num(n) => Some(*n),
            OutVal::Term(t) => t.numeric_value(),
            OutVal::Unbound => None,
        }
    }

    /// The term, if this is one.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            OutVal::Term(t) => Some(t),
            _ => None,
        }
    }
}

impl std::fmt::Display for OutVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutVal::Term(t) => write!(f, "{t}"),
            OutVal::Num(n) => write!(f, "{n}"),
            OutVal::Unbound => write!(f, "UNDEF"),
        }
    }
}

/// The decoded result table of a query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names (projection order).
    pub columns: Vec<String>,
    /// Rows of decoded values.
    pub rows: Vec<Vec<OutVal>>,
}

impl ResultSet {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column index by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Renders a bar-separated table (for examples and reports).
    pub fn render(&self, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        out.push('\n');
        for row in self.rows.iter().take(max_rows) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!("... ({} more rows)\n", self.rows.len() - max_rows));
        }
        out
    }
}

fn solval_key(v: &SolVal) -> u64 {
    match v {
        SolVal::Id(id) => (id.0 as u64) | (1 << 40),
        SolVal::Num(n) => n.to_bits(),
        SolVal::Unbound => u64::MAX - 1,
    }
}

fn cmp_solval(a: SolVal, b: SolVal, ds: &Dataset) -> Ordering {
    // Unbound sorts last; numerics and numeric-valued terms compare by
    // value; remaining terms by dictionary (benchmark) order.
    let num = |v: SolVal| match v {
        SolVal::Num(n) => Some(n),
        SolVal::Id(id) => ds.dict().numeric(id),
        SolVal::Unbound => None,
    };
    match (a, b) {
        (SolVal::Unbound, SolVal::Unbound) => Ordering::Equal,
        (SolVal::Unbound, _) => Ordering::Greater,
        (_, SolVal::Unbound) => Ordering::Less,
        _ => match (num(a), num(b)) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => match (a, b) {
                (SolVal::Id(x), SolVal::Id(y)) => ds.dict().compare(x, y),
                _ => Ordering::Equal,
            },
        },
    }
}

/// Non-aggregate path: the table is the bindings restricted to the columns
/// needed by projection and ORDER BY.
fn plain_table(
    bindings: &Bindings,
    query: &SelectQuery,
    slot_of: &HashMap<String, usize>,
) -> Result<(Vec<String>, Vec<Vec<SolVal>>), QueryError> {
    if !query.group_by.is_empty() {
        return Err(QueryError::Unsupported("GROUP BY without aggregates".into()));
    }
    let mut names: Vec<String> = Vec::new();
    for p in &query.projections {
        if let Projection::Var(v) = p {
            names.push(v.clone());
        }
    }
    for k in &query.order_by {
        if !names.contains(&k.var) {
            names.push(k.var.clone());
        }
    }
    let cols: Vec<usize> = names
        .iter()
        .map(|n| {
            let slot = slot_of.get(n).ok_or_else(|| QueryError::UnknownVariable(n.clone()))?;
            bindings.col_of(*slot).ok_or_else(|| QueryError::UnknownVariable(n.clone()))
        })
        .collect::<Result<_, _>>()?;
    let rows: Vec<Vec<SolVal>> = bindings
        .iter()
        .map(|row| {
            cols.iter()
                .map(|&c| {
                    let id = row[c];
                    if id == UNBOUND {
                        SolVal::Unbound
                    } else {
                        SolVal::Id(id)
                    }
                })
                .collect()
        })
        .collect();
    Ok((names, rows))
}

/// Aggregate path: group rows by the GROUP BY variables and fold each
/// aggregate projection. SUM/AVG/MIN/MAX use the numeric value of terms;
/// non-numeric terms are skipped (documented subset behaviour).
fn aggregate(
    bindings: &Bindings,
    query: &SelectQuery,
    slot_of: &HashMap<String, usize>,
    ds: &Dataset,
) -> Result<(Vec<String>, Vec<Vec<SolVal>>), QueryError> {
    // Every plain projected var must be a group var.
    for p in &query.projections {
        if let Projection::Var(v) = p {
            if !query.group_by.iter().any(|g| g == v) {
                return Err(QueryError::Unsupported(format!(
                    "projected variable ?{v} must appear in GROUP BY"
                )));
            }
        }
    }
    let group_cols: Vec<usize> = query
        .group_by
        .iter()
        .map(|g| {
            let slot = slot_of.get(g).ok_or_else(|| QueryError::UnknownVariable(g.clone()))?;
            bindings.col_of(*slot).ok_or_else(|| QueryError::UnknownVariable(g.clone()))
        })
        .collect::<Result<_, _>>()?;

    struct AggSpec {
        col: Option<usize>,
        distinct: bool,
    }
    let mut specs: Vec<AggSpec> = Vec::new();
    for p in &query.projections {
        if let Projection::Aggregate { var, distinct, .. } = p {
            let col = match var {
                Some(v) => {
                    let slot =
                        slot_of.get(v).ok_or_else(|| QueryError::UnknownVariable(v.clone()))?;
                    Some(
                        bindings
                            .col_of(*slot)
                            .ok_or_else(|| QueryError::UnknownVariable(v.clone()))?,
                    )
                }
                None => None,
            };
            specs.push(AggSpec { col, distinct: *distinct });
        }
    }

    #[derive(Clone)]
    struct AggState {
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        seen: HashSet<u32>,
    }
    impl AggState {
        fn new() -> Self {
            AggState {
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                seen: HashSet::new(),
            }
        }
    }

    let mut groups: HashMap<Vec<Id>, Vec<AggState>> = HashMap::new();
    let mut group_order: Vec<Vec<Id>> = Vec::new();
    for row in bindings.iter() {
        let key: Vec<Id> = group_cols.iter().map(|&c| row[c]).collect();
        let states = groups.entry(key.clone()).or_insert_with(|| {
            group_order.push(key);
            vec![AggState::new(); specs.len()]
        });
        for (spec, state) in specs.iter().zip(states.iter_mut()) {
            match spec.col {
                None => state.count += 1, // COUNT(*)
                Some(c) => {
                    let id = row[c];
                    if id == UNBOUND {
                        continue;
                    }
                    if spec.distinct && !state.seen.insert(id.0) {
                        continue;
                    }
                    state.count += 1;
                    if let Some(n) = ds.dict().numeric(id) {
                        state.sum += n;
                        state.min = state.min.min(n);
                        state.max = state.max.max(n);
                    }
                }
            }
        }
    }

    // Output schema: projections in order, then unprojected ORDER BY group
    // vars as helper columns (dropped after sorting).
    let mut names: Vec<String> =
        query.projections.iter().map(|p| p.output_name().to_string()).collect();
    for k in &query.order_by {
        if !names.contains(&k.var) {
            if !query.group_by.iter().any(|g| g == &k.var) {
                return Err(QueryError::Unsupported(format!(
                    "ORDER BY ?{} must be a group variable or aggregate alias",
                    k.var
                )));
            }
            names.push(k.var.clone());
        }
    }

    let mut rows: Vec<Vec<SolVal>> = Vec::with_capacity(group_order.len());
    for key in &group_order {
        let states = &groups[key];
        let mut row: Vec<SolVal> = Vec::with_capacity(names.len());
        let mut agg_i = 0;
        for p in &query.projections {
            match p {
                Projection::Var(v) => {
                    let gi = query.group_by.iter().position(|g| g == v).expect("validated");
                    let id = key[gi];
                    row.push(if id == UNBOUND { SolVal::Unbound } else { SolVal::Id(id) });
                }
                Projection::Aggregate { func, .. } => {
                    let st = &states[agg_i];
                    agg_i += 1;
                    row.push(fold_result(*func, st.count, st.sum, st.min, st.max));
                }
            }
        }
        for name in names.iter().skip(query.projections.len()) {
            let gi = query.group_by.iter().position(|g| g == name).expect("validated");
            let id = key[gi];
            row.push(if id == UNBOUND { SolVal::Unbound } else { SolVal::Id(id) });
        }
        rows.push(row);
    }
    Ok((names, rows))
}

fn fold_result(func: AggFunc, count: u64, sum: f64, min: f64, max: f64) -> SolVal {
    match func {
        AggFunc::Count => SolVal::Num(count as f64),
        AggFunc::Sum => SolVal::Num(sum),
        AggFunc::Avg => {
            if count == 0 {
                SolVal::Unbound
            } else {
                SolVal::Num(sum / count as f64)
            }
        }
        AggFunc::Min => {
            if min.is_finite() {
                SolVal::Num(min)
            } else {
                SolVal::Unbound
            }
        }
        AggFunc::Max => {
            if max.is_finite() {
                SolVal::Num(max)
            } else {
                SolVal::Unbound
            }
        }
    }
}

/// Applies all solution modifiers of `query` to the filtered bindings and
/// decodes the final rows. `slot_of` maps variable names to variable slots
/// (owned by the engine's prepared query).
pub(crate) fn finalize(
    bindings: &Bindings,
    query: &SelectQuery,
    slot_of: &HashMap<String, usize>,
    ds: &Dataset,
) -> Result<ResultSet, QueryError> {
    let (columns, mut rows) = if query.has_aggregates() {
        aggregate(bindings, query, slot_of, ds)?
    } else {
        plain_table(bindings, query, slot_of)?
    };

    if !query.order_by.is_empty() {
        let key_cols: Vec<(usize, bool)> = query
            .order_by
            .iter()
            .map(|OrderKey { var, descending }| {
                columns
                    .iter()
                    .position(|c| c == var)
                    .map(|i| (i, *descending))
                    .ok_or_else(|| QueryError::UnknownVariable(var.clone()))
            })
            .collect::<Result<_, _>>()?;
        rows.sort_by(|a, b| {
            for &(col, desc) in &key_cols {
                let ord = cmp_solval(a[col], b[col], ds);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    // Project to the declared outputs (drops helper sort columns).
    let out_names: Vec<String> =
        query.projections.iter().map(|p| p.output_name().to_string()).collect();
    let out_cols: Vec<usize> = out_names
        .iter()
        .map(|n| {
            columns
                .iter()
                .position(|c| c == n)
                .ok_or_else(|| QueryError::UnknownVariable(n.clone()))
        })
        .collect::<Result<_, _>>()?;
    let mut projected: Vec<Vec<SolVal>> =
        rows.into_iter().map(|row| out_cols.iter().map(|&c| row[c]).collect()).collect();

    if query.distinct {
        let mut seen: HashSet<Vec<u64>> = HashSet::with_capacity(projected.len());
        projected.retain(|row| seen.insert(row.iter().map(solval_key).collect()));
    }

    let offset = query.offset.unwrap_or(0);
    let sliced: Vec<Vec<SolVal>> =
        projected.into_iter().skip(offset).take(query.limit.unwrap_or(usize::MAX)).collect();

    let decoded = sliced
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|v| match v {
                    SolVal::Id(id) => OutVal::Term(ds.decode(id).clone()),
                    SolVal::Num(n) => OutVal::Num(n),
                    SolVal::Unbound => OutVal::Unbound,
                })
                .collect()
        })
        .collect();
    Ok(ResultSet { columns: out_names, rows: decoded })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outval_display_and_views() {
        assert_eq!(OutVal::Num(2.5).to_string(), "2.5");
        assert_eq!(OutVal::Unbound.to_string(), "UNDEF");
        assert_eq!(OutVal::Term(Term::iri("http://x")).to_string(), "<http://x>");
        assert_eq!(OutVal::Num(3.0).as_num(), Some(3.0));
        assert_eq!(OutVal::Term(Term::integer(4)).as_num(), Some(4.0));
        assert!(OutVal::Unbound.as_num().is_none());
    }

    #[test]
    fn resultset_render_truncates() {
        let rs = ResultSet {
            columns: vec!["a".into()],
            rows: vec![vec![OutVal::Num(1.0)], vec![OutVal::Num(2.0)], vec![OutVal::Num(3.0)]],
        };
        let text = rs.render(2);
        assert!(text.contains("1 more rows"));
        assert_eq!(rs.col("a"), Some(0));
        assert_eq!(rs.col("b"), None);
        assert_eq!(rs.len(), 3);
    }
}
