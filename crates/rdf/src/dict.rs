//! Dictionary encoding of RDF terms.
//!
//! Every distinct [`Term`] in a dataset is mapped to a dense 32-bit [`Id`].
//! The engine's indexes, operators and statistics all work on ids; the
//! dictionary is only consulted at the edges (loading data, binding query
//! constants, producing human-readable results).
//!
//! Besides the bijection itself, the dictionary caches the numeric
//! interpretation of each literal (see [`Term::numeric_value`]) so that
//! filters and ORDER BY never re-parse lexical forms on the hot path.
//!
//! Invariant: `Id(u32::MAX)` is the engine-wide UNBOUND sentinel (an
//! OPTIONAL mismatch, not a term). The dictionary refuses to allocate it,
//! so no real term can ever collide with an unbound binding.

use std::collections::HashMap;

use crate::term::Term;

/// A dense identifier for an interned term. `Id(0)` is the first term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(pub u32);

impl Id {
    /// The id as an index into dictionary-parallel arrays.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Id {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional mapping between [`Term`]s and [`Id`]s.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    /// Cached `numeric_value()` per id (NaN = none); parallel to `terms`.
    numeric: Vec<f64>,
    by_term: HashMap<Term, Id>,
}

impl Dictionary {
    /// Maximum number of terms a dictionary can hold.
    ///
    /// `Id(u32::MAX)` is reserved: the query executor uses it as the
    /// `UNBOUND` sentinel (OPTIONAL mismatches), so the dictionary must
    /// never hand it out as a real term id. Allocating ids `0..u32::MAX`
    /// (exclusive) keeps the sentinel unambiguous.
    pub const MAX_TERMS: usize = u32::MAX as usize;

    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Panics when a dictionary of `len` terms cannot accept another one.
    /// Factored out of [`Dictionary::encode`] so the guard is unit-testable
    /// without interning 2^32 terms.
    #[inline]
    fn check_capacity(len: usize) {
        assert!(
            len < Self::MAX_TERMS,
            "dictionary overflow: {} terms would allocate Id(u32::MAX), \
             which is reserved as the UNBOUND sentinel",
            len + 1
        );
    }

    /// Interns `term`, returning its id. Re-interning is idempotent.
    ///
    /// # Panics
    /// When the dictionary already holds [`Dictionary::MAX_TERMS`] terms:
    /// the next id would be `Id(u32::MAX)`, the executor's `UNBOUND`
    /// sentinel.
    pub fn encode(&mut self, term: Term) -> Id {
        if let Some(&id) = self.by_term.get(&term) {
            return id;
        }
        Self::check_capacity(self.terms.len());
        let id = Id(self.terms.len() as u32);
        self.numeric.push(term.numeric_value().unwrap_or(f64::NAN));
        self.by_term.insert(term.clone(), id);
        self.terms.push(term);
        id
    }

    /// Looks up the id of a term without interning it.
    pub fn lookup(&self, term: &Term) -> Option<Id> {
        self.by_term.get(term).copied()
    }

    /// The term for `id`. Panics if the id is out of range (ids are only
    /// produced by this dictionary, so that is a logic error).
    pub fn decode(&self, id: Id) -> &Term {
        &self.terms[id.index()]
    }

    /// The cached numeric value of `id`'s term, if it has one.
    #[inline]
    pub fn numeric(&self, id: Id) -> Option<f64> {
        let v = self.numeric[id.index()];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Iterates over all `(id, term)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (Id(i as u32), t))
    }

    /// Compares two ids by the RDF "benchmark order": numeric values first
    /// (by value), then lexical term order. Used by ORDER BY.
    pub fn compare(&self, a: Id, b: Id) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.numeric(a), self.numeric(b)) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => self.decode(a).cmp(self.decode(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    #[test]
    fn encode_is_idempotent() {
        let mut dict = Dictionary::new();
        let a = dict.encode(Term::iri("http://e/a"));
        let b = dict.encode(Term::iri("http://e/b"));
        let a2 = dict.encode(Term::iri("http://e/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn decode_round_trip() {
        let mut dict = Dictionary::new();
        let terms = vec![
            Term::iri("http://e/a"),
            Term::literal("hello"),
            Term::integer(42),
            Term::Blank("b1".into()),
            Term::Literal(Literal::lang("hola", "es")),
        ];
        let ids: Vec<Id> = terms.iter().cloned().map(|t| dict.encode(t)).collect();
        for (id, term) in ids.iter().zip(&terms) {
            assert_eq!(dict.decode(*id), term);
            assert_eq!(dict.lookup(term), Some(*id));
        }
    }

    #[test]
    fn numeric_cache() {
        let mut dict = Dictionary::new();
        let i = dict.encode(Term::integer(7));
        let d = dict.encode(Term::double(-1.5));
        let s = dict.encode(Term::literal("7"));
        assert_eq!(dict.numeric(i), Some(7.0));
        assert_eq!(dict.numeric(d), Some(-1.5));
        assert_eq!(dict.numeric(s), None);
    }

    #[test]
    fn compare_orders_numerics_before_lexicals() {
        let mut dict = Dictionary::new();
        let two = dict.encode(Term::integer(2));
        let ten = dict.encode(Term::integer(10));
        let txt = dict.encode(Term::literal("аbc"));
        assert_eq!(dict.compare(two, ten), std::cmp::Ordering::Less);
        assert_eq!(dict.compare(ten, two), std::cmp::Ordering::Greater);
        assert_eq!(dict.compare(two, txt), std::cmp::Ordering::Less);
        assert_eq!(dict.compare(two, two), std::cmp::Ordering::Equal);
    }

    #[test]
    fn lookup_missing_is_none() {
        let dict = Dictionary::new();
        assert_eq!(dict.lookup(&Term::iri("http://nope")), None);
    }

    /// `Id(u32::MAX)` is the executor's `UNBOUND` sentinel; the dictionary
    /// must refuse to allocate it. The guard is exercised directly because
    /// interning 2^32 real terms is infeasible in a unit test.
    #[test]
    fn capacity_guard_reserves_unbound_sentinel() {
        // One below the cap: fine (the id handed out would be MAX_TERMS-1).
        Dictionary::check_capacity(Dictionary::MAX_TERMS - 1);
        // At the cap the next id would be Id(u32::MAX): must panic.
        let overflow = std::panic::catch_unwind(|| {
            Dictionary::check_capacity(Dictionary::MAX_TERMS);
        });
        assert!(overflow.is_err(), "allocating Id(u32::MAX) must be refused");
        assert_eq!(Dictionary::MAX_TERMS, u32::MAX as usize);
    }
}
