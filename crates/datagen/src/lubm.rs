//! LUBM-like university-domain generator.
//!
//! LUBM is one of the RDF benchmarks the paper's related work cites as
//! affected by the parameter-generation problem ("the problem of finding
//! the parameter domains is relevant for all of them"). This generator
//! produces the classic university schema with a **size-skewed** university
//! population (Zipf over departments per university and students per
//! department), so that university/department-parameterized templates show
//! the same uniform-sampling pathologies as BSBM and SNB — and curate the
//! same way.

use parambench_rdf::store::{Dataset, StoreBuilder};
use parambench_rdf::term::Term;
use parambench_sparql::template::QueryTemplate;
use rand::Rng;

use crate::dist::stream_rng;

/// Vocabulary of the generated LUBM-like data.
pub mod schema {
    pub const NS: &str = "http://lubm.example/";
    pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    pub const FULL_PROFESSOR: &str = "http://lubm.example/FullProfessor";
    pub const ASSOCIATE_PROFESSOR: &str = "http://lubm.example/AssociateProfessor";
    pub const GRADUATE_STUDENT: &str = "http://lubm.example/GraduateStudent";
    pub const UNDERGRADUATE_STUDENT: &str = "http://lubm.example/UndergraduateStudent";
    pub const COURSE: &str = "http://lubm.example/Course";
    pub const WORKS_FOR: &str = "http://lubm.example/worksFor";
    pub const SUB_ORGANIZATION_OF: &str = "http://lubm.example/subOrganizationOf";
    pub const MEMBER_OF: &str = "http://lubm.example/memberOf";
    pub const ADVISOR: &str = "http://lubm.example/advisor";
    pub const TAKES_COURSE: &str = "http://lubm.example/takesCourse";
    pub const TEACHER_OF: &str = "http://lubm.example/teacherOf";
    pub const DEGREE_FROM: &str = "http://lubm.example/degreeFrom";

    pub fn university(i: usize) -> String {
        format!("{NS}University{i}")
    }
    pub fn department(i: usize) -> String {
        format!("{NS}Department{i}")
    }
    pub fn professor(i: usize) -> String {
        format!("{NS}Professor{i}")
    }
    pub fn student(i: usize) -> String {
        format!("{NS}Student{i}")
    }
    pub fn course(i: usize) -> String {
        format!("{NS}Course{i}")
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct LubmConfig {
    /// Number of universities.
    pub universities: usize,
    /// Maximum departments per university (Zipf-skewed by university rank).
    pub max_departments: usize,
    /// Professors per department (uniform in `2..=this`).
    pub max_professors: usize,
    /// Students per professor (advisees; uniform in `1..=this`).
    pub max_advisees: usize,
    /// Courses per professor (uniform in `1..=this`).
    pub max_courses: usize,
    /// Course enrollments per student (uniform in `1..=this`).
    pub max_enrollments: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LubmConfig {
    fn default() -> Self {
        LubmConfig {
            universities: 12,
            max_departments: 18,
            max_professors: 8,
            max_advisees: 6,
            max_courses: 3,
            max_enrollments: 4,
            seed: 42,
        }
    }
}

impl LubmConfig {
    /// A configuration scaled to approximately `triples` triples.
    pub fn with_scale(triples: usize) -> Self {
        // ~1.5k triples per university with the default knobs.
        let universities = (triples / 1_500).max(3);
        LubmConfig { universities, ..Default::default() }
    }
}

/// The generated LUBM-like instance.
pub struct Lubm {
    /// The frozen RDF dataset.
    pub dataset: Dataset,
    /// The configuration it was generated from.
    pub config: LubmConfig,
    /// Department count per university (size skew, for analysis).
    pub departments_of: Vec<usize>,
}

impl Lubm {
    /// Generates a dataset. Deterministic in `config.seed`.
    pub fn generate(config: LubmConfig) -> Self {
        let mut b = StoreBuilder::new();
        let rdf_type = Term::iri(schema::RDF_TYPE);
        let works_for = Term::iri(schema::WORKS_FOR);
        let sub_org = Term::iri(schema::SUB_ORGANIZATION_OF);
        let member_of = Term::iri(schema::MEMBER_OF);
        let advisor = Term::iri(schema::ADVISOR);
        let takes = Term::iri(schema::TAKES_COURSE);
        let teaches = Term::iri(schema::TEACHER_OF);
        let degree_from = Term::iri(schema::DEGREE_FROM);

        let mut rng = stream_rng(config.seed, "lubm");
        let mut dept_id = 0;
        let mut prof_id = 0;
        let mut student_id = 0;
        let mut course_id = 0;
        let mut departments_of = Vec::with_capacity(config.universities);

        for u in 0..config.universities {
            let univ = Term::iri(schema::university(u));
            // Zipf-like department count: larger for low ranks.
            let departments =
                ((config.max_departments as f64 / (u + 1) as f64).ceil() as usize).max(2);
            departments_of.push(departments);
            for _ in 0..departments {
                let dept = Term::iri(schema::department(dept_id));
                dept_id += 1;
                b.insert(dept.clone(), sub_org.clone(), univ.clone());

                let professors = rng.gen_range(2..=config.max_professors);
                let mut dept_courses: Vec<Term> = Vec::new();
                let mut dept_profs: Vec<Term> = Vec::new();
                for p in 0..professors {
                    let prof = Term::iri(schema::professor(prof_id));
                    prof_id += 1;
                    let rank =
                        if p == 0 { schema::FULL_PROFESSOR } else { schema::ASSOCIATE_PROFESSOR };
                    b.insert(prof.clone(), rdf_type.clone(), Term::iri(rank));
                    b.insert(prof.clone(), works_for.clone(), dept.clone());
                    // Degree mostly from a *different* university (correlation
                    // knob: selective joins across universities).
                    let degree_univ = if rng.gen::<f64>() < 0.2 {
                        u
                    } else {
                        rng.gen_range(0..config.universities)
                    };
                    b.insert(
                        prof.clone(),
                        degree_from.clone(),
                        Term::iri(schema::university(degree_univ)),
                    );
                    for _ in 0..rng.gen_range(1..=config.max_courses) {
                        let course = Term::iri(schema::course(course_id));
                        course_id += 1;
                        b.insert(course.clone(), rdf_type.clone(), Term::iri(schema::COURSE));
                        b.insert(prof.clone(), teaches.clone(), course.clone());
                        dept_courses.push(course);
                    }
                    dept_profs.push(prof);
                }

                for prof in &dept_profs {
                    for _ in 0..rng.gen_range(1..=config.max_advisees) {
                        let student = Term::iri(schema::student(student_id));
                        student_id += 1;
                        let level = if rng.gen::<f64>() < 0.4 {
                            schema::GRADUATE_STUDENT
                        } else {
                            schema::UNDERGRADUATE_STUDENT
                        };
                        b.insert(student.clone(), rdf_type.clone(), Term::iri(level));
                        b.insert(student.clone(), member_of.clone(), dept.clone());
                        b.insert(student.clone(), advisor.clone(), prof.clone());
                        for _ in 0..rng.gen_range(1..=config.max_enrollments) {
                            let course = &dept_courses[rng.gen_range(0..dept_courses.len())];
                            b.insert(student.clone(), takes.clone(), course.clone());
                        }
                    }
                }
            }
        }

        Lubm { dataset: b.freeze(), config, departments_of }
    }

    /// IRIs of every university (a heavily size-skewed parameter domain).
    pub fn university_iris(&self) -> Vec<Term> {
        (0..self.config.universities).map(schema::university).map(Term::iri).collect()
    }

    /// IRIs of every department.
    pub fn department_iris(&self) -> Vec<Term> {
        let total: usize = self.departments_of.iter().sum();
        (0..total).map(schema::department).map(Term::iri).collect()
    }

    /// IRIs of every professor occurring in the dataset.
    pub fn professor_iris(&self) -> Vec<Term> {
        let p = self
            .dataset
            .lookup(&Term::iri(schema::WORKS_FOR))
            .expect("generated data has worksFor");
        self.dataset.subjects_of_iter(p).map(|id| self.dataset.decode(id).clone()).collect()
    }

    /// LUBM-style Q1: students taking any course taught by `%prof`.
    pub fn q_students_of_professor() -> QueryTemplate {
        QueryTemplate::parse(
            "LUBM-STUDENTS",
            &format!(
                "SELECT ?student ?course WHERE {{ \
                   %prof <{teach}> ?course . \
                   ?student <{takes}> ?course \
                 }}",
                teach = schema::TEACHER_OF,
                takes = schema::TAKES_COURSE
            ),
        )
        .expect("static template parses")
    }

    /// LUBM-style Q2: the whole teaching staff and their advisees inside
    /// `%univ` — cost tracks the (skewed) university size.
    pub fn q_university_staff() -> QueryTemplate {
        QueryTemplate::parse(
            "LUBM-STAFF",
            &format!(
                "SELECT ?prof (COUNT(?student) AS ?advisees) WHERE {{ \
                   ?dept <{sub}> %univ . \
                   ?prof <{wf}> ?dept . \
                   ?student <{adv}> ?prof \
                 }} GROUP BY ?prof ORDER BY DESC(?advisees) LIMIT 10",
                sub = schema::SUB_ORGANIZATION_OF,
                wf = schema::WORKS_FOR,
                adv = schema::ADVISOR
            ),
        )
        .expect("static template parses")
    }

    /// LUBM-style Q3 with a UNION: people of `%dept` — professors working
    /// for it or students member of it.
    pub fn q_department_people() -> QueryTemplate {
        QueryTemplate::parse(
            "LUBM-PEOPLE",
            &format!(
                "SELECT ?person WHERE {{ \
                   {{ ?person <{wf}> %dept }} UNION {{ ?person <{mo}> %dept }} \
                 }}",
                wf = schema::WORKS_FOR,
                mo = schema::MEMBER_OF
            ),
        )
        .expect("static template parses")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parambench_sparql::engine::Engine;
    use parambench_sparql::template::Binding;

    fn small() -> Lubm {
        Lubm::generate(LubmConfig { universities: 5, ..Default::default() })
    }

    #[test]
    fn deterministic_and_skewed() {
        let a = small();
        let b = small();
        assert_eq!(a.dataset.len(), b.dataset.len());
        // University 0 has more departments than the last one.
        assert!(a.departments_of[0] > a.departments_of[4]);
    }

    #[test]
    fn staff_query_cost_tracks_university_size() {
        let g = small();
        let engine = Engine::new(&g.dataset);
        let t = Lubm::q_university_staff();
        let big = engine
            .run_template(&t, &Binding::new().with("univ", Term::iri(schema::university(0))))
            .unwrap();
        let small_u = engine
            .run_template(&t, &Binding::new().with("univ", Term::iri(schema::university(4))))
            .unwrap();
        assert!(
            big.cout > small_u.cout,
            "university 0 ({}) should cost more than university 4 ({})",
            big.cout,
            small_u.cout
        );
    }

    #[test]
    fn students_of_professor_are_enrolled() {
        let g = small();
        let ds = &g.dataset;
        let engine = Engine::new(ds);
        let t = Lubm::q_students_of_professor();
        let prof = g.professor_iris()[0].clone();
        let out = engine.run_template(&t, &Binding::new().with("prof", prof.clone())).unwrap();
        let takes = ds.lookup(&Term::iri(schema::TAKES_COURSE)).unwrap();
        for row in &out.results.rows {
            let student = ds.lookup(row[0].as_term().unwrap()).unwrap();
            let course = ds.lookup(row[1].as_term().unwrap()).unwrap();
            assert!(ds.contains([Some(student), Some(takes), Some(course)]));
        }
    }

    #[test]
    fn union_template_returns_profs_and_students() {
        let g = small();
        let ds = &g.dataset;
        let engine = Engine::new(ds);
        let t = Lubm::q_department_people();
        let dept = Term::iri(schema::department(0));
        let out = engine.run_template(&t, &Binding::new().with("dept", dept.clone())).unwrap();
        let wf = ds.lookup(&Term::iri(schema::WORKS_FOR)).unwrap();
        let mo = ds.lookup(&Term::iri(schema::MEMBER_OF)).unwrap();
        let d = ds.lookup(&dept).unwrap();
        let profs = ds.count([None, Some(wf), Some(d)]);
        let students = ds.count([None, Some(mo), Some(d)]);
        assert_eq!(out.results.len(), profs + students);
        assert!(profs > 0 && students > 0);
    }

    #[test]
    fn domains_are_consistent() {
        let g = small();
        assert_eq!(g.university_iris().len(), 5);
        let total: usize = g.departments_of.iter().sum();
        assert_eq!(g.department_iris().len(), total);
        assert!(!g.professor_iris().is_empty());
    }
}
