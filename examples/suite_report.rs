//! Full-suite benchmark report: the paper's methodology end to end, written
//! to `target/parambench-report.md`.
//!
//! ```text
//! cargo run --release --example suite_report
//! ```

use parambench::curation::driver::{run_suite, BenchmarkSpec, SuiteConfig};
use parambench::curation::{CostSource, ParameterDomain};
use parambench::datagen::{Bsbm, BsbmConfig, Lubm, LubmConfig, Snb, SnbConfig};
use parambench::sparql::Engine;

fn main() {
    // Separate datasets per family; run each family as its own suite.
    let mut sections = Vec::new();

    {
        let bsbm = Bsbm::generate(BsbmConfig::with_scale(100_000));
        let engine = Engine::new(&bsbm.dataset);
        let specs = vec![
            BenchmarkSpec {
                template: Bsbm::q4_feature_price_by_type(),
                domain: ParameterDomain::single("type", bsbm.type_iris()),
                cost_source: CostSource::EstimatedCout,
            },
            BenchmarkSpec {
                template: Bsbm::q2_similar_products(),
                domain: ParameterDomain::single("product", bsbm.product_iris()),
                cost_source: CostSource::MeasuredCout,
            },
        ];
        let report = run_suite(&engine, &specs, &SuiteConfig::default()).expect("bsbm suite");
        sections.push(report.to_markdown());
    }
    {
        let snb = Snb::generate(SnbConfig::with_scale(100_000));
        let engine = Engine::new(&snb.dataset);
        let specs = vec![BenchmarkSpec {
            template: Snb::q2_friend_posts(),
            domain: ParameterDomain::single("person", snb.person_iris()),
            cost_source: CostSource::MeasuredCout,
        }];
        let report = run_suite(&engine, &specs, &SuiteConfig::default()).expect("snb suite");
        sections.push(report.to_markdown());
    }
    {
        let lubm = Lubm::generate(LubmConfig::with_scale(60_000));
        let engine = Engine::new(&lubm.dataset);
        let specs = vec![BenchmarkSpec {
            template: Lubm::q_university_staff(),
            domain: ParameterDomain::single("univ", lubm.university_iris()),
            cost_source: CostSource::EstimatedCout,
        }];
        let mut cfg = SuiteConfig::default();
        cfg.curation.cluster.min_class_size = 1;
        cfg.validation.sample_size = 20;
        let report = run_suite(&engine, &specs, &cfg).expect("lubm suite");
        sections.push(report.to_markdown());
    }

    let combined = sections.join("\n");
    let path = "target/parambench-report.md";
    std::fs::write(path, &combined).expect("write report");
    println!("{combined}");
    println!("\n(report written to {path})");
}
