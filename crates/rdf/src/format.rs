//! The on-disk snapshot format: header, section table, checksums, codecs.
//!
//! A snapshot file is a fixed-width little-endian container:
//!
//! ```text
//! offset 0    header (32 bytes)
//!             0..8    magic  "PBRDFSNP"
//!             8..12   format version (u32, currently 1)
//!             12..16  section count (u32)
//!             16..24  total file length (u64)
//!             24..32  FNV-1a 64 checksum of the section table (u64)
//! offset 32   section table (32 bytes per section)
//!             kind (u32) · reserved (u32, zero) · payload offset (u64)
//!             · payload length in bytes (u64) · FNV-1a 64 checksum (u64)
//! then        payload sections, each starting on an 8-byte boundary
//!             (zero padding between sections is neither counted in a
//!             section's length nor checksummed)
//! ```
//!
//! Every structural violation maps to a typed [`SnapshotError`] — loading
//! never panics and never interprets bytes it has not bounds-checked. The
//! per-section checksums are what lets [`crate::snapshot`] hand out
//! *zero-copy* views of the triple and bucket sections: once a section's
//! checksum verifies, its bytes are exactly what [`crate::store::Dataset::save`]
//! wrote, so reinterpreting them as `[Id; 3]` keys is sound without any
//! per-element validation.

use std::fmt;
use std::path::PathBuf;

use crate::term::{Literal, LiteralKind, Term};

/// File magic: identifies a parambench RDF store snapshot.
pub const MAGIC: [u8; 8] = *b"PBRDFSNP";

/// Current format version. Bumped on any layout change; loaders reject
/// other versions with [`SnapshotError::UnsupportedVersion`]. Version 2
/// added the per-window checksum section ([`SEC_WINDOW_SUMS`]).
pub const VERSION: u32 = 2;

/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 32;

/// Byte length of one section-table entry.
pub const TABLE_ENTRY_LEN: usize = 32;

/// Dataset-wide metadata (term/triple counts, flags).
pub const SEC_META: u32 = 1;
/// `(term_count + 1)` u64 offsets into [`SEC_TERM_BLOB`].
pub const SEC_TERM_OFFSETS: u32 = 2;
/// Concatenated encoded terms (see [`encode_term`]).
pub const SEC_TERM_BLOB: u32 = 3;
/// Cached numeric value per term as `f64::to_bits` (u64 each) — bit
/// patterns, so NaN-valued literals round-trip exactly.
pub const SEC_NUMERIC: u32 = 4;
/// Presence bitmap of the numeric cache: `ceil(term_count / 64)` u64
/// words, bit `i % 64` of word `i / 64` set iff term `i` has a numeric
/// value. The explicit bitmap (rather than a NaN sentinel) is what keeps
/// genuinely NaN-valued literals numeric.
pub const SEC_NUMERIC_SET: u32 = 5;
/// Per-predicate and global statistics ([`crate::stats::DatasetStats`]).
pub const SEC_STATS: u32 = 6;
/// Characteristic sets ([`crate::stats::CharacteristicSets`]).
pub const SEC_CHAR_SETS: u32 = 7;
/// Per-window FNV-1a sums of every other section, enabling windowed
/// checksum verification on load (`PARAMBENCH_SNAPSHOT_VERIFY=windowed`):
/// `window_size` u64, section count u64, then per section (in table
/// order) `kind` u32, zero pad u32, window count u64 and that many u64
/// sums — window `i` covering payload bytes `[i*w, min((i+1)*w, len))`.
pub const SEC_WINDOW_SUMS: u32 = 8;

/// Base kind of the six sorted triple-key sections (`+ IndexOrder::slot()`).
pub const SEC_TRIPLES_BASE: u32 = 16;
/// Base kind of the six per-index bucket-directory sections.
pub const SEC_BUCKETS_BASE: u32 = 32;

/// Section kind of the sorted key array of index `slot` (0..6).
pub const fn sec_triples(slot: usize) -> u32 {
    SEC_TRIPLES_BASE + slot as u32
}

/// Section kind of the bucket directory of index `slot` (0..6).
pub const fn sec_buckets(slot: usize) -> u32 {
    SEC_BUCKETS_BASE + slot as u32
}

/// Total number of sections a current-version snapshot carries (seven
/// metadata sections, the window-sums section, six key arrays and six
/// bucket directories).
pub const SECTION_COUNT: usize = 8 + 6 + 6;

/// Human-readable name of a section kind (for error messages).
pub fn section_name(kind: u32) -> &'static str {
    match kind {
        SEC_META => "meta",
        SEC_TERM_OFFSETS => "term-offsets",
        SEC_TERM_BLOB => "term-blob",
        SEC_NUMERIC => "numeric-values",
        SEC_NUMERIC_SET => "numeric-bitmap",
        SEC_STATS => "stats",
        SEC_CHAR_SETS => "characteristic-sets",
        SEC_WINDOW_SUMS => "window-sums",
        k if (SEC_TRIPLES_BASE..SEC_TRIPLES_BASE + 6).contains(&k) => "triples",
        k if (SEC_BUCKETS_BASE..SEC_BUCKETS_BASE + 6).contains(&k) => "buckets",
        _ => "unknown",
    }
}

/// Meta-section flag: the dictionary observed value ties at freeze
/// ([`crate::dict::Dictionary::has_value_ties`]).
pub const FLAG_VALUE_TIES: u64 = 1;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed failure while saving or loading a snapshot. Corrupted,
/// truncated and mis-versioned files all surface here — never as a panic
/// or as undefined behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// An I/O operation failed (`std::io::Error` is not `Clone`, so the
    /// message is captured as text).
    Io {
        /// What the snapshot layer was doing (e.g. `"create snapshot"`).
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's format version is not the supported one.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The file is shorter than its header claims (or than the header
    /// itself).
    Truncated {
        /// Bytes the header (or format) requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A section's checksum does not match its bytes.
    ChecksumMismatch {
        /// Which section failed (see [`section_name`]).
        section: &'static str,
    },
    /// A structural invariant of the decoded content is violated.
    Corrupt(String),
    /// The dataset carries net overlay updates that a snapshot cannot
    /// represent (the format stores the frozen base only). Call
    /// `Dataset::compact` first.
    PendingUpdates {
        /// Pending overlay adds at save time.
        adds: usize,
        /// Pending overlay tombstones at save time.
        dels: usize,
    },
    /// The dictionary holds post-freeze overflow terms that are not in
    /// value order. The snapshot format has no overflow watermark — a
    /// loader treats *every* stored id as value-ordered — so saving would
    /// let the reloaded store serve order it cannot deliver. Call
    /// `Dataset::compact` first.
    OverflowTerms {
        /// Terms interned past the frozen value-ordered range.
        overflow: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { op, path, message } => {
                write!(f, "snapshot I/O: {} {}: {}", op, path.display(), message)
            }
            SnapshotError::BadMagic => write!(f, "not a store snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported snapshot version {found} (this build reads {supported})")
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(f, "truncated snapshot: need {expected} bytes, file has {actual}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot checksum mismatch in section `{section}`")
            }
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::PendingUpdates { adds, dels } => write!(
                f,
                "dataset has pending live updates ({adds} adds, {dels} deletes); \
                 compact() before save()"
            ),
            SnapshotError::OverflowTerms { overflow } => write!(
                f,
                "dataset dictionary holds {overflow} post-freeze overflow terms out of \
                 value order; compact() before save()"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

/// Streaming FNV-1a 64 checksum (dependency-free; detects the random
/// corruption and truncation a storage layer must catch — it is not a
/// cryptographic integrity guarantee).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Folds `bytes` into the running state.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The checksum of everything updated so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

// ---------------------------------------------------------------------------
// Header + section table
// ---------------------------------------------------------------------------

/// One section-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section kind (`SEC_*`).
    pub kind: u32,
    /// Payload offset from the start of the file (8-byte aligned).
    pub offset: u64,
    /// Payload length in bytes (excluding alignment padding).
    pub len: u64,
    /// FNV-1a 64 of the payload bytes.
    pub checksum: u64,
}

fn encode_table(table: &[SectionEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(table.len() * TABLE_ENTRY_LEN);
    for e in table {
        out.extend_from_slice(&e.kind.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&e.offset.to_le_bytes());
        out.extend_from_slice(&e.len.to_le_bytes());
        out.extend_from_slice(&e.checksum.to_le_bytes());
    }
    out
}

/// Encodes the header plus section table (the first
/// `HEADER_LEN + table.len() * TABLE_ENTRY_LEN` bytes of a snapshot).
pub fn encode_header_and_table(file_len: u64, table: &[SectionEntry]) -> Vec<u8> {
    let table_bytes = encode_table(table);
    let mut out = Vec::with_capacity(HEADER_LEN + table_bytes.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(table.len() as u32).to_le_bytes());
    out.extend_from_slice(&file_len.to_le_bytes());
    out.extend_from_slice(&fnv1a(&table_bytes).to_le_bytes());
    out.extend_from_slice(&table_bytes);
    out
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

/// Parses and validates the header and section table of `bytes` (a whole
/// snapshot file). Checks, in order: minimum length, magic, version, the
/// stated file length against the actual one, table bounds, the table
/// checksum, and per-entry bounds/alignment. Payload checksums are *not*
/// verified here — the loader does that per section.
pub fn decode_header_and_table(bytes: &[u8]) -> Result<Vec<SectionEntry>, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32_at(bytes, 8);
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version, supported: VERSION });
    }
    let count = u32_at(bytes, 12) as usize;
    if count > 4096 {
        return Err(SnapshotError::Corrupt(format!("implausible section count {count}")));
    }
    let file_len = u64_at(bytes, 16);
    if (bytes.len() as u64) < file_len {
        return Err(SnapshotError::Truncated { expected: file_len, actual: bytes.len() as u64 });
    }
    if (bytes.len() as u64) > file_len {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes past the stated file length",
            bytes.len() as u64 - file_len
        )));
    }
    let table_end = HEADER_LEN + count * TABLE_ENTRY_LEN;
    if bytes.len() < table_end {
        return Err(SnapshotError::Truncated {
            expected: table_end as u64,
            actual: bytes.len() as u64,
        });
    }
    let table_bytes = &bytes[HEADER_LEN..table_end];
    if fnv1a(table_bytes) != u64_at(bytes, 24) {
        return Err(SnapshotError::ChecksumMismatch { section: "section-table" });
    }
    let mut table = Vec::with_capacity(count);
    for i in 0..count {
        let at = i * TABLE_ENTRY_LEN;
        let entry = SectionEntry {
            kind: u32_at(table_bytes, at),
            offset: u64_at(table_bytes, at + 8),
            len: u64_at(table_bytes, at + 16),
            checksum: u64_at(table_bytes, at + 24),
        };
        let end = entry.offset.checked_add(entry.len).ok_or_else(|| {
            SnapshotError::Corrupt(format!("section {} overflows", section_name(entry.kind)))
        })?;
        if entry.offset < table_end as u64 || end > bytes.len() as u64 {
            return Err(SnapshotError::Corrupt(format!(
                "section {} [{}, {end}) out of file bounds",
                section_name(entry.kind),
                entry.offset,
            )));
        }
        if !entry.offset.is_multiple_of(8) {
            return Err(SnapshotError::Corrupt(format!(
                "section {} misaligned at offset {}",
                section_name(entry.kind),
                entry.offset
            )));
        }
        table.push(entry);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Little-endian decode cursor
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian decode cursor over one section's bytes.
/// Every read is checked; overruns surface as [`SnapshotError::Corrupt`].
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Dec<'a> {
    /// A cursor over `buf`; `what` names the section for error messages.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Dec { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            SnapshotError::Corrupt(format!(
                "section {}: read of {n} bytes at {} overruns {}-byte payload",
                self.what,
                self.pos,
                self.buf.len()
            ))
        })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads one little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads one little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` that must fit in `usize` (section counts, offsets).
    pub fn ulen(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| {
            SnapshotError::Corrupt(format!("section {}: length {v} exceeds usize", self.what))
        })
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Reads a UTF-8 string of `n` bytes.
    pub fn str(&mut self, n: usize) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.take(n)?).map_err(|e| {
            SnapshotError::Corrupt(format!("section {}: invalid UTF-8 ({e})", self.what))
        })
    }

    /// Asserts the cursor consumed the payload exactly.
    pub fn done(&self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "section {}: {} unread trailing bytes",
                self.what,
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Term codec
// ---------------------------------------------------------------------------

const TAG_IRI: u8 = 0;
const TAG_BLANK: u8 = 1;
const TAG_PLAIN: u8 = 2;
const TAG_LANG: u8 = 3;
const TAG_TYPED: u8 = 4;

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Appends the encoded form of `term` to `out`: a one-byte tag followed by
/// `u32`-length-prefixed UTF-8 strings.
pub fn encode_term(term: &Term, out: &mut Vec<u8>) {
    match term {
        Term::Iri(iri) => {
            out.push(TAG_IRI);
            push_str(out, iri);
        }
        Term::Blank(label) => {
            out.push(TAG_BLANK);
            push_str(out, label);
        }
        Term::Literal(lit) => match &lit.kind {
            LiteralKind::Plain => {
                out.push(TAG_PLAIN);
                push_str(out, &lit.lexical);
            }
            LiteralKind::Lang(lang) => {
                out.push(TAG_LANG);
                push_str(out, &lit.lexical);
                push_str(out, lang);
            }
            LiteralKind::Typed(dt) => {
                out.push(TAG_TYPED);
                push_str(out, &lit.lexical);
                push_str(out, dt);
            }
        },
    }
}

fn read_str<'a>(dec: &mut Dec<'a>) -> Result<&'a str, SnapshotError> {
    let len = dec.u32()? as usize;
    dec.str(len)
}

/// Decodes one term written by [`encode_term`].
pub fn decode_term(dec: &mut Dec<'_>) -> Result<Term, SnapshotError> {
    let tag = dec.u8()?;
    Ok(match tag {
        TAG_IRI => Term::Iri(read_str(dec)?.to_string()),
        TAG_BLANK => Term::Blank(read_str(dec)?.to_string()),
        TAG_PLAIN => Term::Literal(Literal::plain(read_str(dec)?)),
        TAG_LANG => {
            let lexical = read_str(dec)?.to_string();
            let lang = read_str(dec)?.to_string();
            Term::Literal(Literal::lang(lexical, lang))
        }
        TAG_TYPED => {
            let lexical = read_str(dec)?.to_string();
            let dt = read_str(dec)?.to_string();
            Term::Literal(Literal::typed(lexical, dt))
        }
        other => return Err(SnapshotError::Corrupt(format!("unknown term tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        let mut streaming = Fnv1a::new();
        streaming.update(b"hello ");
        streaming.update(b"world");
        assert_eq!(streaming.finish(), fnv1a(b"hello world"));
    }

    #[test]
    fn header_round_trip() {
        let table = vec![
            SectionEntry { kind: SEC_META, offset: 640, len: 24, checksum: 7 },
            SectionEntry { kind: sec_triples(3), offset: 664, len: 0, checksum: fnv1a(b"") },
        ];
        // Stated file length must cover the largest section end.
        let mut bytes = encode_header_and_table(664, &table);
        bytes.resize(664, 0);
        // Fix file_len to the padded size for the round trip.
        let mut bytes2 = encode_header_and_table(bytes.len() as u64, &table);
        bytes2.resize(bytes.len(), 0);
        let decoded = decode_header_and_table(&bytes2).expect("valid header");
        assert_eq!(decoded, table);
    }

    #[test]
    fn header_rejections_are_typed() {
        assert_eq!(
            decode_header_and_table(&[0u8; 8]),
            Err(SnapshotError::Truncated { expected: 32, actual: 8 })
        );
        let mut bad_magic = encode_header_and_table(32, &[]);
        bad_magic[0] ^= 0xff;
        assert_eq!(decode_header_and_table(&bad_magic), Err(SnapshotError::BadMagic));

        let mut bad_version = encode_header_and_table(32, &[]);
        bad_version[8] = 99;
        // Re-stating file_len is unnecessary: version is checked before it.
        assert_eq!(
            decode_header_and_table(&bad_version),
            Err(SnapshotError::UnsupportedVersion { found: 99, supported: VERSION })
        );

        // A flipped table byte fails the table checksum.
        let table = vec![SectionEntry { kind: SEC_META, offset: 64, len: 8, checksum: 1 }];
        let mut bytes = encode_header_and_table(72, &table);
        bytes.resize(72, 0);
        let mut flipped = encode_header_and_table(72, &table);
        flipped.resize(72, 0);
        flipped[HEADER_LEN + 1] ^= 0x10;
        assert_eq!(
            decode_header_and_table(&flipped),
            Err(SnapshotError::ChecksumMismatch { section: "section-table" })
        );
        assert!(decode_header_and_table(&bytes).is_ok());
    }

    #[test]
    fn term_codec_round_trip() {
        let terms = vec![
            Term::iri("http://example.org/thing"),
            Term::Blank("b0".into()),
            Term::literal("plain \"text\"\n"),
            Term::Literal(Literal::lang("hola", "es")),
            Term::integer(-42),
            Term::double(f64::NAN),
        ];
        let mut blob = Vec::new();
        for t in &terms {
            encode_term(t, &mut blob);
        }
        let mut dec = Dec::new(&blob, "term-blob");
        for t in &terms {
            assert_eq!(&decode_term(&mut dec).expect("decodes"), t);
        }
        dec.done().expect("fully consumed");
    }

    #[test]
    fn term_decode_rejects_garbage() {
        let mut dec = Dec::new(&[9u8, 0, 0, 0, 0], "term-blob");
        assert!(matches!(decode_term(&mut dec), Err(SnapshotError::Corrupt(_))));
        // A length that overruns the payload is caught, not read.
        let mut blob = Vec::new();
        blob.push(0u8); // IRI tag
        blob.extend_from_slice(&100u32.to_le_bytes());
        blob.extend_from_slice(b"short");
        let mut dec = Dec::new(&blob, "term-blob");
        assert!(matches!(decode_term(&mut dec), Err(SnapshotError::Corrupt(_))));
    }
}
