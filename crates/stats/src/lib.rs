//! # parambench-stats
//!
//! Statistics toolkit for the *parambench* reproduction of
//! "How to generate query parameters in RDF benchmarks?"
//! (Gubichev, Angles, Boncz — ICDE 2014).
//!
//! Everything the paper's evaluation needs, self-contained:
//!
//! * [`summary::Summary`] — min / quantiles / median / mean / variance /
//!   skewness / kurtosis / Sarle's bimodality coefficient (E1–E3 tables),
//! * [`ks`] — one-sample Kolmogorov–Smirnov vs a fitted normal (E1's
//!   D = 0.89 claim) and the two-sample test (P2 stability validation),
//! * [`correlation`] — Pearson (§III's Cout-vs-runtime ≈ 0.85) and Spearman,
//! * [`histogram::Histogram`] — equi-width and log-scale histograms with
//!   mode counting (E3's "clustered runtimes") and ASCII rendering,
//! * [`mannwhitney`] — rank-sum test, the heavy-tail-robust alternative for
//!   the P2 stability check,
//! * [`bootstrap`] — percentile-bootstrap confidence intervals for group
//!   aggregates (honest E2 comparisons).

pub mod bootstrap;
pub mod correlation;
pub mod histogram;
pub mod ks;
pub mod mannwhitney;
pub mod normal;
pub mod summary;

pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci, ConfidenceInterval};
pub use correlation::{pearson, spearman};
pub use histogram::Histogram;
pub use ks::{ks_test_vs_fitted_normal, ks_two_sample, KsResult};
pub use mannwhitney::{mann_whitney_u, MannWhitneyResult};
pub use normal::Normal;
pub use summary::{relative_spread, Summary};
