//! Parameter domains.
//!
//! §III: "We consider query Q (with parameters p1, …, pn) against the RDF
//! dataset D. Every parameter pi has the domain Pi, and the domain of all
//! the parameters is P = P1 × … × Pn."
//!
//! A [`ParameterDomain`] materializes the per-parameter candidate lists
//! (typically extracted from the dataset: all product types, all countries…)
//! and enumerates or samples the cross product `P`.

use parambench_rdf::store::Dataset;
use parambench_rdf::term::Term;
use parambench_sparql::template::Binding;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::CurationError;

/// The cross product `P = P1 × … × Pn` of per-parameter candidate values.
#[derive(Debug, Clone)]
pub struct ParameterDomain {
    names: Vec<String>,
    values: Vec<Vec<Term>>,
}

impl ParameterDomain {
    /// An empty domain (build it up with [`ParameterDomain::with`]).
    pub fn new() -> Self {
        ParameterDomain { names: Vec::new(), values: Vec::new() }
    }

    /// Adds one parameter dimension.
    pub fn with(mut self, name: impl Into<String>, values: Vec<Term>) -> Self {
        self.names.push(name.into());
        self.values.push(values);
        self
    }

    /// A single-parameter domain.
    pub fn single(name: impl Into<String>, values: Vec<Term>) -> Self {
        ParameterDomain::new().with(name, values)
    }

    /// Dimension extracted from the dataset: all distinct objects of
    /// predicate `pred` (e.g. all countries via `livesIn`).
    pub fn from_objects(
        ds: &Dataset,
        name: impl Into<String>,
        pred: &Term,
    ) -> Result<Self, CurationError> {
        let p = ds.lookup(pred).ok_or_else(|| {
            CurationError::EmptyDomain(format!("predicate {pred} not in dataset"))
        })?;
        let values: Vec<Term> = ds.objects_of_iter(p).map(|id| ds.decode(id).clone()).collect();
        if values.is_empty() {
            return Err(CurationError::EmptyDomain(format!("predicate {pred} has no objects")));
        }
        Ok(ParameterDomain::single(name, values))
    }

    /// Dimension extracted from the dataset: all distinct subjects of
    /// predicate `pred` (e.g. all persons via `firstName`).
    pub fn from_subjects(
        ds: &Dataset,
        name: impl Into<String>,
        pred: &Term,
    ) -> Result<Self, CurationError> {
        let p = ds.lookup(pred).ok_or_else(|| {
            CurationError::EmptyDomain(format!("predicate {pred} not in dataset"))
        })?;
        let values: Vec<Term> = ds.subjects_of_iter(p).map(|id| ds.decode(id).clone()).collect();
        if values.is_empty() {
            return Err(CurationError::EmptyDomain(format!("predicate {pred} has no subjects")));
        }
        Ok(ParameterDomain::single(name, values))
    }

    /// Parameter names, in dimension order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Candidate values of dimension `i`.
    pub fn values(&self, i: usize) -> &[Term] {
        &self.values[i]
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// Size of the full cross product (saturating).
    pub fn len(&self) -> usize {
        if self.values.is_empty() {
            return 0;
        }
        self.values.iter().fold(1usize, |acc, v| acc.saturating_mul(v.len()))
    }

    /// True if any dimension is empty (no bindings exist).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The binding at flat index `i` of the row-major cross product.
    pub fn binding_at(&self, mut i: usize) -> Binding {
        let mut b = Binding::new();
        for d in (0..self.arity()).rev() {
            let v = &self.values[d];
            b = b.with(self.names[d].clone(), v[i % v.len()].clone());
            i /= v.len();
        }
        b
    }

    /// Enumerates the whole cross product if it has at most `limit`
    /// elements; otherwise draws `limit` distinct bindings uniformly at
    /// random (deterministic in `seed`).
    pub fn enumerate(&self, limit: usize, seed: u64) -> Vec<Binding> {
        let n = self.len();
        if n == 0 || limit == 0 {
            return Vec::new();
        }
        if n <= limit {
            return (0..n).map(|i| self.binding_at(i)).collect();
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = rand::seq::index::sample(&mut rng, n, limit).into_vec();
        indices.sort_unstable();
        indices.into_iter().map(|i| self.binding_at(i)).collect()
    }

    /// Draws `n` bindings uniformly at random **with replacement** — the
    /// paper's baseline workload generator.
    pub fn sample_uniform(&self, n: usize, seed: u64) -> Vec<Binding> {
        let total = self.len();
        if total == 0 {
            return Vec::new();
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let i = rand::Rng::gen_range(&mut rng, 0..total);
                self.binding_at(i)
            })
            .collect()
    }

    /// Draws `n` bindings by shuffling class member lists — helper for
    /// stratified samplers.
    pub(crate) fn shuffle_sample(pool: &[Binding], n: usize, seed: u64) -> Vec<Binding> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if pool.is_empty() {
            return Vec::new();
        }
        if pool.len() >= n {
            let mut copy: Vec<Binding> = pool.to_vec();
            copy.shuffle(&mut rng);
            copy.truncate(n);
            copy
        } else {
            // With replacement once the pool is exhausted.
            (0..n).map(|_| pool[rand::Rng::gen_range(&mut rng, 0..pool.len())].clone()).collect()
        }
    }
}

impl Default for ParameterDomain {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parambench_rdf::store::StoreBuilder;

    fn terms(prefix: &str, n: usize) -> Vec<Term> {
        (0..n).map(|i| Term::iri(format!("{prefix}/{i}"))).collect()
    }

    #[test]
    fn cross_product_size_and_enumeration() {
        let d = ParameterDomain::new().with("a", terms("a", 3)).with("b", terms("b", 4));
        assert_eq!(d.arity(), 2);
        assert_eq!(d.len(), 12);
        let all = d.enumerate(100, 1);
        assert_eq!(all.len(), 12);
        // All distinct.
        let mut set = std::collections::BTreeSet::new();
        for b in &all {
            set.insert(format!("{b}"));
        }
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn binding_at_covers_all_combinations() {
        let d = ParameterDomain::new().with("x", terms("x", 2)).with("y", terms("y", 3));
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..6 {
            let b = d.binding_at(i);
            seen.insert((b.get("x").unwrap().clone(), b.get("y").unwrap().clone()));
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn sampling_large_domain_is_bounded_and_deterministic() {
        let d = ParameterDomain::new().with("a", terms("a", 100)).with("b", terms("b", 100));
        let s1 = d.enumerate(50, 7);
        let s2 = d.enumerate(50, 7);
        let s3 = d.enumerate(50, 8);
        assert_eq!(s1.len(), 50);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn uniform_sample_with_replacement() {
        let d = ParameterDomain::single("a", terms("a", 3));
        let s = d.sample_uniform(100, 3);
        assert_eq!(s.len(), 100);
        // All three values appear.
        let distinct: std::collections::BTreeSet<String> =
            s.iter().map(|b| format!("{b}")).collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn from_dataset_extractors() {
        let mut b = StoreBuilder::new();
        b.insert(Term::iri("p1"), Term::iri("lives"), Term::iri("c1"));
        b.insert(Term::iri("p2"), Term::iri("lives"), Term::iri("c2"));
        b.insert(Term::iri("p2"), Term::iri("lives"), Term::iri("c1"));
        let ds = b.freeze();
        let d = ParameterDomain::from_objects(&ds, "country", &Term::iri("lives")).unwrap();
        assert_eq!(d.len(), 2);
        let d = ParameterDomain::from_subjects(&ds, "person", &Term::iri("lives")).unwrap();
        assert_eq!(d.len(), 2);
        assert!(ParameterDomain::from_objects(&ds, "x", &Term::iri("nope")).is_err());
    }

    #[test]
    fn empty_domain_behaviour() {
        let d = ParameterDomain::new();
        assert!(d.is_empty());
        assert!(d.enumerate(10, 0).is_empty());
        assert!(d.sample_uniform(10, 0).is_empty());
        let with_empty_dim = ParameterDomain::new().with("a", vec![]);
        assert!(with_empty_dim.is_empty());
    }
}
