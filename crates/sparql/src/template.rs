//! Query templates and parameter bindings.
//!
//! A *query template* is the paper's unit of workload specification: a query
//! with `%name` substitution parameters. The workload generator produces
//! [`Binding`]s (parameter name → RDF term) and instantiates the template
//! once per binding; the aggregate of the resulting runtimes is what the
//! benchmark reports.

use std::collections::{BTreeMap, BTreeSet};

use parambench_rdf::term::Term;

use crate::ast::{Element, Expr, SelectQuery, VarOrTerm};
use crate::error::QueryError;
use crate::parser::parse_query;

/// A full assignment of RDF terms to a template's parameters.
///
/// Ordered map so that bindings have a canonical display/compare order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Binding(pub BTreeMap<String, Term>);

impl Binding {
    /// An empty binding.
    pub fn new() -> Self {
        Binding(BTreeMap::new())
    }

    /// Builds a binding from `(name, term)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Term)>,
        S: Into<String>,
    {
        Binding(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Adds one parameter value (builder style).
    pub fn with(mut self, name: impl Into<String>, term: Term) -> Self {
        self.0.insert(name.into(), term);
        self
    }

    /// The term bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Term> {
        self.0.get(name)
    }
}

impl Default for Binding {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Display for Binding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (k, v) in &self.0 {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "%{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

/// A parsed query template with named `%parameters`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTemplate {
    name: String,
    query: SelectQuery,
    params: Vec<String>,
    /// The same names as `params`, as a set — precomputed at parse so that
    /// binding validation on the instantiate hot path is pure lookups, with
    /// no per-call string formatting or quadratic scans.
    param_set: BTreeSet<String>,
}

impl QueryTemplate {
    /// Parses a template from query text. `name` labels it in reports.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Self, QueryError> {
        Ok(Self::from_query(name, parse_query(text)?))
    }

    /// Wraps an already-parsed query.
    pub fn from_query(name: impl Into<String>, query: SelectQuery) -> Self {
        let params = query.params();
        let param_set = params.iter().cloned().collect();
        QueryTemplate { name: name.into(), query, params, param_set }
    }

    /// The template's report label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter names in first-occurrence order.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// The underlying (parameterized) query.
    pub fn query(&self) -> &SelectQuery {
        &self.query
    }

    /// Validates that `binding` assigns exactly this template's parameters.
    ///
    /// Every template parameter must be bound; extra bindings are rejected
    /// as a likely workload-generator bug. The success path is pure set
    /// lookups; the error message (naming the template and listing its
    /// expected parameters) is only formatted once a mismatch is found.
    pub fn check_binding(&self, binding: &Binding) -> Result<(), QueryError> {
        for p in &self.params {
            if binding.get(p).is_none() {
                return Err(self.mismatch(format_args!("is missing a value for %{p}")));
            }
        }
        for k in binding.0.keys() {
            if !self.param_set.contains(k) {
                return Err(self.mismatch(format_args!("provides unknown parameter %{k}")));
            }
        }
        Ok(())
    }

    fn mismatch(&self, what: std::fmt::Arguments<'_>) -> QueryError {
        let expected = if self.params.is_empty() {
            "(none)".to_string()
        } else {
            self.params.iter().map(|p| format!("%{p}")).collect::<Vec<_>>().join(", ")
        };
        QueryError::BindingMismatch(format!(
            "binding for template '{}' {what}; expected parameters: {expected}",
            self.name
        ))
    }

    /// Substitutes `binding` into the template, producing a concrete query.
    pub fn instantiate(&self, binding: &Binding) -> Result<SelectQuery, QueryError> {
        self.check_binding(binding)?;
        let mut query = self.query.clone();
        substitute_elements(&mut query.where_clause, binding);
        debug_assert!(query.is_concrete());
        Ok(query)
    }
}

fn substitute_elements(elements: &mut [Element], binding: &Binding) {
    for el in elements {
        match el {
            Element::Triple(t) => {
                for slot in [&mut t.subject, &mut t.predicate, &mut t.object] {
                    if let VarOrTerm::Param(p) = slot {
                        let term = binding.get(p).expect("checked in instantiate").clone();
                        *slot = VarOrTerm::Term(term);
                    }
                }
            }
            Element::Filter(e) => substitute_expr(e, binding),
            Element::Optional(inner) => substitute_elements(inner, binding),
            Element::Union(branches) => {
                for branch in branches {
                    substitute_elements(branch, binding);
                }
            }
        }
    }
}

fn substitute_expr(expr: &mut Expr, binding: &Binding) {
    match expr {
        Expr::Param(p) => {
            let term = binding.get(p).expect("checked in instantiate").clone();
            *expr = Expr::Const(term);
        }
        Expr::Var(_) | Expr::Const(_) | Expr::Bound(_) => {}
        Expr::Not(inner) => substitute_expr(inner, binding),
        Expr::Binary(_, a, b) => {
            substitute_expr(a, binding);
            substitute_expr(b, binding);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEMPLATE: &str = "PREFIX sn: <http://sn/> \
        SELECT ?person WHERE { \
          ?person sn:firstName %name . \
          ?person sn:livesIn %country . \
          FILTER(?person != %excluded) \
        }";

    #[test]
    fn template_lists_params() {
        let t = QueryTemplate::parse("q1", TEMPLATE).unwrap();
        assert_eq!(t.params(), &["name", "country", "excluded"]);
        assert_eq!(t.name(), "q1");
    }

    #[test]
    fn instantiate_substitutes_everywhere() {
        let t = QueryTemplate::parse("q1", TEMPLATE).unwrap();
        let b = Binding::new()
            .with("name", Term::literal("Li"))
            .with("country", Term::iri("http://sn/country/China"))
            .with("excluded", Term::iri("http://sn/person/0"));
        let q = t.instantiate(&b).unwrap();
        assert!(q.is_concrete());
        let pats = q.required_patterns();
        assert_eq!(pats[0].object, VarOrTerm::Term(Term::literal("Li")));
        assert_eq!(pats[1].object, VarOrTerm::Term(Term::iri("http://sn/country/China")));
    }

    #[test]
    fn instantiate_rejects_missing_and_extra() {
        let t = QueryTemplate::parse("q1", TEMPLATE).unwrap();
        let missing = Binding::new().with("name", Term::literal("Li"));
        assert!(matches!(t.instantiate(&missing), Err(QueryError::BindingMismatch(_))));
        let extra = Binding::new()
            .with("name", Term::literal("Li"))
            .with("country", Term::iri("http://c"))
            .with("excluded", Term::iri("http://p"))
            .with("bogus", Term::literal("x"));
        assert!(matches!(t.instantiate(&extra), Err(QueryError::BindingMismatch(_))));
    }

    #[test]
    fn mismatch_messages_name_template_and_expected_params() {
        let t = QueryTemplate::parse("q1", TEMPLATE).unwrap();
        let missing = Binding::new().with("name", Term::literal("Li"));
        let Err(QueryError::BindingMismatch(msg)) = t.instantiate(&missing) else {
            panic!("expected BindingMismatch");
        };
        assert!(msg.contains("'q1'"), "{msg}");
        assert!(msg.contains("%country"), "{msg}");
        assert!(msg.contains("%name, %country, %excluded"), "{msg}");
        let extra = Binding::new()
            .with("name", Term::literal("Li"))
            .with("country", Term::iri("http://c"))
            .with("excluded", Term::iri("http://p"))
            .with("bogus", Term::literal("x"));
        let Err(QueryError::BindingMismatch(msg)) = t.instantiate(&extra) else {
            panic!("expected BindingMismatch");
        };
        assert!(msg.contains("%bogus"), "{msg}");
        assert!(msg.contains("'q1'"), "{msg}");
    }

    #[test]
    fn binding_display_is_sorted() {
        let b = Binding::new().with("z", Term::integer(1)).with("a", Term::literal("x"));
        let text = b.to_string();
        assert!(text.starts_with("%a="), "{text}");
    }

    #[test]
    fn instantiation_does_not_mutate_template() {
        let t = QueryTemplate::parse("q1", TEMPLATE).unwrap();
        let b = Binding::from_pairs([
            ("name", Term::literal("Li")),
            ("country", Term::iri("http://c")),
            ("excluded", Term::iri("http://p")),
        ]);
        let _ = t.instantiate(&b).unwrap();
        assert_eq!(t.params(), &["name", "country", "excluded"]);
        assert!(!t.query().is_concrete());
    }

    #[test]
    fn optional_params_substituted() {
        let t = QueryTemplate::parse("q", "SELECT ?s WHERE { ?s <p> ?o OPTIONAL { ?s <q> %x } }")
            .unwrap();
        assert_eq!(t.params(), &["x"]);
        let q = t.instantiate(&Binding::new().with("x", Term::integer(1))).unwrap();
        assert!(q.is_concrete());
    }
}
