//! Snapshot robustness suite: a saved dataset must reload bit-identically,
//! and every way a snapshot file can go wrong — truncation at any point,
//! a flipped payload byte, foreign magic, an unsupported version, trailing
//! garbage — must surface as a *typed* [`SnapshotError`], never a panic,
//! never a silently wrong store.

use parambench_rdf::format::{HEADER_LEN, MAGIC, SECTION_COUNT, TABLE_ENTRY_LEN, VERSION};
use parambench_rdf::store::{Dataset, StoreBuilder};
use parambench_rdf::term::{Literal, Term};
use parambench_rdf::{Id, SnapshotError};

/// A small but representative dataset: IRIs, plain/lang/typed literals,
/// blanks, numerics (including NaN and negatives), several predicates.
fn sample() -> Dataset {
    let mut b = StoreBuilder::new();
    let p = |i: usize| Term::iri(format!("http://e/p{i}"));
    for i in 0..20 {
        let s = Term::iri(format!("http://e/s{}", i % 7));
        b.insert(s.clone(), p(i % 3), Term::integer(i as i64 - 10));
        b.insert(s.clone(), p(3), Term::literal(format!("label {i}")));
        if i % 4 == 0 {
            b.insert(s, p(4), Term::double(if i % 8 == 0 { f64::NAN } else { 0.5 * i as f64 }));
        }
    }
    b.insert(Term::Blank("b0".into()), p(0), Term::Literal(Literal::lang("hallo", "de")));
    b.insert(Term::iri("http://e/s0"), p(5), Term::Literal(Literal::boolean(true)));
    b.freeze_in_memory()
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("parambench-snapcorrupt-{}-{name}", std::process::id()))
}

/// One shared save: tests in this binary run in parallel, so writing a
/// common temp path per call would race (saved bytes are deterministic,
/// caching loses nothing).
fn saved_bytes() -> Vec<u8> {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES
        .get_or_init(|| {
            let path = temp("source.pbsnap");
            sample().save(&path).expect("saves");
            let bytes = std::fs::read(&path).expect("reads back");
            std::fs::remove_file(&path).ok();
            bytes
        })
        .clone()
}

fn load_bytes(name: &str, bytes: &[u8]) -> Result<Dataset, SnapshotError> {
    let path = temp(name);
    std::fs::write(&path, bytes).expect("writes corrupted file");
    let result = Dataset::load(&path);
    std::fs::remove_file(&path).ok();
    result
}

#[test]
fn round_trip_preserves_every_scan_and_term() {
    let ds = sample();
    let path = temp("roundtrip.pbsnap");
    ds.save(&path).expect("saves");
    let loaded = Dataset::load(&path).expect("loads");
    std::fs::remove_file(&path).ok();

    assert_eq!(ds.len(), loaded.len());
    assert!(loaded.is_loaded());
    // Full scans over all six index orders agree.
    for order in parambench_rdf::index::IndexOrder::ALL {
        assert_eq!(
            ds.index(order).scan(&[]).collect::<Vec<_>>(),
            loaded.index(order).scan(&[]).collect::<Vec<_>>(),
            "{order:?} scan diverged"
        );
    }
    // Every term, numeric value (bit-exact, incl. NaN) and count agrees.
    for i in 0..ds.dict().len() as u32 {
        let id = Id(i);
        assert_eq!(ds.decode(id), loaded.decode(id));
        match (ds.dict().numeric(id), loaded.dict().numeric(id)) {
            (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits()),
            (x, y) => assert_eq!(x, y),
        }
        assert_eq!(ds.count([Some(id), None, None]), loaded.count([Some(id), None, None]));
        assert_eq!(ds.count([None, Some(id), None]), loaded.count([None, Some(id), None]));
        assert_eq!(ds.count([None, None, Some(id)]), loaded.count([None, None, Some(id)]));
    }
    assert_eq!(ds.stats().total_triples, loaded.stats().total_triples);
    assert_eq!(ds.stats().distinct_subjects, loaded.stats().distinct_subjects);
    assert_eq!(ds.stats().distinct_predicates, loaded.stats().distinct_predicates);
    assert_eq!(ds.char_sets().len(), loaded.char_sets().len());
}

#[test]
fn truncation_at_every_region_is_typed() {
    let bytes = saved_bytes();
    // Representative cut points: inside the header, inside the section
    // table, at the payload boundary, inside a payload, one byte short.
    let cuts = [
        0,
        HEADER_LEN - 1,
        HEADER_LEN + TABLE_ENTRY_LEN * SECTION_COUNT / 2,
        HEADER_LEN + TABLE_ENTRY_LEN * SECTION_COUNT,
        bytes.len() / 2,
        bytes.len() - 1,
    ];
    for cut in cuts {
        let err = load_bytes("truncated.pbsnap", &bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "cut at {cut}/{} gave {err:?}, expected Truncated",
            bytes.len()
        );
    }
}

#[test]
fn every_flipped_payload_byte_is_rejected() {
    let bytes = saved_bytes();
    // Flip one byte in each section's payload region: the per-section
    // checksum must catch it. (Zero padding bytes between sections are
    // unchecksummed by design, so flip within actual payloads — stride
    // through the payload region instead of exhaustively testing every
    // byte to keep the test fast.)
    let payload_start = HEADER_LEN + TABLE_ENTRY_LEN * SECTION_COUNT;
    let mut rejected = 0;
    for pos in (payload_start..bytes.len()).step_by(97) {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x40;
        match load_bytes("flipped.pbsnap", &corrupted) {
            Err(SnapshotError::ChecksumMismatch { .. }) => rejected += 1,
            // A flip can land on inter-section zero padding; loading then
            // legitimately succeeds (padding is outside every checksum).
            Ok(_) => {}
            Err(other) => panic!("flip at {pos} gave {other:?}"),
        }
    }
    assert!(rejected > 10, "checksums caught only {rejected} flips");
}

#[test]
fn flipped_table_byte_is_rejected() {
    let bytes = saved_bytes();
    let mut corrupted = bytes.clone();
    corrupted[HEADER_LEN + 8] ^= 0x01; // a section-table offset byte
    let err = load_bytes("table-flip.pbsnap", &corrupted).unwrap_err();
    assert!(matches!(err, SnapshotError::ChecksumMismatch { section: "section-table" }), "{err:?}");
}

#[test]
fn foreign_magic_is_rejected() {
    let mut bytes = saved_bytes();
    bytes[0..8].copy_from_slice(b"NOTASNAP");
    assert!(matches!(load_bytes("magic.pbsnap", &bytes).unwrap_err(), SnapshotError::BadMagic));
    // Sanity: the real magic is what the file carries.
    assert_eq!(&saved_bytes()[0..8], &MAGIC);
}

#[test]
fn future_version_is_rejected_with_both_versions() {
    let mut bytes = saved_bytes();
    bytes[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
    match load_bytes("version.pbsnap", &bytes).unwrap_err() {
        SnapshotError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, VERSION + 1);
            assert_eq!(supported, VERSION);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = saved_bytes();
    bytes.extend_from_slice(b"garbage!");
    let err = load_bytes("trailing.pbsnap", &bytes).unwrap_err();
    assert!(matches!(err, SnapshotError::Corrupt(_)), "{err:?}");
}

#[test]
fn empty_and_tiny_files_are_typed() {
    for bytes in [&b""[..], &b"P"[..], &b"PBRDFSNP"[..]] {
        let err = load_bytes("tiny.pbsnap", bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { .. }), "{err:?}");
    }
}

#[test]
fn errors_render_and_compare() {
    // SnapshotError is Clone + PartialEq and Display renders the context a
    // caller needs (section names, expected/actual sizes).
    let e = SnapshotError::ChecksumMismatch { section: "meta" };
    assert_eq!(e.clone(), e);
    assert!(e.to_string().contains("meta"), "{e}");
    let t = SnapshotError::Truncated { expected: 100, actual: 7 };
    assert!(t.to_string().contains("100") && t.to_string().contains('7'), "{t}");
}
