//! Out-of-core execution: run files, the external GROUP BY fold and the
//! external merge sort behind [`crate::exec::ExecConfig::mem_budget_rows`].
//!
//! The streaming pipeline (PR 1–3) bounds *intermediate* state, but two
//! modifier operators are inherently blocking and hold state proportional
//! to their input: the GROUP BY accumulators of `GroupFold` and the row
//! buffer of the full-sort fallback (ORDER BY without LIMIT). This module
//! lets both degrade gracefully to disk once a memory budget is exceeded:
//!
//! * **Run files** ([`RunWriter`]/[`RunReader`]) — flat buffered files of
//!   fixed-width `Id` rows, each prefixed with its global pipeline
//!   sequence number (the engine's pinned tie-break). Runs live in a
//!   [`SpillSpace`], a unique temp directory removed when the run
//!   finishes (or fails).
//! * **External GROUP BY** (`ExternalGroupFold`) — wraps the in-memory
//!   `GroupFold`. Rows of groups that are already resident keep folding
//!   in place; once the budget trips, rows of *new* groups hash-partition
//!   by group key into spill files. Because a group's rows all land in
//!   one partition file in arrival order, re-folding a partition on drain
//!   replays exactly the serial per-group fold order — so even float
//!   SUM/AVG values are bit-identical at any budget. Partitions re-fold
//!   one at a time (peak memory ≈ one partition's groups) and the groups
//!   interleave back into global first-seen order by their recorded
//!   *birth* sequence.
//! * **External merge sort** ([`ExternalSorter`]) — buffers at most
//!   `budget` rows, sorting and spilling them as a run whenever the
//!   buffer fills, then merges the sorted runs with a [`LoserTree`]
//!   (tournament tree of losers) over per-row precomputed
//!   [`SortAtom`] keys, ties pinned to the
//!   pipeline row order carried in each record. The merged sequence is
//!   bit-identical to the in-memory stable sort.
//!
//! All I/O failures surface as the typed [`ExecError`] — never a panic —
//! and [`crate::exec::ExecStats`] records `spilled_rows`, `spill_runs`
//! and `spill_bytes` for every spilling run.

use std::cmp::Ordering;
use std::fs::{self, File};
use std::hash::{BuildHasher, RandomState};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use parambench_rdf::dict::Id;
use parambench_rdf::store::Dataset;

use crate::error::ExecError;
use crate::exec::{ExecStats, UNBOUND};
use crate::modifiers::{cmp_keyed, GroupFold, RowKeys};
use crate::plan::{AggregatePlan, ModifierPlan};
use crate::results::{table_from_groups, SolVal, SortAtom};

/// Hash partitions the external GROUP BY fold scatters overflow groups
/// into. A fixed constant: partition assignment affects only which file a
/// group's rows land in, never the output (groups re-interleave by birth),
/// so there is nothing to tune for correctness; 8 keeps per-partition
/// refold memory near `groups / 8` with a handful of open files.
pub const SPILL_PARTITIONS: usize = 8;

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> ExecError {
    ExecError { op, path: path.to_path_buf(), message: e.to_string() }
}

// ---------------------------------------------------------------------------
// SpillSpace (per-run temp directory)
// ---------------------------------------------------------------------------

/// A unique directory for one spilling execution's run files, created
/// under the engine's spill base directory and removed (best-effort,
/// recursively) on drop — run files never outlive the query that wrote
/// them, even when it fails mid-way.
#[derive(Debug)]
pub struct SpillSpace {
    dir: PathBuf,
}

impl SpillSpace {
    /// Creates a fresh uniquely-named directory under `base`.
    pub fn create_under(base: &Path) -> Result<SpillSpace, ExecError> {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = base.join(format!(
            "parambench-spill-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, AtomicOrdering::Relaxed)
        ));
        fs::create_dir_all(&dir).map_err(|e| io_err("create spill dir", &dir, e))?;
        Ok(SpillSpace { dir })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// A file path inside the space.
    pub fn file(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for SpillSpace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

// ---------------------------------------------------------------------------
// Run files
// ---------------------------------------------------------------------------

/// Bytes per run record: an 8-byte sequence number plus `width` 4-byte ids.
fn record_bytes(width: usize) -> u64 {
    8 + 4 * width as u64
}

/// Buffered writer of one run file: fixed-width `Id` rows, each prefixed
/// with its global pipeline sequence number.
pub struct RunWriter {
    w: BufWriter<File>,
    path: PathBuf,
    width: usize,
    rows: u64,
}

impl RunWriter {
    /// Creates the run file (truncating any leftover).
    pub fn create(path: PathBuf, width: usize) -> Result<RunWriter, ExecError> {
        let file = File::create(&path).map_err(|e| io_err("create spill run", &path, e))?;
        Ok(RunWriter { w: BufWriter::new(file), path, width, rows: 0 })
    }

    /// Appends one record. Writes go straight into the `BufWriter` — no
    /// per-record allocation on the spill hot path.
    pub fn push(&mut self, seq: u64, row: &[Id]) -> Result<(), ExecError> {
        debug_assert_eq!(row.len(), self.width);
        let path = &self.path;
        self.w.write_all(&seq.to_le_bytes()).map_err(|e| io_err("write spill run", path, e))?;
        for id in row {
            self.w
                .write_all(&id.0.to_le_bytes())
                .map_err(|e| io_err("write spill run", path, e))?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flushes and seals the run.
    pub fn finish(mut self) -> Result<RunFile, ExecError> {
        self.w.flush().map_err(|e| io_err("flush spill run", &self.path, e))?;
        Ok(RunFile { path: self.path, width: self.width, rows: self.rows })
    }
}

/// A sealed run file, ready for reading.
#[derive(Debug, Clone)]
pub struct RunFile {
    path: PathBuf,
    width: usize,
    rows: u64,
}

impl RunFile {
    /// Rows in the run.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Bytes the run occupies on disk.
    pub fn bytes(&self) -> u64 {
        self.rows * record_bytes(self.width)
    }

    /// Opens the run for sequential reading.
    pub fn open(&self) -> Result<RunReader, ExecError> {
        let file = File::open(&self.path).map_err(|e| io_err("open spill run", &self.path, e))?;
        RunReader::new(BufReader::new(file), self.path.clone(), self.width, self.rows)
    }
}

/// Buffered sequential reader of one run file.
pub struct RunReader {
    r: BufReader<File>,
    path: PathBuf,
    width: usize,
    remaining: u64,
}

impl RunReader {
    fn new(
        r: BufReader<File>,
        path: PathBuf,
        width: usize,
        remaining: u64,
    ) -> Result<RunReader, ExecError> {
        Ok(RunReader { r, path, width, remaining })
    }

    /// Reads the next record into `row` (which must match the run width),
    /// returning its sequence number, or `None` once the run is drained.
    pub fn next(&mut self, row: &mut [Id]) -> Result<Option<u64>, ExecError> {
        debug_assert_eq!(row.len(), self.width);
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut buf8 = [0u8; 8];
        self.r.read_exact(&mut buf8).map_err(|e| io_err("read spill run", &self.path, e))?;
        let seq = u64::from_le_bytes(buf8);
        let mut buf4 = [0u8; 4];
        for slot in row.iter_mut() {
            self.r.read_exact(&mut buf4).map_err(|e| io_err("read spill run", &self.path, e))?;
            *slot = Id(u32::from_le_bytes(buf4));
        }
        self.remaining -= 1;
        Ok(Some(seq))
    }
}

// ---------------------------------------------------------------------------
// Loser tree (tournament k-way merge selector)
// ---------------------------------------------------------------------------

/// A tournament tree of losers over `k` contestants. `node[0]` holds the
/// overall winner, `node[1..k]` the losers of the internal matches; leaves
/// are implicit at positions `k..2k-1`. After the winner's input advances,
/// [`LoserTree::replay`] walks only the winner's leaf-to-root path —
/// `O(log k)` comparisons per emitted row, the property that makes k-way
/// merge linear in total comparisons per level.
pub struct LoserTree {
    k: usize,
    node: Vec<usize>,
}

impl LoserTree {
    /// Builds the tree; `cmp(a, b)` compares contestants (smaller wins).
    pub fn new(k: usize, mut cmp: impl FnMut(usize, usize) -> Ordering) -> LoserTree {
        assert!(k > 0, "loser tree over zero runs");
        let mut tree = LoserTree { k, node: vec![0; k] };
        if k > 1 {
            tree.node[0] = tree.build(1, &mut cmp);
        }
        tree
    }

    /// Plays out the subtree rooted at array position `pos`, storing
    /// losers; returns the subtree winner.
    fn build(&mut self, pos: usize, cmp: &mut impl FnMut(usize, usize) -> Ordering) -> usize {
        if pos >= self.k {
            return pos - self.k;
        }
        let a = self.build(2 * pos, cmp);
        let b = self.build(2 * pos + 1, cmp);
        let (winner, loser) = if cmp(a, b) != Ordering::Greater { (a, b) } else { (b, a) };
        self.node[pos] = loser;
        winner
    }

    /// The current overall winner.
    pub fn winner(&self) -> usize {
        self.node[0]
    }

    /// Re-plays the matches on `leaf`'s path to the root after its input
    /// changed (advanced or exhausted).
    pub fn replay(&mut self, leaf: usize, mut cmp: impl FnMut(usize, usize) -> Ordering) {
        if self.k <= 1 {
            return;
        }
        let mut candidate = leaf;
        let mut t = (leaf + self.k) / 2;
        while t > 0 {
            if cmp(self.node[t], candidate) == Ordering::Less {
                std::mem::swap(&mut self.node[t], &mut candidate);
            }
            t /= 2;
        }
        self.node[0] = candidate;
    }
}

// ---------------------------------------------------------------------------
// External merge sort
// ---------------------------------------------------------------------------

/// Out-of-core stable sort of `Id` rows under `(sort keys, arrival order)`
/// — the external variant of the full-sort fallback. Rows are buffered up
/// to the memory budget; each overflow sorts the buffer (keys precomputed
/// once per row, never inside the comparator) and writes it as one sorted
/// run. [`ExternalSorter::finish`] merges the runs with a [`LoserTree`];
/// with no spilled run it degenerates to the plain in-memory sort, so the
/// output sequence is identical either way.
pub struct ExternalSorter<'a> {
    /// Resolved sort keys (columns, expressions, directions).
    keys: RowKeys<'a>,
    descs: Vec<bool>,
    width: usize,
    /// Max buffered rows before a run is spilled.
    buffer_rows: usize,
    rows: Vec<Vec<Id>>,
    seqs: Vec<u64>,
    runs: Vec<RunFile>,
    base: PathBuf,
    space: Option<SpillSpace>,
    next_seq: u64,
}

impl<'a> ExternalSorter<'a> {
    /// A sorter over `width`-column rows under `keys`, spilling runs into
    /// a fresh [`SpillSpace`] under `base` once more than `budget` rows
    /// are buffered.
    pub(crate) fn new(
        keys: RowKeys<'a>,
        width: usize,
        budget: usize,
        base: PathBuf,
    ) -> ExternalSorter<'a> {
        let descs = keys.descs();
        ExternalSorter {
            keys,
            descs,
            width,
            buffer_rows: budget.max(1),
            rows: Vec::new(),
            seqs: Vec::new(),
            runs: Vec::new(),
            base,
            space: None,
            next_seq: 0,
        }
    }

    /// Buffers one row (registered with `stats`), spilling a sorted run
    /// when the buffer reaches the budget.
    pub fn push_row(&mut self, row: &[Id], stats: &mut ExecStats) -> Result<(), ExecError> {
        debug_assert_eq!(row.len(), self.width);
        self.rows.push(row.to_vec());
        self.seqs.push(self.next_seq);
        self.next_seq += 1;
        stats.grow(1);
        stats.sorted_rows += 1;
        if self.rows.len() >= self.buffer_rows {
            self.spill(stats)?;
        }
        Ok(())
    }

    /// Buffer indices in final sorted order: stable under
    /// `(keys, arrival seq)` with one key resolution per row.
    fn sorted_order(&self) -> Vec<usize> {
        let keyed: Vec<Vec<SortAtom<'_>>> =
            self.rows.iter().map(|row| self.keys.atoms(row)).collect();
        let mut idx: Vec<usize> = (0..self.rows.len()).collect();
        idx.sort_unstable_by(|&a, &b| {
            cmp_keyed(&keyed[a], self.seqs[a], &keyed[b], self.seqs[b], &self.descs)
        });
        idx
    }

    fn spill(&mut self, stats: &mut ExecStats) -> Result<(), ExecError> {
        if self.rows.is_empty() {
            return Ok(());
        }
        if self.space.is_none() {
            self.space = Some(SpillSpace::create_under(&self.base)?);
        }
        let space = self.space.as_ref().expect("created above");
        let order = self.sorted_order();
        let mut writer =
            RunWriter::create(space.file(&format!("sort-{}.run", self.runs.len())), self.width)?;
        for &i in &order {
            writer.push(self.seqs[i], &self.rows[i])?;
        }
        let run = writer.finish()?;
        stats.spilled_rows += run.rows();
        stats.spill_runs += 1;
        stats.spill_bytes += run.bytes();
        stats.shrink(self.rows.len());
        self.rows.clear();
        self.seqs.clear();
        self.runs.push(run);
        Ok(())
    }

    /// Seals the sorter into the final sorted row sequence: a plain
    /// in-memory sort when nothing spilled, a loser-tree merge over the
    /// sorted runs otherwise.
    pub fn finish(mut self, stats: &mut ExecStats) -> Result<SortedRows<'a>, ExecError> {
        if self.runs.is_empty() {
            let order = self.sorted_order();
            let mut taken: Vec<Option<Vec<Id>>> = self.rows.into_iter().map(Some).collect();
            let sorted: Vec<Vec<Id>> =
                order.into_iter().map(|i| taken[i].take().expect("each index once")).collect();
            // The sorted rows leave tracked residency here: the caller
            // decodes them straight into the (untracked) result table.
            stats.shrink(sorted.len());
            return Ok(SortedRows::Mem(sorted.into_iter()));
        }
        self.spill(stats)?;
        let mut cursors: Vec<Option<MergeCursor<'a>>> = Vec::with_capacity(self.runs.len());
        for run in &self.runs {
            let mut reader = run.open()?;
            let mut row = vec![UNBOUND; self.width];
            let cursor = match reader.next(&mut row)? {
                Some(seq) => Some(MergeCursor { key: self.keys.atoms(&row), seq, row, reader }),
                None => None,
            };
            cursors.push(cursor);
        }
        let descs = self.descs.clone();
        let tree = LoserTree::new(cursors.len(), |a, b| cursor_cmp(&cursors, &descs, a, b));
        Ok(SortedRows::Merge(Box::new(KWayMerge {
            keys: self.keys,
            descs,
            width: self.width,
            cursors,
            tree,
            _space: self.space,
        })))
    }
}

/// The head of one sorted run during the k-way merge.
struct MergeCursor<'a> {
    key: Vec<SortAtom<'a>>,
    seq: u64,
    row: Vec<Id>,
    reader: RunReader,
}

fn cursor_cmp(cursors: &[Option<MergeCursor<'_>>], descs: &[bool], a: usize, b: usize) -> Ordering {
    match (&cursors[a], &cursors[b]) {
        (Some(x), Some(y)) => cmp_keyed(&x.key, x.seq, &y.key, y.seq, descs),
        // Exhausted runs rank last, so live cursors always win matches.
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => Ordering::Equal,
    }
}

/// Loser-tree merge over sorted spill runs, emitting rows in global
/// `(keys, arrival seq)` order. Holds one row per run (the merge
/// frontier) plus the run files' [`SpillSpace`], which is removed when
/// the merge is dropped.
pub struct KWayMerge<'a> {
    keys: RowKeys<'a>,
    descs: Vec<bool>,
    width: usize,
    cursors: Vec<Option<MergeCursor<'a>>>,
    tree: LoserTree,
    _space: Option<SpillSpace>,
}

impl KWayMerge<'_> {
    /// The next merged row, or `None` when every run is drained.
    pub fn next_row(&mut self) -> Result<Option<Vec<Id>>, ExecError> {
        let w = self.tree.winner();
        let out = {
            let Some(cursor) = self.cursors[w].as_mut() else {
                return Ok(None);
            };
            let mut next = vec![UNBOUND; self.width];
            match cursor.reader.next(&mut next)? {
                Some(seq) => {
                    let out = std::mem::replace(&mut cursor.row, next);
                    cursor.key = self.keys.atoms(&cursor.row);
                    cursor.seq = seq;
                    out
                }
                None => {
                    let exhausted = self.cursors[w].take().expect("checked above");
                    exhausted.row
                }
            }
        };
        let (cursors, descs) = (&self.cursors, &self.descs);
        self.tree.replay(w, |a, b| cursor_cmp(cursors, descs, a, b));
        Ok(Some(out))
    }
}

/// The output of [`ExternalSorter::finish`]: the fully sorted row
/// sequence, pulled one row at a time.
pub enum SortedRows<'a> {
    /// Nothing spilled: the in-memory sorted buffer.
    Mem(std::vec::IntoIter<Vec<Id>>),
    /// Spilled: a loser-tree merge over the sorted runs.
    Merge(Box<KWayMerge<'a>>),
}

impl SortedRows<'_> {
    /// The next row in final sorted order.
    pub fn next_row(&mut self) -> Result<Option<Vec<Id>>, ExecError> {
        match self {
            SortedRows::Mem(iter) => Ok(iter.next()),
            SortedRows::Merge(merge) => merge.next_row(),
        }
    }
}

// ---------------------------------------------------------------------------
// External GROUP BY fold
// ---------------------------------------------------------------------------

/// Out-of-core GROUP BY/aggregation: the budgeted wrapper around the
/// streaming `GroupFold`.
///
/// Absorption keeps the serial fold's exact per-group arithmetic: a row
/// whose group already holds an accumulator folds straight into it; once
/// the budget has tripped, rows of *new* groups are written to one of
/// [`SPILL_PARTITIONS`] files chosen by a hash of the group key. A
/// group's rows therefore either all fold in memory or all land — in
/// arrival order — in exactly one partition file, and re-folding that
/// file on drain replays the serial fold order (bit-identical results,
/// floats included, at any budget). `eager` mode (chosen by the lowering
/// when the estimated group count already exceeds the budget) skips the
/// in-memory phase and spills from the first row.
///
/// Drain re-folds partitions one at a time (peak ≈ one partition's
/// groups, not the total) and merges the partition-local folds with the
/// in-memory master by group *birth* — the global sequence number of each
/// group's first row — restoring exactly the serial first-seen group
/// order that pins the pre-sort output order.
pub(crate) struct ExternalGroupFold<'a> {
    inner: GroupFold<'a>,
    ds: &'a Dataset,
    schema: Vec<usize>,
    budget: usize,
    spilling: bool,
    base: PathBuf,
    space: Option<SpillSpace>,
    writers: Vec<Option<RunWriter>>,
    hasher: RandomState,
    width: usize,
    next_seq: u64,
}

impl<'a> ExternalGroupFold<'a> {
    /// A budgeted fold over rows of `schema` (the pipeline's projected
    /// input columns). `eager` starts in spill mode immediately.
    pub fn new(
        agg: &AggregatePlan,
        schema: &[usize],
        ds: &'a Dataset,
        budget: usize,
        eager: bool,
        base: PathBuf,
    ) -> Self {
        ExternalGroupFold {
            inner: GroupFold::new(agg, schema, ds),
            ds,
            schema: schema.to_vec(),
            budget,
            spilling: eager,
            base,
            space: None,
            writers: (0..SPILL_PARTITIONS).map(|_| None).collect(),
            hasher: RandomState::new(),
            width: schema.len(),
            next_seq: 0,
        }
    }

    /// Folds one row: in memory when its group is resident (or the budget
    /// has not tripped yet), to its group's spill partition otherwise.
    pub fn add_row(&mut self, row: &[Id], stats: &mut ExecStats) -> Result<(), ExecError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.spilling && !self.inner.has_group_of(row) {
            return self.spill_row(row, seq, stats);
        }
        self.inner.add_row_at(row, seq, stats);
        if !self.spilling && self.inner.resident() > self.budget {
            self.spilling = true;
        }
        Ok(())
    }

    fn spill_row(&mut self, row: &[Id], seq: u64, stats: &mut ExecStats) -> Result<(), ExecError> {
        if self.space.is_none() {
            self.space = Some(SpillSpace::create_under(&self.base)?);
        }
        let space = self.space.as_ref().expect("created above");
        let key = self.inner.key_of(row);
        let p = self.hasher.hash_one(&key) as usize % SPILL_PARTITIONS;
        if self.writers[p].is_none() {
            let path = space.file(&format!("group-{p}.run"));
            self.writers[p] = Some(RunWriter::create(path, self.width)?);
        }
        self.writers[p].as_mut().expect("created above").push(seq, row)?;
        stats.spilled_rows += 1;
        Ok(())
    }

    /// Drains the fold into the solution-table rows of `m`, in the serial
    /// fold's group order. Releases all tracked fold residency and removes
    /// the spill files.
    pub fn finish(
        self,
        m: &ModifierPlan,
        agg: &AggregatePlan,
        stats: &mut ExecStats,
    ) -> Result<Vec<Vec<SolVal>>, ExecError> {
        let ExternalGroupFold { inner, ds, schema, mut writers, space, .. } = self;

        let mut runs: Vec<RunFile> = Vec::new();
        for writer in writers.iter_mut() {
            if let Some(writer) = writer.take() {
                let run = writer.finish()?;
                stats.spill_runs += 1;
                stats.spill_bytes += run.bytes();
                runs.push(run);
            }
        }

        if runs.is_empty() {
            // Nothing spilled: identical to the plain in-memory fold
            // (including the implicit-group rule for ungrouped queries).
            let resident = inner.resident();
            let (keys, states) = inner.finish();
            let rows = table_from_groups(keys, states, m, agg);
            stats.shrink(resident);
            return Ok(rows);
        }

        // Master groups first (they were all born before any spilled
        // group), then each partition re-folded in file order — which is
        // arrival order, so per-group arithmetic replays exactly.
        let mut out: Vec<(u64, Vec<SolVal>)> = Vec::new();
        let master_resident = inner.resident();
        let (keys, states, births) = inner.into_parts();
        let rows = table_from_groups(keys, states, m, agg);
        out.extend(births.into_iter().zip(rows));
        stats.shrink(master_resident);

        for run in &runs {
            let mut reader = run.open()?;
            let mut fold = GroupFold::new(agg, &schema, ds);
            let mut row = vec![UNBOUND; schema.len()];
            while let Some(seq) = reader.next(&mut row)? {
                fold.add_row_at(&row, seq, stats);
            }
            let resident = fold.resident();
            let (keys, states, births) = fold.into_parts();
            let rows = table_from_groups(keys, states, m, agg);
            out.extend(births.into_iter().zip(rows));
            stats.shrink(resident);
        }

        // Eager mode over empty input never created a group anywhere: the
        // ungrouped implicit-group rule still applies.
        if agg.group_slots.is_empty() && out.is_empty() {
            let (keys, states) = GroupFold::new(agg, &schema, ds).finish();
            let rows = table_from_groups(keys, states, m, agg);
            out.extend(std::iter::repeat(0u64).zip(rows));
        }

        // Births are unique (each row creates at most one group; master
        // and partition groups are disjoint), so this restores exactly the
        // global first-seen order.
        out.sort_unstable_by_key(|&(birth, _)| birth);
        drop(space); // remove the run files
        Ok(out.into_iter().map(|(_, row)| row).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AggFunc;
    use crate::plan::AggSpec;
    use parambench_rdf::store::StoreBuilder;
    use parambench_rdf::term::Term;

    fn dataset(n: usize) -> Dataset {
        let mut b = StoreBuilder::new();
        for i in 0..n {
            let s = Term::iri(format!("s/{i}"));
            b.insert(s.clone(), Term::iri("p/val"), Term::integer((i % 7) as i64));
            b.insert(s, Term::iri("p/grp"), Term::iri(format!("g/{}", i % 23)));
        }
        b.freeze()
    }

    #[test]
    fn run_files_round_trip_rows_and_seqs() {
        let space = SpillSpace::create_under(&std::env::temp_dir()).unwrap();
        let path = space.file("t.run");
        let mut w = RunWriter::create(path, 3).unwrap();
        for i in 0..100u32 {
            w.push(1000 + i as u64, &[Id(i), Id(i * 2), Id(u32::MAX)]).unwrap();
        }
        let run = w.finish().unwrap();
        assert_eq!(run.rows(), 100);
        assert_eq!(run.bytes(), 100 * (8 + 12));
        let mut r = run.open().unwrap();
        let mut row = vec![Id(0); 3];
        for i in 0..100u32 {
            let seq = r.next(&mut row).unwrap().expect("row present");
            assert_eq!(seq, 1000 + i as u64);
            assert_eq!(row, vec![Id(i), Id(i * 2), Id(u32::MAX)]);
        }
        assert!(r.next(&mut row).unwrap().is_none());
    }

    #[test]
    fn spill_space_removes_itself() {
        let base = std::env::temp_dir();
        let dir;
        {
            let space = SpillSpace::create_under(&base).unwrap();
            dir = space.path().to_path_buf();
            let mut w = RunWriter::create(space.file("x.run"), 1).unwrap();
            w.push(0, &[Id(1)]).unwrap();
            w.finish().unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spill dir must vanish on drop");
    }

    #[test]
    fn loser_tree_merges_in_order() {
        // 5 "runs" of pre-sorted numbers; merge must emit globally sorted.
        let runs: Vec<Vec<u32>> =
            vec![vec![1, 4, 7, 10], vec![2, 2, 2], vec![], vec![0, 9, 9, 11, 30], vec![5]];
        let mut heads: Vec<Option<u32>> = runs.iter().map(|r| r.first().copied()).collect();
        let mut pos = vec![0usize; runs.len()];
        let cmp = |heads: &Vec<Option<u32>>, a: usize, b: usize| match (&heads[a], &heads[b]) {
            (Some(x), Some(y)) => x.cmp(y).then(a.cmp(&b)),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => Ordering::Equal,
        };
        let mut tree = LoserTree::new(runs.len(), |a, b| cmp(&heads, a, b));
        let mut got = Vec::new();
        loop {
            let w = tree.winner();
            let Some(v) = heads[w] else { break };
            got.push(v);
            pos[w] += 1;
            heads[w] = runs[w].get(pos[w]).copied();
            tree.replay(w, |a, b| cmp(&heads, a, b));
        }
        let mut want: Vec<u32> = runs.concat();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn external_sorter_matches_in_memory_sort_at_any_budget() {
        let ds = dataset(500);
        // Rows (val, grp-ish): sort ascending by column 0 with heavy ties,
        // tie-break = arrival order.
        let rows: Vec<Vec<Id>> = (0..500u32).map(|i| vec![Id(i % 7 + 1), Id(i)]).collect();
        let reference: Vec<Vec<Id>> = {
            let mut idx: Vec<usize> = (0..rows.len()).collect();
            let keyed: Vec<SortAtom<'_>> =
                rows.iter().map(|r| SortAtom::of_id(r[0], &ds)).collect();
            idx.sort_by(|&a, &b| crate::results::cmp_atoms(&keyed[a], &keyed[b]).then(a.cmp(&b)));
            idx.into_iter().map(|i| rows[i].clone()).collect()
        };
        for budget in [1usize, 3, 64, 100_000] {
            let mut stats = ExecStats::default();
            let mut sorter = ExternalSorter::new(
                RowKeys::cols(&ds, vec![(0, false)]),
                2,
                budget,
                std::env::temp_dir(),
            );
            for row in &rows {
                sorter.push_row(row, &mut stats).unwrap();
            }
            let mut merged = sorter.finish(&mut stats).unwrap();
            let mut got = Vec::new();
            while let Some(row) = merged.next_row().unwrap() {
                got.push(row);
            }
            assert_eq!(got, reference, "budget {budget}");
            if budget < rows.len() {
                assert!(stats.spilled_rows > 0, "budget {budget} must spill");
                assert!(stats.spill_runs >= 2, "budget {budget} must write several runs");
                // Budgeted buffer: the peak stays near the budget, far
                // below the 500 resident rows of an in-memory sort.
                assert!(
                    stats.peak_tuples <= budget as u64 + 1,
                    "budget {budget}: peak {}",
                    stats.peak_tuples
                );
            } else {
                assert_eq!(stats.spilled_rows, 0);
            }
        }
    }

    fn fold_all(
        ds: &Dataset,
        agg: &AggregatePlan,
        schema: &[usize],
        rows: &[Vec<Id>],
        budget: usize,
        eager: bool,
        m: &ModifierPlan,
    ) -> (Vec<Vec<SolVal>>, ExecStats) {
        let mut stats = ExecStats::default();
        let mut fold = ExternalGroupFold::new(agg, schema, ds, budget, eager, std::env::temp_dir());
        for row in rows {
            fold.add_row(row, &mut stats).unwrap();
        }
        (fold.finish(m, agg, &mut stats).unwrap(), stats)
    }

    #[test]
    fn external_fold_matches_in_memory_fold_at_any_budget() {
        let ds = dataset(700);
        let agg = AggregatePlan {
            group_slots: vec![1],
            specs: vec![
                AggSpec { func: AggFunc::Count, slot: Some(0), distinct: false },
                AggSpec { func: AggFunc::Sum, slot: Some(0), distinct: false },
                AggSpec { func: AggFunc::Count, slot: Some(0), distinct: true },
            ],
        };
        // A minimal ModifierPlan describing the table: group key + aggs.
        let m = ModifierPlan {
            distinct: false,
            offset: 0,
            limit: None,
            table: vec![
                crate::plan::TableCol {
                    name: "g".into(),
                    source: crate::plan::TableColSource::Slot(1),
                },
                crate::plan::TableCol {
                    name: "a0".into(),
                    source: crate::plan::TableColSource::Agg(0),
                },
                crate::plan::TableCol {
                    name: "a1".into(),
                    source: crate::plan::TableColSource::Agg(1),
                },
                crate::plan::TableCol {
                    name: "a2".into(),
                    source: crate::plan::TableColSource::Agg(2),
                },
            ],
            out_width: 4,
            order_by: vec![],
            order_exprs: vec![],
            aggregate: Some(agg.clone()),
        };
        let schema = [0usize, 1usize];
        // 23 groups, values 0..7: enough rows that tiny budgets spill.
        let rows: Vec<Vec<Id>> = (0..700u32).map(|i| vec![Id(i % 7 + 1), Id(i % 23)]).collect();

        let (reference, ref_stats) = fold_all(&ds, &agg, &schema, &rows, usize::MAX, false, &m);
        assert_eq!(ref_stats.spilled_rows, 0);
        for (budget, eager) in [(0, false), (1, false), (5, false), (5, true), (0, true)] {
            let (got, stats) = fold_all(&ds, &agg, &schema, &rows, budget, eager, &m);
            assert_eq!(got, reference, "budget {budget} eager {eager} diverged");
            assert!(stats.spilled_rows > 0, "budget {budget} eager {eager} must spill");
            assert!(
                stats.peak_tuples < ref_stats.peak_tuples,
                "budget {budget} eager {eager}: spilled peak {} not below in-memory {}",
                stats.peak_tuples,
                ref_stats.peak_tuples
            );
        }
    }
}
