//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) API subset the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256**), uniform
//! [`Rng::gen_range`] over integer and float ranges, [`seq::SliceRandom`]
//! shuffling and [`seq::index::sample`]. Distribution quality is that of
//! xoshiro256** — more than adequate for the statistical tests in this
//! workspace — but streams are NOT value-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator trait (subset of `rand::RngCore` + `Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of type `T` (see [`Standard`] impls).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types that [`Rng::gen`] can produce (subset of `rand::distributions::Standard`).
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Rejection-free (Lemire) bounded integer in `[0, bound)`.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening-multiply method; the tiny modulo bias (< 2^-64 * bound) is
    // irrelevant for benchmark workloads.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u: f64 = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the upstream
    /// convention for seeding xoshiro generators).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro must not start at all-zero
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling and choosing (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                Some(&self[i])
            }
        }
    }

    pub mod index {
        use super::super::Rng;

        /// Result of [`sample`]: distinct indices in random order.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly.
        /// Panics if `amount > length` (upstream behaviour).
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "sample amount exceeds population");
            // Partial Fisher-Yates over an explicit index vector: fine at
            // the domain sizes this workspace samples from.
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + ((rng.next_u64() as u128 * (length - i) as u128) >> 64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::seq::index;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_range_and_varied() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn index_sample_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let picked = index::sample(&mut rng, 100, 30).into_vec();
        assert_eq!(picked.len(), 30);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 30);
        assert!(picked.iter().all(|&i| i < 100));
    }
}
