//! Dictionary encoding of RDF terms.
//!
//! Every distinct [`Term`] in a dataset is mapped to a dense 32-bit [`Id`].
//! The engine's indexes, operators and statistics all work on ids; the
//! dictionary is only consulted at the edges (loading data, binding query
//! constants, producing human-readable results).
//!
//! Besides the bijection itself, the dictionary caches the numeric
//! interpretation of each literal (see [`Term::numeric_value`]) so that
//! filters and ORDER BY never re-parse lexical forms on the hot path.
//!
//! Invariant: `Id(u32::MAX)` is the engine-wide UNBOUND sentinel (an
//! OPTIONAL mismatch, not a term). The dictionary refuses to allocate it,
//! so no real term can ever collide with an unbound binding.

use std::collections::HashMap;

use crate::term::Term;

/// A dense identifier for an interned term. `Id(0)` is the first term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(pub u32);

impl Id {
    /// The id as an index into dictionary-parallel arrays.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Id {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional mapping between [`Term`]s and [`Id`]s.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    /// Cached `numeric_value()` per id (NaN = none); parallel to `terms`.
    numeric: Vec<f64>,
    by_term: HashMap<Term, Id>,
    /// Set by [`Dictionary::reorder_by_value`] when two *distinct* ids
    /// carry the same numeric value (e.g. `"1"^^int` vs `"1.0"^^double`).
    /// When false, ascending id order is not merely consistent with but
    /// *equivalent to* the ORDER BY value order — the stronger property
    /// multi-key sort elimination needs (a value tie would let a secondary
    /// sort key reorder rows that id order pins by lexical form).
    value_ties: bool,
}

impl Dictionary {
    /// Maximum number of terms a dictionary can hold.
    ///
    /// `Id(u32::MAX)` is reserved: the query executor uses it as the
    /// `UNBOUND` sentinel (OPTIONAL mismatches), so the dictionary must
    /// never hand it out as a real term id. Allocating ids `0..u32::MAX`
    /// (exclusive) keeps the sentinel unambiguous.
    pub const MAX_TERMS: usize = u32::MAX as usize;

    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Panics when a dictionary of `len` terms cannot accept another one.
    /// Factored out of [`Dictionary::encode`] so the guard is unit-testable
    /// without interning 2^32 terms.
    #[inline]
    fn check_capacity(len: usize) {
        assert!(
            len < Self::MAX_TERMS,
            "dictionary overflow: {} terms would allocate Id(u32::MAX), \
             which is reserved as the UNBOUND sentinel",
            len + 1
        );
    }

    /// Interns `term`, returning its id. Re-interning is idempotent.
    ///
    /// # Panics
    /// When the dictionary already holds [`Dictionary::MAX_TERMS`] terms:
    /// the next id would be `Id(u32::MAX)`, the executor's `UNBOUND`
    /// sentinel.
    pub fn encode(&mut self, term: Term) -> Id {
        if let Some(&id) = self.by_term.get(&term) {
            return id;
        }
        Self::check_capacity(self.terms.len());
        let id = Id(self.terms.len() as u32);
        self.numeric.push(term.numeric_value().unwrap_or(f64::NAN));
        self.by_term.insert(term.clone(), id);
        self.terms.push(term);
        id
    }

    /// Looks up the id of a term without interning it.
    pub fn lookup(&self, term: &Term) -> Option<Id> {
        self.by_term.get(term).copied()
    }

    /// The term for `id`. Panics if the id is out of range (ids are only
    /// produced by this dictionary, so that is a logic error).
    pub fn decode(&self, id: Id) -> &Term {
        &self.terms[id.index()]
    }

    /// The cached numeric value of `id`'s term, if it has one.
    #[inline]
    pub fn numeric(&self, id: Id) -> Option<f64> {
        let v = self.numeric[id.index()];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Iterates over all `(id, term)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (Id(i as u32), t))
    }

    /// Compares two ids by the RDF "benchmark order": numeric values first
    /// (by value), then lexical term order. Used by ORDER BY.
    pub fn compare(&self, a: Id, b: Id) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.numeric(a), self.numeric(b)) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => self.decode(a).cmp(self.decode(b)),
        }
    }

    /// Reassigns every id so that ascending [`Id`] order coincides with the
    /// benchmark value order of [`Dictionary::compare`] (numeric values
    /// first by value, then lexical term order; numeric ties broken by term
    /// order so the permutation is total and deterministic). Returns the
    /// old-id → new-id mapping so callers can remap data encoded against
    /// the pre-reorder ids.
    ///
    /// This is the *order-preserving dictionary* step of
    /// `StoreBuilder::freeze`: once ids are value-ordered, the sorted
    /// permutation indexes deliver rows in exactly the order `ORDER BY`
    /// asks for, which is what lets the executor elide sorts behind an
    /// order-compatible index scan.
    pub fn reorder_by_value(&mut self) -> Vec<u32> {
        use std::cmp::Ordering;
        let n = self.terms.len();
        // new-id → old-id, sorted by (value order, term order).
        let mut by_value: Vec<u32> = (0..n as u32).collect();
        by_value.sort_by(|&a, &b| {
            self.compare(Id(a), Id(b)).then_with(|| {
                // Equal numeric values with different lexical forms (e.g.
                // "1"^^int vs "1.0"^^double): pin by term order.
                match self.decode(Id(a)).cmp(self.decode(Id(b))) {
                    Ordering::Equal => a.cmp(&b),
                    other => other,
                }
            })
        });
        let mut old_to_new = vec![0u32; n];
        for (new, &old) in by_value.iter().enumerate() {
            old_to_new[old as usize] = new as u32;
        }
        let mut terms = Vec::with_capacity(n);
        let mut numeric = Vec::with_capacity(n);
        for &old in &by_value {
            terms.push(self.terms[old as usize].clone());
            numeric.push(self.numeric[old as usize]);
        }
        self.terms = terms;
        self.numeric = numeric;
        for id in self.by_term.values_mut() {
            *id = Id(old_to_new[id.index()]);
        }
        // Value ties sit adjacent after the sort: one linear scan.
        self.value_ties =
            self.numeric.windows(2).any(|w| !w[0].is_nan() && !w[1].is_nan() && w[0] == w[1]);
        old_to_new
    }

    /// True when two distinct ids carry the same numeric value (see the
    /// `value_ties` field): id order then still *refines* the ORDER BY
    /// value order, but is not equivalent to it under secondary sort keys.
    pub fn has_value_ties(&self) -> bool {
        self.value_ties
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    #[test]
    fn encode_is_idempotent() {
        let mut dict = Dictionary::new();
        let a = dict.encode(Term::iri("http://e/a"));
        let b = dict.encode(Term::iri("http://e/b"));
        let a2 = dict.encode(Term::iri("http://e/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn decode_round_trip() {
        let mut dict = Dictionary::new();
        let terms = vec![
            Term::iri("http://e/a"),
            Term::literal("hello"),
            Term::integer(42),
            Term::Blank("b1".into()),
            Term::Literal(Literal::lang("hola", "es")),
        ];
        let ids: Vec<Id> = terms.iter().cloned().map(|t| dict.encode(t)).collect();
        for (id, term) in ids.iter().zip(&terms) {
            assert_eq!(dict.decode(*id), term);
            assert_eq!(dict.lookup(term), Some(*id));
        }
    }

    #[test]
    fn numeric_cache() {
        let mut dict = Dictionary::new();
        let i = dict.encode(Term::integer(7));
        let d = dict.encode(Term::double(-1.5));
        let s = dict.encode(Term::literal("7"));
        assert_eq!(dict.numeric(i), Some(7.0));
        assert_eq!(dict.numeric(d), Some(-1.5));
        assert_eq!(dict.numeric(s), None);
    }

    #[test]
    fn compare_orders_numerics_before_lexicals() {
        let mut dict = Dictionary::new();
        let two = dict.encode(Term::integer(2));
        let ten = dict.encode(Term::integer(10));
        let txt = dict.encode(Term::literal("аbc"));
        assert_eq!(dict.compare(two, ten), std::cmp::Ordering::Less);
        assert_eq!(dict.compare(ten, two), std::cmp::Ordering::Greater);
        assert_eq!(dict.compare(two, txt), std::cmp::Ordering::Less);
        assert_eq!(dict.compare(two, two), std::cmp::Ordering::Equal);
    }

    #[test]
    fn reorder_by_value_makes_id_order_the_value_order() {
        let mut dict = Dictionary::new();
        // Intern in deliberately scrambled value order.
        let terms = vec![
            Term::iri("z/last"),
            Term::integer(10),
            Term::literal("abc"),
            Term::integer(2),
            Term::double(2.5),
            Term::iri("a/first"),
        ];
        let olds: Vec<Id> = terms.iter().cloned().map(|t| dict.encode(t)).collect();
        let map = dict.reorder_by_value();
        // Round trip survives: every term still decodes and looks up.
        for (old, term) in olds.iter().zip(&terms) {
            let new = Id(map[old.index()]);
            assert_eq!(dict.decode(new), term);
            assert_eq!(dict.lookup(term), Some(new));
        }
        // Ascending ids now follow compare(): numerics by value, then terms.
        for a in 0..dict.len() as u32 {
            for b in (a + 1)..dict.len() as u32 {
                assert_ne!(
                    dict.compare(Id(a), Id(b)),
                    std::cmp::Ordering::Greater,
                    "Id({a}) vs Id({b}) out of value order"
                );
            }
        }
        assert_eq!(dict.numeric(Id(0)), Some(2.0));
        assert_eq!(dict.numeric(Id(1)), Some(2.5));
        assert_eq!(dict.numeric(Id(2)), Some(10.0));
    }

    #[test]
    fn lookup_missing_is_none() {
        let dict = Dictionary::new();
        assert_eq!(dict.lookup(&Term::iri("http://nope")), None);
    }

    /// `Id(u32::MAX)` is the executor's `UNBOUND` sentinel; the dictionary
    /// must refuse to allocate it. The guard is exercised directly because
    /// interning 2^32 real terms is infeasible in a unit test.
    #[test]
    fn capacity_guard_reserves_unbound_sentinel() {
        // One below the cap: fine (the id handed out would be MAX_TERMS-1).
        Dictionary::check_capacity(Dictionary::MAX_TERMS - 1);
        // At the cap the next id would be Id(u32::MAX): must panic.
        let overflow = std::panic::catch_unwind(|| {
            Dictionary::check_capacity(Dictionary::MAX_TERMS);
        });
        assert!(overflow.is_err(), "allocating Id(u32::MAX) must be refused");
        assert_eq!(Dictionary::MAX_TERMS, u32::MAX as usize);
    }
}
