//! Ablation: estimated vs measured cost profiling.
//!
//! The paper's formal problem clusters on the *estimated* cost of the
//! `Cout`-optimal plan (one optimizer probe per candidate — cheap). LDBC's
//! production parameter curation instead precomputes *measured*
//! intermediate-result counts (one execution per candidate — expensive).
//! This experiment quantifies the gap on both a template whose cost is easy
//! to estimate (BSBM Q4: exact type counts drive everything) and one whose
//! cost is hard (LDBC Q2: posts-per-friend varies around the independence
//! assumption).

use std::time::Instant;

use parambench_bench::{bsbm, header, row, snb};
use parambench_core::{
    curate, run_workload, ClusterConfig, CostSource, CurationConfig, Metric, ParameterDomain,
    ProfileConfig, RunConfig,
};
use parambench_datagen::{Bsbm, Snb};
use parambench_sparql::{Engine, QueryTemplate};
use parambench_stats::Summary;

fn evaluate(
    engine: &Engine<'_>,
    template: &QueryTemplate,
    domain: &ParameterDomain,
    cost_source: CostSource,
) -> (usize, f64, f64) {
    let cfg = CurationConfig {
        profile: ProfileConfig { max_bindings: 800, cost_source, ..Default::default() },
        cluster: ClusterConfig { epsilon: 1.0, min_class_size: 5 },
    };
    let t0 = Instant::now();
    let workload = curate(engine, template, domain, &cfg).expect("curation");
    let curation_ms = t0.elapsed().as_secs_f64() * 1e3;
    // Quality: mean within-class CV of *measured* Cout over the 3 biggest
    // classes (the honest check, independent of the profiling source).
    let mut cvs = Vec::new();
    for class in workload.classes().iter().take(3) {
        let bindings = workload.sample_class(class.id, 30, 3).expect("sample");
        let ms = run_workload(engine, template, &bindings, &RunConfig::default()).expect("run");
        if let Some(s) = Summary::new(&Metric::Cout.series(&ms)) {
            cvs.push(s.coeff_of_variation());
        }
    }
    let mean_cv = cvs.iter().sum::<f64>() / cvs.len().max(1) as f64;
    (workload.classes().len(), mean_cv, curation_ms)
}

fn compare(engine: &Engine<'_>, template: &QueryTemplate, domain: &ParameterDomain) {
    for (label, source) in [
        ("estimated Cout (paper §III)", CostSource::EstimatedCout),
        ("measured Cout (LDBC-style)", CostSource::MeasuredCout),
    ] {
        let (classes, cv, ms) = evaluate(engine, template, domain, source);
        row(
            &format!("  {label}"),
            format!("{classes:>3} classes | within-class CV {cv:.3} | curation {ms:.0} ms"),
        );
    }
}

fn main() {
    let catalog = bsbm();
    {
        let engine = Engine::new(&catalog.dataset);
        header("BSBM-BI Q4 — estimator-friendly template");
        let domain = ParameterDomain::single("type", catalog.type_iris());
        compare(&engine, &Bsbm::q4_feature_price_by_type(), &domain);
    }
    let social = snb();
    {
        let engine = Engine::new(&social.dataset);
        header("LDBC Q2 — estimator-hostile template");
        let domain = ParameterDomain::single("person", social.person_iris());
        compare(&engine, &Snb::q2_friend_posts(), &domain);
    }
    println!(
        "\nreading: measured profiling costs more curation time but should cut\n\
         the within-class CV sharply on the estimator-hostile template."
    );
}
