//! RDF terms: IRIs, literals and blank nodes.
//!
//! Terms are the *lexical* layer of the store. The query engine never touches
//! them on the hot path: every term is interned into a dense [`crate::dict::Id`]
//! by the [`crate::dict::Dictionary`], and all indexes and operators work on
//! ids. Terms carry enough typed information (numeric value, date value) for
//! filter evaluation and ordering, which the dictionary caches at intern time.

use std::fmt;

/// Well-known XSD datatype IRIs used by the typed-literal fast paths.
pub mod xsd {
    /// `xsd:integer`.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:decimal`.
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    /// `xsd:double`.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// `xsd:dateTime`.
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    /// `xsd:date`.
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    /// `xsd:string`.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:boolean`.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
}

/// The datatype tag of a literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LiteralKind {
    /// A plain literal without language tag or datatype (`"foo"`).
    Plain,
    /// A language-tagged literal (`"foo"@en`).
    Lang(String),
    /// A typed literal (`"42"^^xsd:integer`); the payload is the datatype IRI.
    Typed(String),
}

/// An RDF literal: a lexical form plus a [`LiteralKind`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form (the text between the quotes).
    pub lexical: String,
    /// Language tag / datatype classification.
    pub kind: LiteralKind,
}

impl Literal {
    /// A plain (untyped, untagged) string literal.
    pub fn plain(lexical: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), kind: LiteralKind::Plain }
    }

    /// A language-tagged literal.
    pub fn lang(lexical: impl Into<String>, lang: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), kind: LiteralKind::Lang(lang.into()) }
    }

    /// A typed literal with an explicit datatype IRI.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), kind: LiteralKind::Typed(datatype.into()) }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), xsd::INTEGER)
    }

    /// An `xsd:double` literal.
    pub fn double(value: f64) -> Self {
        Literal::typed(format!("{value}"), xsd::DOUBLE)
    }

    /// An `xsd:dateTime` literal from epoch milliseconds. The lexical form is a
    /// fixed-width sortable timestamp so string order equals temporal order.
    pub fn date_time_millis(millis: i64) -> Self {
        Literal::typed(format_epoch_millis(millis), xsd::DATE_TIME)
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal::typed(if value { "true" } else { "false" }, xsd::BOOLEAN)
    }

    /// The numeric interpretation of this literal, if it has one.
    ///
    /// Integers, decimals and doubles map to their value; `xsd:dateTime`
    /// maps to epoch milliseconds so dates order numerically; booleans map
    /// to 0/1. Everything else is `None`.
    pub fn numeric_value(&self) -> Option<f64> {
        match &self.kind {
            LiteralKind::Typed(dt) => match dt.as_str() {
                xsd::INTEGER | xsd::DECIMAL | xsd::DOUBLE => self.lexical.parse::<f64>().ok(),
                xsd::DATE_TIME | xsd::DATE => parse_epoch_millis(&self.lexical).map(|m| m as f64),
                xsd::BOOLEAN => match self.lexical.as_str() {
                    "true" | "1" => Some(1.0),
                    "false" | "0" => Some(0.0),
                    _ => None,
                },
                _ => None,
            },
            _ => None,
        }
    }
}

/// An RDF term: the subject/predicate/object vocabulary of the store.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored without angle brackets.
    Iri(String),
    /// A literal value.
    Literal(Literal),
    /// A blank node with a store-local label.
    Blank(String),
}

impl Term {
    /// Shorthand for an IRI term.
    pub fn iri(iri: impl Into<String>) -> Self {
        Term::Iri(iri.into())
    }

    /// Shorthand for a plain-literal term.
    pub fn literal(lexical: impl Into<String>) -> Self {
        Term::Literal(Literal::plain(lexical))
    }

    /// Shorthand for an integer-literal term.
    pub fn integer(value: i64) -> Self {
        Term::Literal(Literal::integer(value))
    }

    /// Shorthand for a double-literal term.
    pub fn double(value: f64) -> Self {
        Term::Literal(Literal::double(value))
    }

    /// Shorthand for a dateTime-literal term from epoch milliseconds.
    pub fn date_time_millis(millis: i64) -> Self {
        Term::Literal(Literal::date_time_millis(millis))
    }

    /// Returns the IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// Returns the literal if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }

    /// The numeric interpretation of the term (see [`Literal::numeric_value`]).
    pub fn numeric_value(&self) -> Option<f64> {
        self.as_literal().and_then(Literal::numeric_value)
    }

    /// True if the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::Blank(label) => write!(f, "_:{label}"),
            Term::Literal(lit) => {
                write!(f, "\"{}\"", escape_literal(&lit.lexical))?;
                match &lit.kind {
                    LiteralKind::Plain => Ok(()),
                    LiteralKind::Lang(lang) => write!(f, "@{lang}"),
                    LiteralKind::Typed(dt) => write!(f, "^^<{dt}>"),
                }
            }
        }
    }
}

/// Escapes a literal's lexical form for N-Triples output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape_literal`].
pub fn unescape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

const MILLIS_PER_DAY: i64 = 86_400_000;

/// Formats epoch milliseconds as `YYYY-MM-DDThh:mm:ss.mmmZ`.
///
/// A minimal proleptic-Gregorian implementation; the generators only produce
/// timestamps in a narrow modern range, but the conversion is exact for any
/// year within `i32`.
pub fn format_epoch_millis(millis: i64) -> String {
    let (days, mut rem) = (millis.div_euclid(MILLIS_PER_DAY), millis.rem_euclid(MILLIS_PER_DAY));
    let ms = rem % 1000;
    rem /= 1000;
    let s = rem % 60;
    rem /= 60;
    let m = rem % 60;
    let h = rem / 60;
    let (year, month, day) = civil_from_days(days);
    format!("{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}.{ms:03}Z")
}

/// Parses `YYYY-MM-DD[Thh:mm:ss[.mmm][Z]]` into epoch milliseconds.
pub fn parse_epoch_millis(s: &str) -> Option<i64> {
    let bytes = s.as_bytes();
    if bytes.len() < 10 {
        return None;
    }
    let year: i64 = s.get(0..4)?.parse().ok()?;
    if bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let month: u32 = s.get(5..7)?.parse().ok()?;
    let day: u32 = s.get(8..10)?.parse().ok()?;
    if month == 0 || month > 12 || day == 0 || day > 31 {
        return None;
    }
    let mut millis = days_from_civil(year, month, day) * MILLIS_PER_DAY;
    if bytes.len() > 10 {
        if bytes[10] != b'T' || bytes.len() < 19 {
            return None;
        }
        let h: i64 = s.get(11..13)?.parse().ok()?;
        let m: i64 = s.get(14..16)?.parse().ok()?;
        let sec: i64 = s.get(17..19)?.parse().ok()?;
        millis += ((h * 60 + m) * 60 + sec) * 1000;
        if bytes.len() >= 23 && bytes[19] == b'.' {
            let frac: i64 = s.get(20..23)?.parse().ok()?;
            millis += frac;
        }
    }
    Some(millis)
}

/// Days-from-civil algorithm (Howard Hinnant's `days_from_civil`).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_constructors() {
        assert_eq!(Literal::plain("x").kind, LiteralKind::Plain);
        assert_eq!(Literal::lang("x", "en").kind, LiteralKind::Lang("en".into()));
        assert_eq!(
            Literal::integer(7),
            Literal { lexical: "7".into(), kind: LiteralKind::Typed(xsd::INTEGER.into()) }
        );
    }

    #[test]
    fn numeric_values() {
        assert_eq!(Literal::integer(-3).numeric_value(), Some(-3.0));
        assert_eq!(Literal::double(2.5).numeric_value(), Some(2.5));
        assert_eq!(Literal::boolean(true).numeric_value(), Some(1.0));
        assert_eq!(Literal::plain("7").numeric_value(), None);
        assert_eq!(Literal::typed("abc", xsd::INTEGER).numeric_value(), None);
    }

    #[test]
    fn date_time_round_trip() {
        for millis in [0i64, 1_356_998_400_000, -86_400_000, 123_456_789_012, 86_399_999] {
            let lit = Literal::date_time_millis(millis);
            assert_eq!(lit.numeric_value(), Some(millis as f64), "millis={millis} -> {lit:?}");
        }
    }

    #[test]
    fn date_time_lexical_order_is_temporal_order() {
        let a = Literal::date_time_millis(1_000_000_000_000);
        let b = Literal::date_time_millis(1_000_000_000_001);
        let c = Literal::date_time_millis(1_500_000_000_000);
        assert!(a.lexical < b.lexical);
        assert!(b.lexical < c.lexical);
    }

    #[test]
    fn epoch_formatting_known_values() {
        assert_eq!(format_epoch_millis(0), "1970-01-01T00:00:00.000Z");
        assert_eq!(format_epoch_millis(1_356_998_400_000), "2013-01-01T00:00:00.000Z");
        assert_eq!(parse_epoch_millis("2013-01-01T00:00:00.000Z"), Some(1_356_998_400_000));
        assert_eq!(parse_epoch_millis("1970-01-01"), Some(0));
        assert_eq!(parse_epoch_millis("1969-12-31"), Some(-MILLIS_PER_DAY));
    }

    #[test]
    fn parse_epoch_rejects_garbage() {
        assert_eq!(parse_epoch_millis(""), None);
        assert_eq!(parse_epoch_millis("not-a-date"), None);
        assert_eq!(parse_epoch_millis("2013-13-01"), None);
        assert_eq!(parse_epoch_millis("2013-01-00"), None);
        assert_eq!(parse_epoch_millis("2013-01-01Txx:00:00"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://e/x").to_string(), "<http://e/x>");
        assert_eq!(Term::literal("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Term::Literal(Literal::lang("hi", "en")).to_string(), "\"hi\"@en");
        assert_eq!(Term::Blank("b0".into()).to_string(), "_:b0");
        let t = Term::integer(5).to_string();
        assert!(t.starts_with("\"5\"^^<"), "{t}");
    }

    #[test]
    fn escape_round_trip() {
        let cases = ["plain", "with \"quotes\"", "line\nbreak", "tab\there", "back\\slash"];
        for case in cases {
            assert_eq!(unescape_literal(&escape_literal(case)), case);
        }
    }
}
