//! Pretty-printing of queries back to parseable SPARQL text.
//!
//! `parse_query(query.to_string())` reproduces the original AST — a
//! round-trip property the test suite checks on both hand-written and
//! randomly generated queries. Useful for logging curated workloads and for
//! exporting the per-class sub-queries ("Q4a", "Q4b") the paper proposes.

use std::fmt;

use crate::ast::{
    AggFunc, BinOp, Element, Expr, OrderKey, Projection, SelectQuery, TriplePattern, VarOrTerm,
};

impl fmt::Display for VarOrTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarOrTerm::Var(v) => write!(f, "?{v}"),
            VarOrTerm::Term(t) => write!(f, "{t}"),
            VarOrTerm::Param(p) => write!(f, "%{p}"),
        }
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Fully parenthesized: precedence-safe by construction.
        match self {
            Expr::Var(v) => write!(f, "?{v}"),
            Expr::Const(t) => write!(f, "{t}"),
            Expr::Param(p) => write!(f, "%{p}"),
            Expr::Bound(v) => write!(f, "BOUND(?{v})"),
            Expr::Not(inner) => write!(f, "!({inner})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Projection::Var(v) => write!(f, "?{v}"),
            Projection::Aggregate { func, var, distinct, alias } => {
                write!(f, "({func}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match var {
                    Some(v) => write!(f, "?{v}")?,
                    None => write!(f, "*")?,
                }
                write!(f, ") AS ?{alias})")
            }
        }
    }
}

fn fmt_elements(elements: &[Element], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for el in elements {
        match el {
            Element::Triple(t) => write!(f, "{t} . ")?,
            Element::Filter(e) => write!(f, "FILTER({e}) ")?,
            Element::Optional(inner) => {
                write!(f, "OPTIONAL {{ ")?;
                fmt_elements(inner, f)?;
                write!(f, "}} ")?;
            }
            Element::Union(branches) => {
                for (i, branch) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, "UNION ")?;
                    }
                    write!(f, "{{ ")?;
                    fmt_elements(branch, f)?;
                    write!(f, "}} ")?;
                }
            }
        }
    }
    Ok(())
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for p in &self.projections {
            write!(f, "{p} ")?;
        }
        write!(f, "WHERE {{ ")?;
        fmt_elements(&self.where_clause, f)?;
        write!(f, "}}")?;
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY")?;
            for g in &self.group_by {
                write!(f, " ?{g}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY")?;
            for OrderKey { target, descending } in &self.order_by {
                let dir = if *descending { "DESC" } else { "ASC" };
                match target {
                    crate::ast::OrderTarget::Var(var) => write!(f, " {dir}(?{var})")?,
                    crate::ast::OrderTarget::Expr(e) => write!(f, " {dir}({e})")?,
                }
            }
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        if let Some(offset) = self.offset {
            write!(f, " OFFSET {offset}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    fn round_trip(text: &str) {
        let q = parse_query(text).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        assert_eq!(q, q2, "round trip changed the AST:\n{printed}");
    }

    #[test]
    fn round_trips_simple() {
        round_trip("SELECT ?s ?o WHERE { ?s <http://e/p> ?o }");
        round_trip("SELECT DISTINCT ?s WHERE { ?s <p> \"lit\" . ?s <q> 5 } LIMIT 3 OFFSET 1");
    }

    #[test]
    fn round_trips_filters_and_optional() {
        round_trip(
            "SELECT ?x WHERE { ?x <p> ?y . FILTER(?y > 3 && !BOUND(?z)) OPTIONAL { ?x <n> ?z } }",
        );
    }

    #[test]
    fn round_trips_union_and_params() {
        round_trip(
            "SELECT ?f WHERE { { ?a <p> ?f } UNION { ?a <q> ?f . FILTER(?f != %bad) } } ORDER BY DESC(?f)",
        );
    }

    #[test]
    fn round_trips_aggregates() {
        round_trip(
            "SELECT ?g (AVG(?v) AS ?a) (COUNT(DISTINCT ?x) AS ?c) WHERE { ?x <p> ?g . ?x <v> ?v } GROUP BY ?g ORDER BY ASC(?a) LIMIT 7",
        );
    }

    #[test]
    fn round_trips_typed_literals() {
        round_trip(
            "SELECT ?s WHERE { ?s <p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> . ?s <q> \"hi\"@en . ?s <r> \"esc\\\"aped\" }",
        );
    }
}
