//! Physical operators: scans, hash joins, left-outer (OPTIONAL) joins and
//! filters over dictionary-encoded binding tables.
//!
//! Execution is instrumented: every join reports its output cardinality into
//! [`ExecStats`], whose sum is the *measured* `Cout` of the run — the
//! quantity the paper correlates with wall-clock time (§III, ≈85% Pearson).

use std::collections::HashMap;

use parambench_rdf::dict::Id;
use parambench_rdf::store::Dataset;

use crate::ast::{BinOp, Expr};
use crate::error::QueryError;
use crate::plan::{PlanNode, Slot};

/// Sentinel id marking an unbound value (from OPTIONAL mismatches).
pub const UNBOUND: Id = Id(u32::MAX);

/// A table of variable bindings: `cols[i]` is the variable slot stored in
/// column `i`; rows are flattened row-major.
///
/// Zero-column tables are meaningful: a fully bound triple pattern (an
/// existence check) produces a table with no columns and 0 or more abstract
/// rows, and joining with it keeps or clears the other side — so the row
/// count is tracked explicitly rather than derived from the data length.
#[derive(Debug, Clone, PartialEq)]
pub struct Bindings {
    cols: Vec<usize>,
    data: Vec<Id>,
    rows: usize,
}

impl Bindings {
    /// An empty table with the given column schema.
    pub fn empty(cols: Vec<usize>) -> Self {
        Bindings { cols, data: Vec::new(), rows: 0 }
    }

    /// The variable slot of each column.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `i` as a slice (empty slice for zero-column tables).
    pub fn row(&self, i: usize) -> &[Id] {
        debug_assert!(i < self.rows);
        let w = self.cols.len();
        &self.data[i * w..(i + 1) * w]
    }

    /// Column index of variable slot `var`, if present.
    pub fn col_of(&self, var: usize) -> Option<usize> {
        self.cols.iter().position(|&c| c == var)
    }

    /// Appends a row (must match the schema width).
    pub fn push_row(&mut self, row: &[Id]) {
        debug_assert_eq!(row.len(), self.cols.len());
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Iterates rows.
    pub fn iter(&self) -> impl Iterator<Item = &[Id]> {
        (0..self.rows).map(|i| self.row(i))
    }
}

/// Per-execution instrumentation.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Sum of output cardinalities of all inner joins of the required BGP —
    /// the measured `Cout` of the plan.
    pub cout: u64,
    /// Additional intermediate tuples from OPTIONAL (left-outer) joins.
    pub cout_optional: u64,
    /// Output cardinality of every join, paired with the join's signature
    /// path (for debugging plan behaviour).
    pub join_cards: Vec<(String, u64)>,
    /// Rows scanned out of the store (sum over scans).
    pub scanned: u64,
}

/// Executes a BGP join tree, producing a bindings table.
pub fn execute_plan(ds: &Dataset, plan: &PlanNode, stats: &mut ExecStats) -> Bindings {
    match plan {
        PlanNode::Scan { pattern, .. } => {
            let cols = pattern.var_slots();
            let mut out = Bindings::empty(cols.clone());
            if pattern.has_absent() {
                return out;
            }
            // Positions of each output column within the triple.
            let col_pos: Vec<usize> = cols
                .iter()
                .map(|&v| {
                    pattern
                        .slots
                        .iter()
                        .position(|s| s.as_var() == Some(v))
                        .expect("var comes from this pattern")
                })
                .collect();
            // Repeated-variable equality constraints within the pattern.
            let mut eq_pairs: Vec<(usize, usize)> = Vec::new();
            for i in 0..3 {
                for j in (i + 1)..3 {
                    if let (Slot::Var(a), Slot::Var(b)) = (pattern.slots[i], pattern.slots[j]) {
                        if a == b {
                            eq_pairs.push((i, j));
                        }
                    }
                }
            }
            let mut row = vec![UNBOUND; cols.len()];
            for triple in ds.scan(pattern.access()) {
                stats.scanned += 1;
                if eq_pairs.iter().any(|&(i, j)| triple[i] != triple[j]) {
                    continue;
                }
                for (c, &pos) in col_pos.iter().enumerate() {
                    row[c] = triple[pos];
                }
                out.push_row(&row);
            }
            out
        }
        PlanNode::HashJoin { left, right, join_vars, .. } => {
            let l = execute_plan(ds, left, stats);
            // Adaptive join method: when the right child is a leaf scan that
            // shares variables with the left result, and the left result is
            // smaller than the scan's extent, probe the store per left row
            // (index nested-loop / "bind join") instead of materializing the
            // whole scan. This is how index-based RDF engines execute
            // selective joins, and it is what makes wall-clock time track
            // the *touched* data volume — the effect behind the paper's
            // E1/E3 runtime swings. The join's logical output (and therefore
            // the measured `Cout`) is identical either way.
            let out = match right.as_ref() {
                PlanNode::Scan { pattern, .. }
                    if !join_vars.is_empty()
                        && !pattern.has_absent()
                        && l.len() <= ds.count(pattern.access()) =>
                {
                    bind_join(ds, &l, pattern, join_vars, stats)
                }
                _ => {
                    let r = execute_plan(ds, right, stats);
                    hash_join(&l, &r, join_vars)
                }
            };
            stats.cout += out.len() as u64;
            stats.join_cards.push((plan.signature().0.clone(), out.len() as u64));
            out
        }
    }
}

/// Index nested-loop join ("bind join"): for every left row, bind the
/// shared variables into the scan pattern and probe the store's indexes.
/// Output equals `hash_join(left, scan(pattern))` but only touches the
/// store range each left row selects.
pub fn bind_join(
    ds: &Dataset,
    left: &Bindings,
    pattern: &crate::plan::PlannedPattern,
    join_vars: &[usize],
    stats: &mut ExecStats,
) -> Bindings {
    let mut out_cols: Vec<usize> = left.cols().to_vec();
    let pattern_vars = pattern.var_slots();
    for &v in &pattern_vars {
        if !out_cols.contains(&v) {
            out_cols.push(v);
        }
    }
    let mut out = Bindings::empty(out_cols.clone());

    // For each triple position: where its value comes from / what must match.
    // A position is either already bound in the pattern, bound via a shared
    // var (left row), or free (emitted into a new column).
    let left_col_of: Vec<Option<usize>> = (0..3)
        .map(|pos| match pattern.slots[pos] {
            Slot::Var(v) if join_vars.contains(&v) => left.col_of(v),
            _ => None,
        })
        .collect();
    let new_cols: Vec<(usize, usize)> = out_cols
        .iter()
        .enumerate()
        .skip(left.cols().len())
        .map(|(k, &v)| {
            let pos = pattern
                .slots
                .iter()
                .position(|s| s.as_var() == Some(v))
                .expect("new column from this pattern");
            (k, pos)
        })
        .collect();
    // Positions whose value must equal another position (repeated vars and
    // pattern vars bound by the left side beyond the first occurrence).
    let mut check: Vec<(usize, usize)> = Vec::new(); // (triple pos, left col)
    let mut eq_pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..3 {
        for j in (i + 1)..3 {
            if let (Slot::Var(a), Slot::Var(b)) = (pattern.slots[i], pattern.slots[j]) {
                if a == b {
                    eq_pairs.push((i, j));
                }
            }
        }
    }

    let mut row_buf = vec![UNBOUND; out_cols.len()];
    for lrow in left.iter() {
        let mut access = pattern.access();
        check.clear();
        for pos in 0..3 {
            if let Some(c) = left_col_of[pos] {
                if lrow[c] == UNBOUND {
                    // Unbound join key (from OPTIONAL) never matches.
                    access = [Some(Id(u32::MAX)), None, None];
                    break;
                }
                if access[pos].is_none() {
                    access[pos] = Some(lrow[c]);
                } else {
                    check.push((pos, c));
                }
            }
        }
        row_buf[..lrow.len()].copy_from_slice(lrow);
        for triple in ds.scan(access) {
            stats.scanned += 1;
            if eq_pairs.iter().any(|&(i, j)| triple[i] != triple[j]) {
                continue;
            }
            if check.iter().any(|&(pos, c)| triple[pos] != lrow[c]) {
                continue;
            }
            for &(k, pos) in &new_cols {
                row_buf[k] = triple[pos];
            }
            out.push_row(&row_buf);
        }
    }
    out
}

/// Inner hash join on the given variable slots (cross product when empty).
/// The smaller input is the build side.
pub fn hash_join(a: &Bindings, b: &Bindings, join_vars: &[usize]) -> Bindings {
    let (build, probe, build_is_left) =
        if a.len() <= b.len() { (a, b, true) } else { (b, a, false) };

    let build_key_cols: Vec<usize> =
        join_vars.iter().map(|&v| build.col_of(v).expect("join var in build side")).collect();
    let probe_key_cols: Vec<usize> =
        join_vars.iter().map(|&v| probe.col_of(v).expect("join var in probe side")).collect();

    // Output schema: all left (a) cols, then right (b) cols not already
    // present — stable regardless of which side builds the hash table.
    let mut out_cols: Vec<usize> = a.cols().to_vec();
    for &c in b.cols() {
        if !out_cols.contains(&c) {
            out_cols.push(c);
        }
    }
    let mut out = Bindings::empty(out_cols.clone());

    let mut table: HashMap<Vec<Id>, Vec<usize>> = HashMap::new();
    for (i, row) in build.iter().enumerate() {
        let key: Vec<Id> = build_key_cols.iter().map(|&c| row[c]).collect();
        table.entry(key).or_default().push(i);
    }

    // Column source map for output assembly.
    let src: Vec<(bool, usize)> = out_cols
        .iter()
        .map(|&v| {
            if let Some(c) = a.col_of(v) {
                (true, c)
            } else {
                (false, b.col_of(v).expect("var from one side"))
            }
        })
        .collect();

    let mut row_buf = vec![UNBOUND; out_cols.len()];
    for prow in probe.iter() {
        let key: Vec<Id> = probe_key_cols.iter().map(|&c| prow[c]).collect();
        if let Some(matches) = table.get(&key) {
            for &bi in matches {
                let brow = build.row(bi);
                let (arow, brow2): (&[Id], &[Id]) =
                    if build_is_left { (brow, prow) } else { (prow, brow) };
                for (k, &(from_a, c)) in src.iter().enumerate() {
                    row_buf[k] = if from_a { arow[c] } else { brow2[c] };
                }
                out.push_row(&row_buf);
            }
        }
    }
    out
}

/// Left-outer hash join for OPTIONAL: all rows of `left` survive; matching
/// rows of `right` extend them, otherwise right-only columns are [`UNBOUND`].
/// Join keys with UNBOUND on the left never match (SPARQL semantics for
/// nested optionals).
pub fn left_outer_join(left: &Bindings, right: &Bindings, join_vars: &[usize]) -> Bindings {
    let mut out_cols: Vec<usize> = left.cols().to_vec();
    for &c in right.cols() {
        if !out_cols.contains(&c) {
            out_cols.push(c);
        }
    }
    let mut out = Bindings::empty(out_cols.clone());

    let right_key_cols: Vec<usize> =
        join_vars.iter().map(|&v| right.col_of(v).expect("join var in right")).collect();
    let left_key_cols: Vec<usize> =
        join_vars.iter().map(|&v| left.col_of(v).expect("join var in left")).collect();

    let mut table: HashMap<Vec<Id>, Vec<usize>> = HashMap::new();
    for (i, row) in right.iter().enumerate() {
        let key: Vec<Id> = right_key_cols.iter().map(|&c| row[c]).collect();
        table.entry(key).or_default().push(i);
    }

    let right_only: Vec<(usize, usize)> = out_cols
        .iter()
        .enumerate()
        .filter(|(_, v)| left.col_of(**v).is_none())
        .map(|(k, &v)| (k, right.col_of(v).expect("right-only var")))
        .collect();

    let mut row_buf = vec![UNBOUND; out_cols.len()];
    for lrow in left.iter() {
        row_buf[..lrow.len()].copy_from_slice(lrow);
        let key: Vec<Id> = left_key_cols.iter().map(|&c| lrow[c]).collect();
        let matches = if key.contains(&UNBOUND) { None } else { table.get(&key) };
        match matches {
            Some(matches) if !matches.is_empty() => {
                for &ri in matches {
                    let rrow = right.row(ri);
                    for &(k, rc) in &right_only {
                        row_buf[k] = rrow[rc];
                    }
                    out.push_row(&row_buf);
                }
            }
            _ => {
                for &(k, _) in &right_only {
                    row_buf[k] = UNBOUND;
                }
                out.push_row(&row_buf);
            }
        }
    }
    out
}

/// A value during filter evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Term(Id),
    Num(f64),
    Bool(bool),
    Unbound,
    /// SPARQL expression error: propagates and makes the filter reject.
    Error,
}

/// Evaluates a filter expression over one row. `col_of` maps variable names
/// to column positions (resolved once per query by the engine).
pub fn eval_expr(
    expr: &Expr,
    row: &[Id],
    var_col: &HashMap<String, usize>,
    ds: &Dataset,
) -> Value {
    match expr {
        Expr::Var(name) => match var_col.get(name) {
            Some(&c) => {
                let id = row[c];
                if id == UNBOUND {
                    Value::Unbound
                } else {
                    Value::Term(id)
                }
            }
            None => Value::Error,
        },
        Expr::Const(term) => match term.numeric_value() {
            Some(n) => Value::Num(n),
            None => match ds.lookup(term) {
                Some(id) => Value::Term(id),
                // Constant not in the dictionary: it can still be compared
                // for (in)equality with terms — it equals nothing.
                None => Value::Error,
            },
        },
        Expr::Param(_) => Value::Error,
        Expr::Bound(name) => match var_col.get(name) {
            Some(&c) => Value::Bool(row[c] != UNBOUND),
            None => Value::Bool(false),
        },
        Expr::Not(inner) => match eval_expr(inner, row, var_col, ds) {
            Value::Bool(b) => Value::Bool(!b),
            Value::Error => Value::Error,
            _ => Value::Error,
        },
        Expr::Binary(op, a, b) => {
            let va = eval_expr(a, row, var_col, ds);
            let vb = eval_expr(b, row, var_col, ds);
            eval_binary(*op, va, vb, ds)
        }
    }
}

fn numeric_of(v: Value, ds: &Dataset) -> Option<f64> {
    match v {
        Value::Num(n) => Some(n),
        Value::Term(id) => ds.dict().numeric(id),
        Value::Bool(b) => Some(if b { 1.0 } else { 0.0 }),
        _ => None,
    }
}

fn eval_binary(op: BinOp, a: Value, b: Value, ds: &Dataset) -> Value {
    use BinOp::*;
    match op {
        And => match (truth(a), truth(b)) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Error,
        },
        Or => match (truth(a), truth(b)) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Error,
        },
        Add | Sub | Mul | Div => {
            let (Some(x), Some(y)) = (numeric_of(a, ds), numeric_of(b, ds)) else {
                return Value::Error;
            };
            let r = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => {
                    if y == 0.0 {
                        return Value::Error;
                    }
                    x / y
                }
                _ => unreachable!(),
            };
            Value::Num(r)
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            if matches!(a, Value::Unbound | Value::Error)
                || matches!(b, Value::Unbound | Value::Error)
            {
                return Value::Error;
            }
            // Numeric comparison when both sides are numeric...
            if let (Some(x), Some(y)) = (numeric_of(a, ds), numeric_of(b, ds)) {
                let r = match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                };
                return Value::Bool(r);
            }
            // ...otherwise compare terms.
            match (a, b) {
                (Value::Term(x), Value::Term(y)) => {
                    let ord = ds.dict().compare(x, y);
                    let r = match op {
                        Eq => x == y,
                        Ne => x != y,
                        Lt => ord == std::cmp::Ordering::Less,
                        Le => ord != std::cmp::Ordering::Greater,
                        Gt => ord == std::cmp::Ordering::Greater,
                        Ge => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                    };
                    Value::Bool(r)
                }
                (Value::Bool(x), Value::Bool(y)) => {
                    let r = match op {
                        Eq => x == y,
                        Ne => x != y,
                        _ => return Value::Error,
                    };
                    Value::Bool(r)
                }
                _ => Value::Error,
            }
        }
    }
}

fn truth(v: Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(b),
        _ => None,
    }
}

/// Retains only rows where all `filters` evaluate to true.
pub fn apply_filters(
    bindings: Bindings,
    filters: &[Expr],
    var_col: &HashMap<String, usize>,
    ds: &Dataset,
) -> Result<Bindings, QueryError> {
    if filters.is_empty() {
        return Ok(bindings);
    }
    let mut out = Bindings::empty(bindings.cols().to_vec());
    for row in bindings.iter() {
        let keep = filters
            .iter()
            .all(|f| matches!(eval_expr(f, row, var_col, ds), Value::Bool(true)));
        if keep {
            out.push_row(row);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlannedPattern, Slot};
    use parambench_rdf::store::StoreBuilder;
    use parambench_rdf::term::Term;

    fn dataset() -> Dataset {
        let mut b = StoreBuilder::new();
        let knows = Term::iri("p/knows");
        let age = Term::iri("p/age");
        b.insert(Term::iri("a"), knows.clone(), Term::iri("b"));
        b.insert(Term::iri("a"), knows.clone(), Term::iri("c"));
        b.insert(Term::iri("b"), knows.clone(), Term::iri("c"));
        b.insert(Term::iri("a"), age.clone(), Term::integer(30));
        b.insert(Term::iri("b"), age.clone(), Term::integer(40));
        b.freeze()
    }

    fn scan_plan(ds: &Dataset, pred: &str, s: usize, o: usize, idx: usize) -> PlanNode {
        let p = ds.lookup(&Term::iri(pred)).unwrap();
        PlanNode::Scan {
            pattern: PlannedPattern { idx, slots: [Slot::Var(s), Slot::Bound(p), Slot::Var(o)] },
            est_card: 0.0,
        }
    }

    #[test]
    fn scan_produces_rows() {
        let ds = dataset();
        let mut stats = ExecStats::default();
        let b = execute_plan(&ds, &scan_plan(&ds, "p/knows", 0, 1, 0), &mut stats);
        assert_eq!(b.len(), 3);
        assert_eq!(b.cols(), &[0, 1]);
        assert_eq!(stats.scanned, 3);
        assert_eq!(stats.cout, 0); // scans are free under Cout
    }

    #[test]
    fn join_counts_cout() {
        let ds = dataset();
        // ?x knows ?y . ?y knows ?z  → (a,b,c) and (a knows b, b knows c): rows: a-b-c; also a-c? c knows nothing.
        let plan = PlanNode::HashJoin {
            left: Box::new(scan_plan(&ds, "p/knows", 0, 1, 0)),
            right: Box::new(scan_plan(&ds, "p/knows", 1, 2, 1)),
            join_vars: vec![1],
            est_card: 0.0,
        };
        let mut stats = ExecStats::default();
        let b = execute_plan(&ds, &plan, &mut stats);
        assert_eq!(b.len(), 1); // a knows b, b knows c
        assert_eq!(stats.cout, 1);
        assert_eq!(stats.join_cards.len(), 1);
        let row = b.row(0);
        let col_x = b.col_of(0).unwrap();
        let col_z = b.col_of(2).unwrap();
        assert_eq!(ds.decode(row[col_x]), &Term::iri("a"));
        assert_eq!(ds.decode(row[col_z]), &Term::iri("c"));
    }

    #[test]
    fn bind_join_equals_hash_join() {
        let ds = dataset();
        let knows_id = ds.lookup(&Term::iri("p/knows")).unwrap();
        let left =
            execute_plan(&ds, &scan_plan(&ds, "p/knows", 0, 1, 0), &mut ExecStats::default());
        let pattern = PlannedPattern {
            idx: 1,
            slots: [Slot::Var(1), Slot::Bound(knows_id), Slot::Var(2)],
        };
        let right = execute_plan(
            &ds,
            &PlanNode::Scan { pattern: pattern.clone(), est_card: 0.0 },
            &mut ExecStats::default(),
        );
        let via_hash = hash_join(&left, &right, &[1]);
        let via_bind = bind_join(&ds, &left, &pattern, &[1], &mut ExecStats::default());
        assert_eq!(via_bind.cols(), via_hash.cols());
        let norm = |b: &Bindings| {
            let mut rows: Vec<Vec<Id>> = b.iter().map(|r| r.to_vec()).collect();
            rows.sort();
            rows
        };
        assert_eq!(norm(&via_bind), norm(&via_hash));
    }

    #[test]
    fn bind_join_skips_unbound_left_keys() {
        let ds = dataset();
        let knows_id = ds.lookup(&Term::iri("p/knows")).unwrap();
        let mut left = Bindings::empty(vec![0, 1]);
        left.push_row(&[ds.lookup(&Term::iri("a")).unwrap(), UNBOUND]);
        let pattern = PlannedPattern {
            idx: 1,
            slots: [Slot::Var(1), Slot::Bound(knows_id), Slot::Var(2)],
        };
        let out = bind_join(&ds, &left, &pattern, &[1], &mut ExecStats::default());
        assert!(out.is_empty());
    }

    #[test]
    fn cross_join_when_no_vars() {
        let ds = dataset();
        let a = execute_plan(&ds, &scan_plan(&ds, "p/age", 0, 1, 0), &mut ExecStats::default());
        let b = execute_plan(&ds, &scan_plan(&ds, "p/age", 2, 3, 1), &mut ExecStats::default());
        let j = hash_join(&a, &b, &[]);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn left_outer_join_keeps_unmatched() {
        let ds = dataset();
        let people = execute_plan(&ds, &scan_plan(&ds, "p/knows", 0, 1, 0), &mut ExecStats::default());
        let ages = execute_plan(&ds, &scan_plan(&ds, "p/age", 1, 2, 1), &mut ExecStats::default());
        // For each (x knows y), optionally y's age. c has no age.
        let out = left_outer_join(&people, &ages, &[1]);
        assert_eq!(out.len(), 3);
        let age_col = out.col_of(2).unwrap();
        let unbound_rows = out.iter().filter(|r| r[age_col] == UNBOUND).count();
        assert_eq!(unbound_rows, 2); // a-c and b-c: c has no age
    }

    #[test]
    fn filter_numeric_comparison() {
        let ds = dataset();
        let ages = execute_plan(&ds, &scan_plan(&ds, "p/age", 0, 1, 0), &mut ExecStats::default());
        let mut var_col = HashMap::new();
        var_col.insert("person".to_string(), ages.col_of(0).unwrap());
        var_col.insert("age".to_string(), ages.col_of(1).unwrap());
        let filter = Expr::Binary(
            BinOp::Gt,
            Box::new(Expr::Var("age".into())),
            Box::new(Expr::Const(Term::integer(35))),
        );
        let out = apply_filters(ages, &[filter], &var_col, &ds).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn filter_term_inequality() {
        let ds = dataset();
        let knows = execute_plan(&ds, &scan_plan(&ds, "p/knows", 0, 1, 0), &mut ExecStats::default());
        let mut var_col = HashMap::new();
        var_col.insert("x".to_string(), knows.col_of(0).unwrap());
        var_col.insert("y".to_string(), knows.col_of(1).unwrap());
        let filter = Expr::Binary(
            BinOp::Ne,
            Box::new(Expr::Var("y".into())),
            Box::new(Expr::Const(Term::iri("c"))),
        );
        let out = apply_filters(knows, &[filter], &var_col, &ds).unwrap();
        assert_eq!(out.len(), 1); // only a knows b survives
    }

    #[test]
    fn bound_and_logic() {
        let ds = dataset();
        let mut var_col = HashMap::new();
        var_col.insert("x".to_string(), 0);
        let row_bound = vec![Id(1)];
        let row_unbound = vec![UNBOUND];
        assert_eq!(eval_expr(&Expr::Bound("x".into()), &row_bound, &var_col, &ds), Value::Bool(true));
        assert_eq!(
            eval_expr(&Expr::Bound("x".into()), &row_unbound, &var_col, &ds),
            Value::Bool(false)
        );
        let not = Expr::Not(Box::new(Expr::Bound("x".into())));
        assert_eq!(eval_expr(&not, &row_unbound, &var_col, &ds), Value::Bool(true));
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let ds = dataset();
        let var_col = HashMap::new();
        let expr = Expr::Binary(
            BinOp::Gt,
            Box::new(Expr::Binary(
                BinOp::Div,
                Box::new(Expr::Const(Term::integer(10))),
                Box::new(Expr::Const(Term::integer(4))),
            )),
            Box::new(Expr::Const(Term::double(2.0))),
        );
        assert_eq!(eval_expr(&expr, &[], &var_col, &ds), Value::Bool(true));
        let div0 = Expr::Binary(
            BinOp::Div,
            Box::new(Expr::Const(Term::integer(1))),
            Box::new(Expr::Const(Term::integer(0))),
        );
        assert_eq!(eval_expr(&div0, &[], &var_col, &ds), Value::Error);
    }

    #[test]
    fn comparison_with_unbound_is_error_and_filters_out() {
        let ds = dataset();
        let mut var_col = HashMap::new();
        var_col.insert("x".to_string(), 0);
        let expr = Expr::Binary(
            BinOp::Eq,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Const(Term::integer(1))),
        );
        assert_eq!(eval_expr(&expr, &[UNBOUND], &var_col, &ds), Value::Error);
    }
}
