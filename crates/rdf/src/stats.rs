//! Dataset statistics backing the query optimizer's cardinality estimator.
//!
//! The statistics are exact (computed from the frozen indexes, not sampled):
//! per-predicate triple counts and distinct subject/object counts, plus
//! global totals. The cardinality estimator combines them with exact
//! pattern counts from the indexes; the *estimation* part is confined to
//! join selectivities, mirroring what a production RDF optimizer keeps in
//! its aggregated indexes.

use std::collections::HashMap;

use crate::dict::{Dictionary, Id};
use crate::index::PermIndex;

/// Per-predicate statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredicateStats {
    /// Number of triples with this predicate.
    pub triples: usize,
    /// Number of distinct subjects among those triples.
    pub distinct_subjects: usize,
    /// Number of distinct objects among those triples.
    pub distinct_objects: usize,
}

impl PredicateStats {
    /// Average number of triples per distinct subject.
    pub fn objects_per_subject(&self) -> f64 {
        if self.distinct_subjects == 0 {
            0.0
        } else {
            self.triples as f64 / self.distinct_subjects as f64
        }
    }

    /// Average number of triples per distinct object.
    pub fn subjects_per_object(&self) -> f64 {
        if self.distinct_objects == 0 {
            0.0
        } else {
            self.triples as f64 / self.distinct_objects as f64
        }
    }
}

/// Characteristic sets (Neumann & Moerkotte, ICDE 2011): subjects grouped
/// by their exact predicate set, with per-predicate triple multiplicities.
///
/// Enables near-exact cardinality estimates for *star* queries (all
/// patterns sharing the subject variable) — the shape of most benchmark
/// templates — where the independence assumption is weakest: predicates on
/// the same subject are strongly correlated in real data (a product that
/// has a price also has features).
#[derive(Debug, Clone, Default)]
pub struct CharacteristicSets {
    /// Each distinct predicate set (sorted) with its subject count and the
    /// total triple count per predicate within the group.
    sets: Vec<(Vec<Id>, CsEntry)>,
}

/// One characteristic set's payload.
#[derive(Debug, Clone, Default)]
pub struct CsEntry {
    /// Number of subjects with exactly this predicate set.
    pub subjects: usize,
    /// Total triples per predicate over those subjects.
    pub triples: HashMap<Id, usize>,
}

/// Aggregate over all characteristic sets that cover a queried star.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarEstimate {
    /// Distinct subjects having *all* queried predicates.
    pub subjects: f64,
    /// Expected result tuples of the star join (product of per-predicate
    /// mean multiplicities, summed over covering sets).
    pub tuples: f64,
}

impl CharacteristicSets {
    /// Builds the characteristic sets from the SPO index (subject-grouped).
    pub fn compute(spo: &PermIndex) -> Self {
        Self::compute_from_keys(spo.range(&[]))
    }

    /// [`CharacteristicSets::compute`] over an explicit sorted SPO key
    /// slice — the overlay update path feeds the *merged* visible scan
    /// through this so mutated stores carry the same exact statistics a
    /// from-scratch freeze would.
    pub fn compute_from_keys(all: &[[Id; 3]]) -> Self {
        let mut sets: HashMap<Vec<Id>, CsEntry> = HashMap::new();
        let mut i = 0;
        while i < all.len() {
            let s = all[i][0];
            let mut preds: Vec<Id> = Vec::new();
            let mut counts: HashMap<Id, usize> = HashMap::new();
            let mut j = i;
            while j < all.len() && all[j][0] == s {
                let p = all[j][1];
                if preds.last() != Some(&p) {
                    preds.push(p);
                }
                *counts.entry(p).or_default() += 1;
                j += 1;
            }
            // SPO order sorts predicates within a subject already.
            let entry = sets.entry(preds).or_default();
            entry.subjects += 1;
            for (p, c) in counts {
                *entry.triples.entry(p).or_default() += c;
            }
            i = j;
        }
        let mut sets: Vec<(Vec<Id>, CsEntry)> = sets.into_iter().collect();
        sets.sort_by(|a, b| a.0.cmp(&b.0));
        CharacteristicSets { sets }
    }

    /// The sorted `(predicate set, payload)` entries (snapshot writer).
    pub(crate) fn entries(&self) -> &[(Vec<Id>, CsEntry)] {
        &self.sets
    }

    /// Rebuilds characteristic sets from snapshot entries, validating the
    /// sorted-and-distinct invariant [`CharacteristicSets::compute`]
    /// establishes (the `star` lookup relies on per-set binary search).
    pub(crate) fn from_parts(sets: Vec<(Vec<Id>, CsEntry)>) -> Result<Self, String> {
        for (preds, entry) in &sets {
            if preds.is_empty() {
                return Err("characteristic set with no predicates".into());
            }
            if preds.windows(2).any(|w| w[0] >= w[1]) {
                return Err("characteristic set predicates not strictly ascending".into());
            }
            if entry.subjects == 0 {
                return Err("characteristic set with zero subjects".into());
            }
            if entry.triples.len() != preds.len()
                || preds.iter().any(|p| !entry.triples.contains_key(p))
            {
                return Err("characteristic set triple counts do not match its predicates".into());
            }
        }
        if sets.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("characteristic sets not sorted by predicate set".into());
        }
        Ok(CharacteristicSets { sets })
    }

    /// Number of distinct characteristic sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no subjects were observed.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Estimates a star query over `preds` (must be non-empty): subjects
    /// having all of them, and expected tuples when each predicate
    /// contributes one pattern with an unbound object.
    pub fn star(&self, preds: &[Id]) -> StarEstimate {
        let mut subjects = 0.0;
        let mut tuples = 0.0;
        for (set, entry) in &self.sets {
            if preds.iter().all(|p| set.binary_search(p).is_ok()) {
                subjects += entry.subjects as f64;
                let mut t = entry.subjects as f64;
                for p in preds {
                    let total = entry.triples.get(p).copied().unwrap_or(0) as f64;
                    t *= total / entry.subjects as f64;
                }
                tuples += t;
            }
        }
        StarEstimate { subjects, tuples }
    }
}

/// Whole-dataset statistics.
#[derive(Debug, Clone, Default)]
pub struct DatasetStats {
    /// Total number of distinct triples.
    pub total_triples: usize,
    /// Number of distinct subjects in the dataset.
    pub distinct_subjects: usize,
    /// Number of distinct objects in the dataset.
    pub distinct_objects: usize,
    /// Number of distinct predicates.
    pub distinct_predicates: usize,
    per_predicate: HashMap<Id, PredicateStats>,
}

impl DatasetStats {
    /// Computes statistics from the PSO index (grouped by predicate) and the
    /// dictionary. `O(n)` over the triples, done once at freeze time.
    pub fn compute(pso: &PermIndex, _dict: &Dictionary) -> Self {
        Self::compute_from_keys(pso.range(&[]))
    }

    /// [`DatasetStats::compute`] over an explicit sorted PSO key slice
    /// (`[p, s, o]` layout) — the overlay update path feeds the *merged*
    /// visible scan through this so mutated stores carry the same exact
    /// statistics a from-scratch freeze would.
    pub fn compute_from_keys(all: &[[Id; 3]]) -> Self {
        let mut per_predicate = HashMap::new();
        let total_triples = all.len();

        let mut i = 0;
        while i < all.len() {
            let p = all[i][0];
            // Find end of this predicate's run.
            let mut j = i;
            let mut distinct_subjects = 0;
            let mut last_s = None;
            let mut objects: Vec<Id> = Vec::new();
            while j < all.len() && all[j][0] == p {
                let s = all[j][1];
                if last_s != Some(s) {
                    distinct_subjects += 1;
                    last_s = Some(s);
                }
                objects.push(all[j][2]);
                j += 1;
            }
            objects.sort_unstable();
            objects.dedup();
            per_predicate.insert(
                p,
                PredicateStats {
                    triples: j - i,
                    distinct_subjects,
                    distinct_objects: objects.len(),
                },
            );
            i = j;
        }

        // Global distinct subject/object counts.
        let mut subjects: Vec<Id> = all.iter().map(|k| k[1]).collect();
        subjects.sort_unstable();
        subjects.dedup();
        let mut objects: Vec<Id> = all.iter().map(|k| k[2]).collect();
        objects.sort_unstable();
        objects.dedup();

        DatasetStats {
            total_triples,
            distinct_subjects: subjects.len(),
            distinct_objects: objects.len(),
            distinct_predicates: per_predicate.len(),
            per_predicate,
        }
    }

    /// The per-predicate table (snapshot writer).
    pub(crate) fn per_predicate(&self) -> &HashMap<Id, PredicateStats> {
        &self.per_predicate
    }

    /// Rebuilds statistics from snapshot parts; `distinct_predicates` is
    /// derived from the table, as [`DatasetStats::compute`] does.
    pub(crate) fn from_parts(
        total_triples: usize,
        distinct_subjects: usize,
        distinct_objects: usize,
        per_predicate: HashMap<Id, PredicateStats>,
    ) -> Self {
        DatasetStats {
            total_triples,
            distinct_subjects,
            distinct_objects,
            distinct_predicates: per_predicate.len(),
            per_predicate,
        }
    }

    /// Statistics for one predicate, if it occurs in the dataset.
    pub fn predicate(&self, p: Id) -> Option<&PredicateStats> {
        self.per_predicate.get(&p)
    }

    /// Iterates `(predicate, stats)` pairs in arbitrary order.
    pub fn predicates(&self) -> impl Iterator<Item = (Id, &PredicateStats)> {
        self.per_predicate.iter().map(|(&p, s)| (p, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;
    use crate::term::Term;

    #[test]
    fn per_predicate_counts() {
        let mut b = StoreBuilder::new();
        let knows = Term::iri("p/knows");
        let name = Term::iri("p/name");
        for i in 0..10 {
            b.insert(Term::iri(format!("s/{i}")), knows.clone(), Term::iri(format!("s/{}", i % 3)));
            b.insert(Term::iri(format!("s/{i}")), name.clone(), Term::literal(format!("n{i}")));
        }
        let ds = b.freeze();
        let knows_id = ds.lookup(&knows).unwrap();
        let name_id = ds.lookup(&name).unwrap();
        let ks = ds.stats().predicate(knows_id).unwrap();
        assert_eq!(ks.triples, 10);
        assert_eq!(ks.distinct_subjects, 10);
        assert_eq!(ks.distinct_objects, 3);
        let ns = ds.stats().predicate(name_id).unwrap();
        assert_eq!(ns.triples, 10);
        assert_eq!(ns.distinct_objects, 10);
        assert_eq!(ds.stats().distinct_predicates, 2);
        assert_eq!(ds.stats().total_triples, 20);
    }

    #[test]
    fn ratios() {
        let s = PredicateStats { triples: 12, distinct_subjects: 4, distinct_objects: 6 };
        assert!((s.objects_per_subject() - 3.0).abs() < 1e-12);
        assert!((s.subjects_per_object() - 2.0).abs() < 1e-12);
        let zero = PredicateStats { triples: 0, distinct_subjects: 0, distinct_objects: 0 };
        assert_eq!(zero.objects_per_subject(), 0.0);
        assert_eq!(zero.subjects_per_object(), 0.0);
    }

    #[test]
    fn missing_predicate_is_none() {
        let ds = StoreBuilder::new().freeze();
        assert!(ds.stats().predicate(Id(0)).is_none());
        assert_eq!(ds.stats().total_triples, 0);
    }

    #[test]
    fn characteristic_sets_group_subjects() {
        let mut b = StoreBuilder::new();
        // 5 subjects with {p, q}; 3 subjects with {p} only; one {p,q,r}.
        for i in 0..5 {
            b.insert(Term::iri(format!("a/{i}")), Term::iri("p"), Term::integer(i));
            b.insert(Term::iri(format!("a/{i}")), Term::iri("q"), Term::integer(i));
            b.insert(Term::iri(format!("a/{i}")), Term::iri("q"), Term::integer(i + 100));
        }
        for i in 0..3 {
            b.insert(Term::iri(format!("b/{i}")), Term::iri("p"), Term::integer(i));
        }
        b.insert(Term::iri("c"), Term::iri("p"), Term::integer(0));
        b.insert(Term::iri("c"), Term::iri("q"), Term::integer(0));
        b.insert(Term::iri("c"), Term::iri("r"), Term::integer(0));
        let ds = b.freeze();
        let cs = ds.char_sets();
        assert_eq!(cs.len(), 3);

        let p = ds.lookup(&Term::iri("p")).unwrap();
        let q = ds.lookup(&Term::iri("q")).unwrap();
        let r = ds.lookup(&Term::iri("r")).unwrap();

        // Subjects with p: all 9.
        assert_eq!(cs.star(&[p]).subjects, 9.0);
        // Subjects with p AND q: 6; tuples = 5 subjects * 1 * 2 + 1 * 1 * 1.
        let pq = cs.star(&[p, q]);
        assert_eq!(pq.subjects, 6.0);
        assert_eq!(pq.tuples, 11.0);
        // The full star.
        assert_eq!(cs.star(&[p, q, r]).subjects, 1.0);
        // Unsatisfiable star.
        assert_eq!(cs.star(&[Id(9999)]).subjects, 0.0);
    }

    #[test]
    fn characteristic_sets_empty_dataset() {
        let ds = StoreBuilder::new().freeze();
        assert!(ds.char_sets().is_empty());
        assert_eq!(ds.char_sets().star(&[Id(0)]).tuples, 0.0);
    }
}
