//! The query engine facade: prepare (lower + optimize) and execute.
//!
//! `prepare` is deliberately cheap relative to `execute`: the parameter
//! curation pipeline calls it once per candidate binding to obtain the
//! `Cout`-optimal plan and its estimated cost *without* running the query
//! (§III of the paper defines parameter classes purely over optimal plans
//! and their costs). `execute` then runs the chosen plan with full
//! instrumentation: wall time and measured `Cout`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use parambench_rdf::dict::Id;
use parambench_rdf::index::IndexOrder;
use parambench_rdf::store::Dataset;
use parambench_rdf::term::Term;

use crate::ast::{Element, Expr, Projection, SelectQuery, TriplePattern, VarOrTerm};
use crate::cardinality::Estimator;
use crate::error::QueryError;
use crate::exec::{ExecConfig, ExecStats, OrderExec, UNBOUND};
use crate::modifiers::{
    Distinct, GroupFold, OrderedGroupFold, RowKeys, Slice, SortedDistinct, TopK,
};
use crate::optimizer::{optimize_with, reestimate, OrderPrefs};
use crate::physical::{
    self, Batch, BoxedOperator, CoutBucket, FilterEval, Gather, HashJoinProbe, IndexScan,
    LeftOuterJoin, ParallelSource, Project, UnionAll,
};
use crate::plan::{
    ModifierPlan, PlanNode, PlanSignature, PlannedPattern, Slot, SpillMode, TableColSource,
};
use crate::results::{
    decode_bindings, finalize_bindings, finalize_table, table_from_bindings, table_from_groups,
    OutVal, ResultSet,
};
use crate::spill::{ExternalGroupFold, ExternalSorter, SortedRows};
use crate::template::{Binding, QueryTemplate};

/// An optimized OPTIONAL group.
#[derive(Debug, Clone)]
struct OptionalPlan {
    plan: PlanNode,
    /// Variable slots shared with the required part (outer join keys).
    join_vars: Vec<usize>,
    /// Filters scoped to the optional group.
    filters: Vec<Expr>,
}

/// An optimized `{A} UNION {B}` group: each branch is its own BGP plan plus
/// branch-scoped filters. Branches are validated to bind the same variable
/// set, so the concatenated table has a uniform schema.
#[derive(Debug, Clone)]
struct UnionPlan {
    branches: Vec<(PlanNode, Vec<Expr>)>,
    /// Variable slots shared with the part of the query evaluated before
    /// this union (inner join keys; empty when the union is the base).
    join_vars: Vec<usize>,
}

/// A fully prepared (lowered + optimized) query, ready to execute.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Variable name per slot.
    var_names: Vec<String>,
    /// The required basic graph pattern (absent when the query body is a
    /// bare UNION).
    bgp_plan: Option<PlanNode>,
    unions: Vec<UnionPlan>,
    optionals: Vec<OptionalPlan>,
    filters: Vec<Expr>,
    /// The lowered solution-modifier stack (DISTINCT, aggregation,
    /// ORDER BY, LIMIT/OFFSET), validated at prepare time.
    pub modifiers: ModifierPlan,
    /// Structural signature of the full plan (required + optional parts).
    pub signature: PlanSignature,
    /// Estimated `Cout` of the plan (required BGP + optional BGPs + outer joins).
    pub est_cout: f64,
    /// Estimated cardinality of the required BGP result.
    pub est_card: f64,
    /// Estimated number of *result* rows after all solution modifiers
    /// (grouping, DISTINCT, OFFSET/LIMIT) — the modifier-aware companion
    /// of `est_card`.
    pub est_result_card: f64,
    /// The variable-slot sequence the pipeline's output arrives sorted by
    /// (the required plan's delivered order; UNION-as-base delivers none).
    /// Filters, OPTIONAL joins and base-side UNION joins all stream the
    /// base, so the base order survives to the modifier boundary — what
    /// sort elimination checks against.
    pub delivered_order: Vec<usize>,
}

impl Prepared {
    /// The optimized required-BGP join tree (absent for bare-UNION bodies).
    pub fn plan(&self) -> Option<&PlanNode> {
        self.bgp_plan.as_ref()
    }

    /// Multi-line EXPLAIN rendering.
    pub fn explain(&self) -> String {
        let mut out = format!(
            "signature: {}\nest_cout: {:.1}\nest_card: {:.1}\nest_result_card: {:.1}\nmodifiers: {}\n",
            self.signature,
            self.est_cout,
            self.est_card,
            self.est_result_card,
            self.modifiers.render()
        );
        if let Some(plan) = &self.bgp_plan {
            out.push_str(&plan.render(0));
        }
        for (i, u) in self.unions.iter().enumerate() {
            out.push_str(&format!("UNION #{i} (join on {:?})\n", u.join_vars));
            for (b, (plan, _)) in u.branches.iter().enumerate() {
                out.push_str(&format!("  branch {b}:\n"));
                out.push_str(&plan.render(2));
            }
        }
        for (i, opt) in self.optionals.iter().enumerate() {
            out.push_str(&format!("OPTIONAL #{i} (join on {:?})\n", opt.join_vars));
            out.push_str(&opt.plan.render(1));
        }
        out
    }
}

/// Result of executing a prepared query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The decoded result table.
    pub results: ResultSet,
    /// Wall-clock execution time (plan execution + modifiers, not prepare).
    pub wall_time: Duration,
    /// Measured `Cout`: total intermediate tuples produced by all joins.
    pub cout: u64,
    /// Full operator instrumentation.
    pub stats: ExecStats,
}

/// The base pipeline before modifier operators: either a plain serial
/// operator chain, or a "pure" morsel-parallel source (a qualified BGP
/// with nothing stacked on top) that the engine can still consume worker-
/// side (parallel aggregation) instead of through a [`Gather`].
enum Pipeline<'a> {
    Serial(BoxedOperator<'a>),
    Parallel(ParallelSource<'a>),
}

impl<'a> Pipeline<'a> {
    /// The pull-based view: parallel sources are wrapped in a [`Gather`]
    /// that merges worker batches in morsel order.
    fn into_operator(self) -> BoxedOperator<'a> {
        match self {
            Pipeline::Serial(op) => op,
            Pipeline::Parallel(src) => Box::new(Gather::new(src)),
        }
    }
}

/// What remains of the plain (non-aggregate) modifier epilogue after the
/// streaming operators are stacked — produced by `Engine::plain_tail`,
/// consumed either all at once (`Engine::finish_plain`) or incrementally
/// ([`Engine::stream`]).
enum PlainTail<'a> {
    /// The operator already emits final rows in final order (projection,
    /// streaming DISTINCT, Slice/TopK applied) — drain and decode.
    Rows(BoxedOperator<'a>),
    /// The external merge sort's streaming cursor (ORDER BY without LIMIT
    /// under a memory budget), with `skip` OFFSET rows still to drop.
    Sorted { merged: SortedRows<'a>, cols: Vec<usize>, skip: usize },
    /// A materializing path (sort-aware DISTINCT, the in-memory full
    /// sort) — already finalized.
    Table(ResultSet),
}

/// An incrementally drained query result: the serving layer's per-client
/// output. Rows stream straight off the batched Volcano pipeline (or the
/// external merge sort's run cursor) as the consumer pulls — a client
/// reading the first rows of a large result never materializes the rest.
/// Materializing shapes (aggregation, the in-memory full sort, DISTINCT
/// under unprojected sort keys) still compute their table up front at
/// construction and stream the finished rows out.
///
/// The same epilogue decisions as [`Engine::execute`] drive it (they share
/// one implementation), so the streamed rows, their order and the final
/// [`ExecStats`] are bit-identical to the materialized run's.
pub struct RowStream<'a> {
    ds: &'a Dataset,
    columns: Vec<String>,
    inner: StreamInner<'a>,
    stats: ExecStats,
    started: Instant,
}

enum StreamInner<'a> {
    /// Decode rows straight off pipeline batches.
    Pipeline {
        op: BoxedOperator<'a>,
        /// Pipeline-schema column per output column.
        cols: Vec<usize>,
        batch: Option<Batch>,
        /// Next row within `batch`.
        next: usize,
        /// Reusable row buffer (pipeline schema width).
        row: Vec<Id>,
        done: bool,
    },
    /// The external merge sort's cursor.
    Sorted { merged: SortedRows<'a>, cols: Vec<usize>, skip: usize },
    /// Materialized rows (aggregation and the other blocking shapes).
    Table(std::vec::IntoIter<Vec<OutVal>>),
    /// Trivially empty (LIMIT 0).
    Done,
}

/// Final accounting of a drained [`RowStream`] (see [`RowStream::finish`]).
#[derive(Debug, Clone)]
pub struct StreamEnd {
    /// Full operator instrumentation for the work performed so far.
    pub stats: ExecStats,
    /// Measured `Cout` (required + optional join outputs) so far.
    pub cout: u64,
    /// Wall-clock time from stream construction to `finish`.
    pub wall_time: Duration,
}

impl<'a> RowStream<'a> {
    /// Output column names, in projection order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Pulls the next result row, or `None` when the stream is exhausted.
    pub fn next_row(&mut self) -> Result<Option<Vec<OutVal>>, QueryError> {
        let RowStream { ds, inner, stats, .. } = self;
        match inner {
            StreamInner::Done => Ok(None),
            StreamInner::Table(rows) => Ok(rows.next()),
            StreamInner::Sorted { merged, cols, skip } => loop {
                match merged.next_row()? {
                    None => return Ok(None),
                    Some(sorted_row) => {
                        if *skip > 0 {
                            *skip -= 1;
                            continue;
                        }
                        return Ok(Some(Engine::decode_cols(cols, &sorted_row, ds)));
                    }
                }
            },
            StreamInner::Pipeline { op, cols, batch, next, row, done } => loop {
                if *done {
                    return Ok(None);
                }
                if let Some(b) = batch {
                    if *next < b.len() {
                        b.read_row(*next, row);
                        *next += 1;
                        return Ok(Some(Engine::decode_cols(cols, row, ds)));
                    }
                    stats.shrink(b.len());
                    *batch = None;
                }
                match op.next_batch(stats) {
                    Some(b) => {
                        *next = 0;
                        *batch = Some(b);
                    }
                    None => {
                        *done = true;
                        // An operator that hit an invariant violation stops
                        // producing and records the error; surface it
                        // instead of a clean end-of-stream.
                        if let Some(err) = stats.exec_error.take() {
                            return Err(QueryError::Exec(err));
                        }
                    }
                }
            },
        }
    }

    /// Ends the stream and returns its accounting. Counters reflect the
    /// work performed up to this point — call after draining (or after
    /// abandoning early: an early finish simply stops pulling upstream,
    /// which is exactly the streaming win).
    pub fn finish(self) -> StreamEnd {
        let cout = self.stats.cout + self.stats.cout_optional;
        StreamEnd { cout, wall_time: self.started.elapsed(), stats: self.stats }
    }

    /// Drains every remaining row into a [`QueryOutput`] — the bridge back
    /// to the materialized API (and the differential anchor: this must
    /// equal [`Engine::execute`]'s output bit for bit).
    pub fn collect_output(mut self) -> Result<QueryOutput, QueryError> {
        let mut rows = Vec::new();
        while let Some(r) = self.next_row()? {
            rows.push(r);
        }
        let columns = std::mem::take(&mut self.columns);
        let end = self.finish();
        Ok(QueryOutput {
            results: ResultSet { columns, rows },
            wall_time: end.wall_time,
            cout: end.cout,
            stats: end.stats,
        })
    }
}

impl Iterator for RowStream<'_> {
    type Item = Result<Vec<OutVal>, QueryError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_row().transpose()
    }
}

/// The parameter **cardinality class** of one (template, binding) pair —
/// the plan cache's constant-sensitivity key.
///
/// A cached plan skeleton may only be reused for a binding when every
/// input the optimizer's choices were derived from is unchanged. All such
/// constant-sensitive inputs flow through per-pattern scan statistics, so
/// the key records, per triple pattern (in `PlannedPattern::idx` order):
///
/// * the *shape* of each parameterized position (bound id vs
///   dictionary-absent term),
/// * the exact scan cardinality of the pattern under this binding,
/// * the distinct-value count of each free (variable) position,
/// * the bound predicate id when the predicate itself is parameterized
///   (character-set star statistics and predicate totals depend on the
///   predicate's identity, not just its counts).
///
/// Bound subject/object ids are deliberately *excluded*: only the
/// statistics they induce matter to the optimizer, so bindings with
/// equivalent statistics share one cache entry. Key equality therefore
/// implies identical scan estimates, identical DP join order and
/// join-method choices, identical estimate fields and identical adaptive
/// bind-join decisions at lowering — which is why a cached-rebind run is
/// bit-identical to a cold prepare (pinned by the differential sweep in
/// `tests/concurrent_serve.rs`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanClass(Vec<u64>);

/// A template's triple patterns in exactly the order `Engine::prepare`
/// assigns `PlannedPattern::idx`: top-level (required) triples first, then
/// UNION branch triples (group by group, branch by branch), then OPTIONAL
/// triples — the provenance map the plan-cache rebind is keyed by.
fn template_patterns(query: &SelectQuery) -> Vec<&TriplePattern> {
    let mut out = Vec::new();
    for el in &query.where_clause {
        if let Element::Triple(t) = el {
            out.push(t);
        }
    }
    for el in &query.where_clause {
        if let Element::Union(branches) = el {
            for branch in branches {
                for b_el in branch {
                    if let Element::Triple(t) = b_el {
                        out.push(t);
                    }
                }
            }
        }
    }
    for el in &query.where_clause {
        if let Element::Optional(inner) = el {
            for o_el in inner {
                if let Element::Triple(t) = o_el {
                    out.push(t);
                }
            }
        }
    }
    out
}

/// Replaces, in `cached` (an already-instantiated expression), the
/// constant at every `%param` site of the structurally identical template
/// expression `tmpl` with the new binding's term. Instantiation only ever
/// rewrites `Param` nodes to `Const`, so the two trees are congruent.
fn rebind_expr(cached: &mut Expr, tmpl: &Expr, binding: &Binding) {
    match (&mut *cached, tmpl) {
        (c, Expr::Param(p)) => {
            *c = Expr::Const(binding.get(p).expect("binding validated").clone());
        }
        (Expr::Not(c), Expr::Not(t)) => rebind_expr(c, t, binding),
        (Expr::Binary(_, ca, cb), Expr::Binary(_, ta, tb)) => {
            rebind_expr(ca, ta, binding);
            rebind_expr(cb, tb, binding);
        }
        _ => {}
    }
}

/// The query engine over one frozen dataset.
///
/// # Quickstart
///
/// The front-door flow — build a dataset, prepare a parameterized
/// template, execute with instrumentation. This is a doc-test, so
/// `cargo test` exercises exactly the snippet shown here;
/// `examples/quickstart.rs` extends it with dataset generation and
/// parameter curation, which live in downstream crates.
///
/// ```
/// use parambench_rdf::{StoreBuilder, Term};
/// use parambench_sparql::{Binding, Engine, QueryTemplate};
///
/// // 1. A tiny product catalog (write-once: freeze() makes it immutable).
/// let mut b = StoreBuilder::new();
/// for i in 0..4i64 {
///     let p = Term::iri(format!("product/{i}"));
///     let ty = if i < 3 { "t/a" } else { "t/b" };
///     b.insert(p.clone(), Term::iri("type"), Term::iri(ty));
///     b.insert(p, Term::iri("price"), Term::integer(10 * (i + 1)));
/// }
/// let ds = b.freeze();
///
/// // 2. One engine per dataset. `prepare` finds the Cout-optimal plan
/// //    without running it (the curation pipeline's cheap probe);
/// //    `execute` then streams it with full instrumentation.
/// let engine = Engine::new(&ds);
/// let template = QueryTemplate::parse(
///     "cheapest-of-type",
///     "SELECT ?p ?c WHERE { ?p <type> %type . ?p <price> ?c } \
///      ORDER BY ASC(?c) LIMIT 2",
/// )
/// .unwrap();
/// let binding = Binding::new().with("type", Term::iri("t/a"));
/// let prepared = engine.prepare_template(&template, &binding).unwrap();
/// assert!(prepared.est_result_card <= 2.0); // modifier-aware estimate
///
/// let out = engine.execute(&prepared).unwrap();
/// assert_eq!(out.results.len(), 2);
/// assert_eq!(out.results.rows[0][1].as_num(), Some(10.0)); // cheapest
/// assert!(out.cout >= 1); // measured Cout: total join output tuples
/// ```
pub struct Engine<'a> {
    ds: &'a Dataset,
    est: Estimator<'a>,
    exec: ExecConfig,
    /// Base directory the out-of-core layer creates its per-run spill
    /// spaces under ([`crate::spill::SpillSpace`]).
    spill_base: PathBuf,
}

impl<'a> Engine<'a> {
    /// Creates an engine (and its statistics/estimator caches) for a
    /// dataset, with the default (single-worker) [`ExecConfig`].
    pub fn new(ds: &'a Dataset) -> Self {
        Self::with_exec_config(ds, ExecConfig::default())
    }

    /// Creates an engine with an explicit parallel-execution configuration.
    pub fn with_exec_config(ds: &'a Dataset, exec: ExecConfig) -> Self {
        Engine { ds, est: Estimator::new(ds), exec, spill_base: std::env::temp_dir() }
    }

    /// The engine's default parallel-execution configuration.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec
    }

    /// Replaces the engine's default parallel-execution configuration.
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// The directory spill files are created under (the system temp dir
    /// by default). Each spilling execution makes its own uniquely-named
    /// subdirectory there and removes it when the run finishes.
    pub fn spill_dir(&self) -> &Path {
        &self.spill_base
    }

    /// Redirects spill files to `dir`. The directory itself need not
    /// exist yet; an unusable path surfaces as
    /// [`QueryError::Exec`] from the first execution that actually spills.
    pub fn set_spill_dir(&mut self, dir: impl Into<PathBuf>) {
        self.spill_base = dir.into();
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// The cardinality estimator (exposed for the curation profiler).
    pub fn estimator(&self) -> &Estimator<'a> {
        &self.est
    }

    /// Lowers and optimizes a concrete query.
    pub fn prepare(&self, query: &SelectQuery) -> Result<Prepared, QueryError> {
        if let Some(p) = query.params().first() {
            return Err(QueryError::UnboundParameter(p.clone()));
        }

        // Assign variable slots across the whole query.
        let mut var_names: Vec<String> = Vec::new();
        let mut slot_of: HashMap<String, usize> = HashMap::new();
        let slot =
            |name: &str, var_names: &mut Vec<String>, slot_of: &mut HashMap<String, usize>| {
                if let Some(&s) = slot_of.get(name) {
                    s
                } else {
                    let s = var_names.len();
                    var_names.push(name.to_string());
                    slot_of.insert(name.to_string(), s);
                    s
                }
            };

        // Split the where clause.
        let mut required: Vec<TriplePattern> = Vec::new();
        let mut filters: Vec<Expr> = Vec::new();
        let mut optional_groups: Vec<(Vec<TriplePattern>, Vec<Expr>)> = Vec::new();
        let mut union_groups: Vec<Vec<(Vec<TriplePattern>, Vec<Expr>)>> = Vec::new();
        // Flattens a group of triples+filters (no further nesting).
        let flat_group = |elements: &[Element],
                          context: &str|
         -> Result<(Vec<TriplePattern>, Vec<Expr>), QueryError> {
            let mut pats = Vec::new();
            let mut fs = Vec::new();
            for el in elements {
                match el {
                    Element::Triple(t) => pats.push(t.clone()),
                    Element::Filter(f) => fs.push(f.clone()),
                    _ => {
                        return Err(QueryError::Unsupported(format!(
                            "nested groups inside {context}"
                        )))
                    }
                }
            }
            if pats.is_empty() {
                return Err(QueryError::Unsupported(format!("empty {context} group")));
            }
            Ok((pats, fs))
        };
        for el in &query.where_clause {
            match el {
                Element::Triple(t) => required.push(t.clone()),
                Element::Filter(f) => filters.push(f.clone()),
                Element::Optional(inner) => {
                    optional_groups.push(flat_group(inner, "OPTIONAL")?);
                }
                Element::Union(branches) => {
                    let mut flat = Vec::with_capacity(branches.len());
                    for branch in branches {
                        flat.push(flat_group(branch, "UNION")?);
                    }
                    union_groups.push(flat);
                }
            }
        }
        if required.is_empty() && union_groups.is_empty() {
            return Err(QueryError::Unsupported("query has no required triple patterns".into()));
        }

        // Lower required patterns; pattern idx = syntactic position.
        let lower = |t: &TriplePattern,
                     idx: usize,
                     var_names: &mut Vec<String>,
                     slot_of: &mut HashMap<String, usize>|
         -> Result<PlannedPattern, QueryError> {
            let mut slots = [Slot::Absent; 3];
            for (i, vot) in [&t.subject, &t.predicate, &t.object].into_iter().enumerate() {
                slots[i] = match vot {
                    VarOrTerm::Var(v) => Slot::Var(slot(v, var_names, slot_of)),
                    VarOrTerm::Term(term) => match self.ds.lookup(term) {
                        Some(id) => Slot::Bound(id),
                        None => Slot::Absent,
                    },
                    VarOrTerm::Param(p) => return Err(QueryError::UnboundParameter(p.clone())),
                };
            }
            Ok(PlannedPattern { idx, slots })
        };

        let mut next_idx = 0;
        let mut est_cout = 0.0;
        let mut sig = String::new();

        // Required BGP (if any).
        let (bgp_plan, mut running_est) = if required.is_empty() {
            (None, None)
        } else {
            let mut planned: Vec<PlannedPattern> = Vec::with_capacity(required.len());
            for t in &required {
                planned.push(lower(t, next_idx, &mut var_names, &mut slot_of)?);
                next_idx += 1;
            }
            // Interesting-order preferences: when the ORDER BY keys form a
            // direction-uniform run of plain pattern variables, a plan
            // delivering that slot sequence escapes the sort penalty in the
            // root selection (descending keys only for bare single-pattern
            // scans, which the descending order service can serve).
            let prefs = OrderPrefs {
                sort: order_pref_slots(query, &slot_of, planned.len() == 1),
                mode: self.exec.order_exec,
            };
            let plan = optimize_with(&planned, &self.est, &prefs)?;
            let est = reestimate(&plan, &self.est);
            est_cout += plan.est_cout();
            sig = plan.signature().0;
            (Some(plan), Some(est))
        };
        let mut seen_vars: Vec<usize> =
            bgp_plan.as_ref().map(|p| p.var_slots()).unwrap_or_default();

        // UNION groups: each branch its own BGP; branches must bind the same
        // variable set so the concatenated table has one schema.
        let mut unions: Vec<UnionPlan> = Vec::new();
        for branches in &union_groups {
            let mut lowered_branches: Vec<(PlanNode, Vec<Expr>)> = Vec::new();
            let mut branch_vars: Option<Vec<usize>> = None;
            let mut union_sig = String::new();
            let mut union_card = 0.0;
            let mut union_est: Option<crate::cardinality::Estimate> = None;
            for (pats, fs) in branches {
                let mut lowered = Vec::with_capacity(pats.len());
                for t in pats {
                    lowered.push(lower(t, next_idx, &mut var_names, &mut slot_of)?);
                    next_idx += 1;
                }
                let plan = optimize_with(
                    &lowered,
                    &self.est,
                    &OrderPrefs { sort: vec![], mode: self.exec.order_exec },
                )?;
                let mut vars = plan.var_slots();
                vars.sort_unstable();
                match &branch_vars {
                    None => branch_vars = Some(vars),
                    Some(first) => {
                        if *first != vars {
                            return Err(QueryError::Unsupported(
                                "UNION branches must bind the same variables".into(),
                            ));
                        }
                    }
                }
                let est = reestimate(&plan, &self.est);
                est_cout += plan.est_cout();
                union_card += est.card;
                union_est = Some(match union_est {
                    // Approximate the union's distinct counts by the larger
                    // branch (costs only guide banding, not correctness).
                    Some(prev) if prev.card >= est.card => prev,
                    _ => est,
                });
                if !union_sig.is_empty() {
                    union_sig.push('|');
                }
                union_sig.push_str(&plan.signature().0);
                lowered_branches.push((plan, fs.clone()));
            }
            let vars = branch_vars.expect("validated non-empty union");
            let join_vars: Vec<usize> =
                vars.iter().copied().filter(|v| seen_vars.contains(v)).collect();
            let mut est = union_est.expect("non-empty union");
            est.card = union_card;
            match running_est.take() {
                Some(base) => {
                    let joined = self.est.join(&base, &est, &join_vars);
                    est_cout += joined.card;
                    running_est = Some(joined);
                }
                None => running_est = Some(est),
            }
            for v in vars {
                if !seen_vars.contains(&v) {
                    seen_vars.push(v);
                }
            }
            if !sig.is_empty() {
                sig.push('+');
            }
            sig.push_str(&format!("UNION({union_sig})"));
            unions.push(UnionPlan { branches: lowered_branches, join_vars });
        }

        let bgp_est = running_est.expect("base BGP or union present");
        let required_vars = seen_vars.clone();

        // Optional groups: separate optimization; pattern idx continues the
        // numbering so signatures stay unambiguous.
        let mut optionals = Vec::new();
        for (pats, fs) in &optional_groups {
            let mut lowered = Vec::with_capacity(pats.len());
            for t in pats {
                lowered.push(lower(t, next_idx, &mut var_names, &mut slot_of)?);
                next_idx += 1;
            }
            let plan = optimize_with(
                &lowered,
                &self.est,
                &OrderPrefs { sort: vec![], mode: self.exec.order_exec },
            )?;
            let opt_est = reestimate(&plan, &self.est);
            let join_vars: Vec<usize> =
                plan.var_slots().into_iter().filter(|v| required_vars.contains(v)).collect();
            est_cout += plan.est_cout();
            // The outer join's output is at least the required side; count
            // the expected matched rows like an inner join.
            let joined = self.est.join(&bgp_est, &opt_est, &join_vars);
            est_cout += joined.card.max(bgp_est.card);
            sig.push_str("+OPT(");
            sig.push_str(&plan.signature().0);
            sig.push(')');
            optionals.push(OptionalPlan { plan, join_vars, filters: fs.clone() });
        }

        // Validate filter variables exist.
        for f in &filters {
            let mut vars = Vec::new();
            f.collect_vars(&mut vars);
            for v in vars {
                if !slot_of.contains_key(&v) {
                    return Err(QueryError::UnknownVariable(v));
                }
            }
        }
        // Validate projections (plain vars must exist; aggregate shapes are
        // validated by the modifier lowering below).
        for p in &query.projections {
            if let Projection::Var(v) = p {
                if !slot_of.contains_key(v) {
                    return Err(QueryError::UnknownVariable(v.clone()));
                }
            }
        }

        // Lower + validate the solution-modifier stack, and fold it into
        // the output-cardinality estimate.
        let modifiers = ModifierPlan::lower(query, &slot_of)?;
        let est_result_card = self.est.modifier_output_card(&bgp_est, &modifiers);
        let delivered_order =
            bgp_plan.as_ref().map(|p| p.delivered_order(self.ds)).unwrap_or_default();

        Ok(Prepared {
            var_names,
            est_card: bgp_est.card,
            bgp_plan,
            unions,
            optionals,
            filters,
            modifiers,
            signature: PlanSignature(sig),
            est_cout,
            est_result_card,
            delivered_order,
        })
    }

    /// Lowers the prepared query's pattern part (BGP + UNION + OPTIONAL +
    /// FILTER) to the streaming operator pipeline, without any modifier
    /// operators.
    ///
    /// The required BGP is lowered through the morsel-parallel path
    /// ([`crate::plan::PlanNode::lower_parallel`]) when it qualifies under
    /// `exec`; shared hash-build sides are materialized here, against
    /// `stats`. When nothing else (UNION / OPTIONAL / FILTER) is stacked
    /// on top, the parallel source is returned directly so the modifier
    /// epilogue can consume it worker-side.
    fn build_pipeline(
        &self,
        prepared: &Prepared,
        exec: &ExecConfig,
        stats: &mut ExecStats,
    ) -> Pipeline<'a> {
        // Plain LIMIT queries (no aggregation, no unsatisfied ORDER BY)
        // are output-bound: the serial Slice stops batch-granularly after
        // ~`limit` rows, while parallel early exit is wave-granular — up to
        // a whole wave of surplus scans for zero win. They stay serial.
        // An ORDER BY the delivered order eliminates behaves exactly like
        // no ORDER BY here (the sort is gone, the Slice exits early).
        // Aggregation and real sorts drain the pipeline fully, so for them
        // the fan-out is pure gain. (Shape-and-config derived,
        // thread-independent: the determinism guarantee is unaffected.)
        let m = &prepared.modifiers;
        let sort_gone = m.order_by.is_empty() || self.sort_eliminated(prepared, exec);
        let output_bound = m.aggregate.is_none() && sort_gone && m.limit.is_some();
        let desc_scan = self.desc_elimination(prepared, exec);
        let base = prepared.bgp_plan.as_ref().map(|plan| {
            // ORDER BY ... DESC served by the index: the bare scan lowers
            // to run-reversed descending iteration (inherently serial) and
            // the epilogue's sort disappears, mirroring the ascending
            // elimination.
            if let Some((pattern, order, runs)) = desc_scan {
                let scan: BoxedOperator<'_> =
                    Box::new(IndexScan::descending(self.ds, pattern, order, runs));
                return Pipeline::Serial(scan);
            }
            let parallel = if output_bound {
                None
            } else {
                plan.lower_parallel(self.ds, CoutBucket::Required, exec, stats)
            };
            match parallel {
                Some(src) => Pipeline::Parallel(src),
                None => Pipeline::Serial(plan.lower_with(
                    self.ds,
                    CoutBucket::Required,
                    exec.order_exec,
                )),
            }
        });
        if prepared.unions.is_empty()
            && prepared.optionals.is_empty()
            && prepared.filters.is_empty()
        {
            if let Some(base) = base {
                return base;
            }
        }
        let mut op: Option<BoxedOperator<'_>> = base.map(Pipeline::into_operator);

        for u in &prepared.unions {
            let mut branches: Vec<BoxedOperator<'_>> = Vec::with_capacity(u.branches.len());
            for (plan, branch_filters) in &u.branches {
                let mut branch = plan.lower_with(self.ds, CoutBucket::Required, exec.order_exec);
                if !branch_filters.is_empty() {
                    branch = Box::new(FilterEval::new(
                        branch,
                        branch_filters.clone(),
                        &prepared.var_names,
                        self.ds,
                    ));
                }
                branches.push(branch);
            }
            let union: BoxedOperator<'_> = Box::new(UnionAll::new(branches));
            op = Some(match op {
                None => union,
                // Build the (bounded) union side, stream the base past it.
                Some(base) => Box::new(HashJoinProbe::new(
                    base,
                    union,
                    u.join_vars.clone(),
                    true,
                    format!("UNION⋈{:?}", u.join_vars),
                    CoutBucket::Required,
                )),
            });
        }

        let mut op = op.expect("prepare guarantees a base");

        for opt in &prepared.optionals {
            let mut right = opt.plan.lower_with(self.ds, CoutBucket::Optional, exec.order_exec);
            if !opt.filters.is_empty() {
                right = Box::new(FilterEval::new(
                    right,
                    opt.filters.clone(),
                    &prepared.var_names,
                    self.ds,
                ));
            }
            op = Box::new(LeftOuterJoin::new(op, right, opt.join_vars.clone()));
        }

        if !prepared.filters.is_empty() {
            op = Box::new(FilterEval::new(
                op,
                prepared.filters.clone(),
                &prepared.var_names,
                self.ds,
            ));
        }
        Pipeline::Serial(op)
    }

    /// Executes a prepared query through the batched Volcano pipeline (the
    /// default path), with the solution modifiers **pushed into the
    /// physical layer** wherever their combination allows:
    ///
    /// * aggregation folds batches into per-group accumulators as they
    ///   stream (`GroupFold`) — the grouped input is never materialized;
    /// * DISTINCT deduplicates raw `Id` rows pre-decode ([`Distinct`]);
    /// * ORDER BY + LIMIT becomes a bounded-heap [`TopK`];
    /// * LIMIT/OFFSET becomes a [`Slice`] that stops pulling upstream
    ///   batches once satisfied, so scans and joins cease work early.
    ///
    /// Combinations that cannot stream (ORDER BY without LIMIT; DISTINCT
    /// under unprojected sort keys) fall back to the solution-table path at
    /// the result boundary, which sorts by per-row precomputed keys.
    pub fn execute(&self, prepared: &Prepared) -> Result<QueryOutput, QueryError> {
        self.run(prepared, true, &self.exec)
    }

    /// Executes with an explicit [`ExecConfig`], overriding the engine's
    /// default for this run — how the benchmark driver applies its
    /// thread-count knob without rebuilding the engine. Rows, row order
    /// and measured `Cout` are identical at every `threads` value (see
    /// [`ExecConfig`]); only wall time changes.
    pub fn execute_with(
        &self,
        prepared: &Prepared,
        exec: &ExecConfig,
    ) -> Result<QueryOutput, QueryError> {
        self.run(prepared, true, exec)
    }

    /// Executes with every solution modifier applied **after** full
    /// materialization at the result boundary — the pre-pushdown behaviour.
    /// Kept as the in-engine baseline: differential tests assert identical
    /// results, and the pushdown's `peak_tuples`/wall-time advantage is
    /// measured against this path in `benches/engine.rs` and the
    /// integration suite.
    pub fn execute_unpushed(&self, prepared: &Prepared) -> Result<QueryOutput, QueryError> {
        self.run(prepared, false, &self.exec)
    }

    fn run(
        &self,
        prepared: &Prepared,
        push: bool,
        exec: &ExecConfig,
    ) -> Result<QueryOutput, QueryError> {
        let start = Instant::now();
        let mut stats = ExecStats::default();
        // LIMIT 0 is provably empty on every pushed path: skip all
        // execution before the pipeline (and any eager shared hash builds)
        // exists, so nothing is ever scanned.
        if push && prepared.modifiers.limit == Some(0) {
            let results = ResultSet { columns: prepared.modifiers.out_names(), rows: Vec::new() };
            return Ok(QueryOutput { results, wall_time: start.elapsed(), cout: 0, stats });
        }
        let pipeline = self.build_pipeline(prepared, exec, &mut stats);
        let results = if push {
            self.finish_pushed(prepared, pipeline, exec, &mut stats)?
        } else {
            // Baseline: project to the needed columns, drain everything,
            // then run the whole modifier stack on the materialized table.
            let m = &prepared.modifiers;
            let op = pipeline.into_operator();
            let needed = m.input_slots();
            let op = if needed.len() < op.schema().len() {
                Box::new(Project::new(op, &needed)) as BoxedOperator<'_>
            } else {
                op
            };
            let bindings = physical::drain(op, &mut stats);
            finalize_bindings(&bindings, m, self.ds, &mut stats)?
        };
        // A pipeline invariant violation (ExecStats::exec_error) outranks
        // whatever rows were drained: the operator protocol has no Result
        // channel, so the error surfaces here, at the run boundary.
        if let Some(err) = stats.exec_error.take() {
            return Err(QueryError::Exec(err));
        }
        let wall_time = start.elapsed();
        let cout = stats.cout + stats.cout_optional;
        Ok(QueryOutput { results, wall_time, cout, stats })
    }

    /// Executes a prepared query as an incrementally drained [`RowStream`]
    /// (the serving layer's per-client result). The pipeline-shape and
    /// modifier decisions are shared with [`Engine::execute`]'s pushed
    /// path, so the streamed rows, their order and the final stats are
    /// bit-identical to the materialized run's; shapes that must
    /// materialize (aggregation, in-memory full sorts, sort-aware
    /// DISTINCT) compute their table here and stream the finished rows.
    ///
    /// The stream borrows only the dataset, not the engine or the
    /// `Prepared` — a per-request engine value can be dropped while its
    /// stream is still being drained.
    pub fn stream(
        &self,
        prepared: &Prepared,
        exec: &ExecConfig,
    ) -> Result<RowStream<'a>, QueryError> {
        let started = Instant::now();
        let mut stats = ExecStats::default();
        let m = &prepared.modifiers;
        let columns = m.out_names();
        // Same LIMIT-0 short-circuit as `run`: nothing is ever scanned.
        if m.limit == Some(0) {
            return Ok(RowStream {
                ds: self.ds,
                columns,
                inner: StreamInner::Done,
                stats,
                started,
            });
        }
        let pipeline = self.build_pipeline(prepared, exec, &mut stats);
        let inner = if m.aggregate.is_some() {
            // Aggregation materializes its groups regardless; reuse the
            // pushed epilogue wholesale and stream the finished table.
            let results = self.finish_pushed(prepared, pipeline, exec, &mut stats)?;
            StreamInner::Table(results.rows.into_iter())
        } else {
            let order_on = exec.order_exec != OrderExec::Off;
            let sort_elim = order_on
                && (self.order_satisfied(m, &prepared.delivered_order)
                    || self.desc_elimination(prepared, exec).is_some());
            let delivered: &[usize] = if order_on { &prepared.delivered_order } else { &[] };
            match self.plain_tail(prepared, pipeline, exec, &mut stats, sort_elim, delivered)? {
                PlainTail::Rows(op) => {
                    let cols = Self::out_cols(m, op.schema());
                    let row = vec![UNBOUND; op.schema().len()];
                    StreamInner::Pipeline { op, cols, batch: None, next: 0, row, done: false }
                }
                PlainTail::Sorted { merged, cols, skip } => {
                    StreamInner::Sorted { merged, cols, skip }
                }
                PlainTail::Table(results) => StreamInner::Table(results.rows.into_iter()),
            }
        };
        // Materializing shapes already ran the pipeline: surface any
        // recorded invariant violation now. Lazy pipelines check again at
        // exhaustion (RowStream::next_row).
        if let Some(err) = stats.exec_error.take() {
            return Err(QueryError::Exec(err));
        }
        Ok(RowStream { ds: self.ds, columns, inner, stats, started })
    }

    /// The pushed-modifier epilogue: stacks modifier operators onto the
    /// pipeline and decodes at the boundary. (`run` already short-circuits
    /// LIMIT 0 before the pipeline exists.) Under an
    /// [`ExecConfig::mem_budget_rows`] budget the blocking stages lower to
    /// their external variants ([`crate::spill`]): the GROUP BY fold
    /// hash-partitions overflow groups to spill files and the full-sort
    /// fallback becomes an external merge sort — with rows, row order and
    /// every deterministic counter identical to the in-memory run.
    fn finish_pushed(
        &self,
        prepared: &Prepared,
        pipeline: Pipeline<'a>,
        exec: &ExecConfig,
        stats: &mut ExecStats,
    ) -> Result<ResultSet, QueryError> {
        let m = &prepared.modifiers;
        let spill_mode = m.spill_mode(prepared.est_result_card, exec.mem_budget_rows);
        // Order-aware eliminations, all derived from the *plan's* delivered
        // order (never from thread count or budget): with the value-ordered
        // dictionary, ascending-id delivery IS ascending ORDER BY order.
        let order_on = exec.order_exec != OrderExec::Off;
        // The descending elimination counts too: build_pipeline derives
        // the same pure decision from the same inputs, so when it lowered
        // the base descending the rows already arrive in final order.
        let sort_elim = order_on
            && (self.order_satisfied(m, &prepared.delivered_order)
                || self.desc_elimination(prepared, exec).is_some());
        let delivered: &[usize] = if order_on { &prepared.delivered_order } else { &[] };

        if let Some(agg) = &m.aggregate {
            // Group-clustered delivery (the group slots are a prefix
            // permutation of the delivered order): fold one group at a
            // time — no hash map, DISTINCT-aggregate sets freed per group
            // — and skip the final sort when ORDER BY follows the same
            // prefix. Serial, unbudgeted pipelines only: the parallel
            // worker fold and the spill fold keep their own machinery.
            let clustered = order_on
                && spill_mode == SpillMode::InMemory
                && Self::clustered(delivered, &agg.group_slots);
            match pipeline {
                Pipeline::Serial(op) if clustered => {
                    let mut op = op;
                    let needed = m.input_slots();
                    if needed.len() < op.schema().len() {
                        op = Box::new(Project::new(op, &needed));
                    }
                    let mut fold = OrderedGroupFold::new(m, agg, op.schema(), self.ds);
                    Self::for_each_row(&mut op, stats, |row, st| {
                        fold.add_row(row, st);
                        Ok(())
                    })?;
                    let (rows, resident) = fold.finish(stats);
                    let out = finalize_table(rows, m, self.ds, false, sort_elim, stats);
                    stats.shrink(resident);
                    return Ok(out);
                }
                // Parallel pipelines keep the worker-side fold (the fan-out
                // is worth more than the one-group residency win).
                other => return self.finish_agg_unclustered(prepared, other, exec, stats),
            }
        }
        self.finish_plain(prepared, pipeline, exec, stats, sort_elim, delivered)
    }

    /// The aggregation epilogue for pipelines whose delivered order does
    /// not cluster the groups (or that run parallel / under a budget):
    /// hash-map folds, external when budgeted — the pre-order-aware paths.
    fn finish_agg_unclustered(
        &self,
        prepared: &Prepared,
        pipeline: Pipeline<'a>,
        exec: &ExecConfig,
        stats: &mut ExecStats,
    ) -> Result<ResultSet, QueryError> {
        let m = &prepared.modifiers;
        let spill_mode = m.spill_mode(prepared.est_result_card, exec.mem_budget_rows);
        let agg = m.aggregate.as_ref().expect("aggregation epilogue");
        {
            if spill_mode != SpillMode::InMemory {
                // Budgeted aggregation: consume the pipeline as one row
                // stream (a parallel source goes through its Gather, so
                // rows arrive in the serial order) and fold it through the
                // spill-capable external GroupFold. The worker-side fold
                // merge below is for the unbudgeted path only — its master
                // fold holds every group, which is exactly what the budget
                // must bound.
                let budget = exec.mem_budget_rows.expect("budgeted mode implies a budget");
                let mut op = pipeline.into_operator();
                let needed = m.input_slots();
                if needed.len() < op.schema().len() {
                    op = Box::new(Project::new(op, &needed));
                }
                let mut fold = ExternalGroupFold::new(
                    agg,
                    op.schema(),
                    self.ds,
                    budget,
                    spill_mode == SpillMode::Eager,
                    self.spill_base.clone(),
                );
                Self::for_each_row(&mut op, stats, |row, st| {
                    fold.add_row(row, st).map_err(QueryError::from)
                })?;
                let rows = fold.finish(m, agg, stats)?;
                return Ok(finalize_table(rows, m, self.ds, false, false, stats));
            }
            // Streaming aggregation. On a pure parallel source the fold
            // itself fans out: every morsel folds into a private GroupFold
            // on its worker, and the partials merge at gather time in
            // morsel-index order — so group first-seen order (and with it
            // the pre-sort output order) matches the serial fold exactly.
            let fold = match pipeline {
                Pipeline::Parallel(src) => {
                    let ds = self.ds;
                    let mut master: Option<GroupFold<'_>> = None;
                    src.process(
                        stats,
                        |mut op, st| {
                            let mut fold = GroupFold::new(agg, op.schema(), ds);
                            let mut row = vec![UNBOUND; op.schema().len()];
                            while let Some(batch) = op.next_batch(st) {
                                for r in 0..batch.len() {
                                    batch.read_row(r, &mut row);
                                    fold.add_row(&row, st);
                                }
                                st.shrink(batch.len());
                            }
                            fold
                        },
                        |partial, stats| match &mut master {
                            None => master = Some(partial),
                            Some(fold) => fold.merge(partial, stats),
                        },
                    );
                    master.expect("qualified parallel plans have at least one morsel")
                }
                Pipeline::Serial(mut op) => {
                    // Project to the group + aggregate input columns, fold
                    // batch-by-batch.
                    let needed = m.input_slots();
                    if needed.len() < op.schema().len() {
                        op = Box::new(Project::new(op, &needed));
                    }
                    let mut fold = GroupFold::new(agg, op.schema(), self.ds);
                    // add_row registers new group state with `stats` while
                    // the input batch is still live; the batch's tuples
                    // then collapse into the accumulators.
                    Self::for_each_row(&mut op, stats, |row, st| {
                        fold.add_row(row, st);
                        Ok(())
                    })?;
                    fold
                }
            };
            let resident = fold.resident();
            let (keys, states) = fold.finish();
            let rows = table_from_groups(keys, states, m, agg);
            let out = finalize_table(rows, m, self.ds, false, false, stats);
            stats.shrink(resident);
            Ok(out)
        }
    }

    /// The non-aggregate epilogue, with the order-aware eliminations:
    /// a delivered order satisfying ORDER BY turns TopK into an early-exit
    /// [`Slice`] and skips every sort (`ExecStats::sorted_rows` stays 0);
    /// a delivered order clustering the projected columns turns the
    /// DISTINCT hash set into O(1) run dedup.
    fn finish_plain(
        &self,
        prepared: &Prepared,
        pipeline: Pipeline<'a>,
        exec: &ExecConfig,
        stats: &mut ExecStats,
        sort_elim: bool,
        delivered: &[usize],
    ) -> Result<ResultSet, QueryError> {
        let m = &prepared.modifiers;
        match self.plain_tail(prepared, pipeline, exec, stats, sort_elim, delivered)? {
            PlainTail::Rows(op) => {
                let bindings = physical::drain(op, stats);
                Ok(decode_bindings(&bindings, m, self.ds))
            }
            PlainTail::Sorted { mut merged, cols, mut skip } => {
                let mut rows = Vec::new();
                while let Some(sorted_row) = merged.next_row()? {
                    if skip > 0 {
                        skip -= 1;
                        continue;
                    }
                    rows.push(Self::decode_cols(&cols, &sorted_row, self.ds));
                }
                Ok(ResultSet { columns: m.out_names(), rows })
            }
            PlainTail::Table(results) => Ok(results),
        }
    }

    /// Stacks the streaming modifier operators of the plain path and
    /// classifies what remains — the shared core of [`Engine::finish_plain`]
    /// (which drains it) and [`Engine::stream`] (which hands it to the
    /// caller row by row). Every decision here is the plain path's: the
    /// two consumers cannot diverge because they share this one function.
    fn plain_tail(
        &self,
        prepared: &Prepared,
        pipeline: Pipeline<'a>,
        exec: &ExecConfig,
        stats: &mut ExecStats,
        sort_elim: bool,
        delivered: &[usize],
    ) -> Result<PlainTail<'a>, QueryError> {
        let m = &prepared.modifiers;
        let spill_mode = m.spill_mode(prepared.est_result_card, exec.mem_budget_rows);
        let mut op = pipeline.into_operator();

        // Plain path: project to the solution-table columns.
        let slots = m.table_slots();
        if slots.len() < op.schema().len() {
            op = Box::new(Project::new(op, &slots));
        }

        // DISTINCT streams when the table has no helper sort columns: rows
        // equal on all projected columns then share their sort keys, so
        // dedup-before-sort keeps exactly the representative (first
        // arrival) that dedup-after-sort would. When the delivered order
        // additionally clusters the projected columns, the hash set
        // degrades to remembering one previous tuple.
        let mut already_distinct = false;
        if m.distinct && !m.has_helper_cols() {
            op = if Self::clustered(delivered, &m.out_slots()) {
                let cols = (0..op.schema().len()).collect();
                Box::new(Distinct::ordered(op, cols))
            } else {
                Box::new(Distinct::new(op))
            };
            already_distinct = true;
        }

        if m.order_by.is_empty() {
            if m.offset > 0 || m.limit.is_some() {
                // Early-exit slice: upstream stops once the limit is hit.
                op = Box::new(Slice::new(op, m.offset, m.limit));
            }
            return Ok(PlainTail::Rows(op));
        }

        if sort_elim {
            // The pipeline already delivers rows in final ORDER BY order:
            // the sort disappears entirely. TopK degenerates to an
            // early-exit Slice; DISTINCT under helper sort columns dedups
            // on the projected columns, first arrival = first sorted
            // occurrence — exactly the fallback's representative.
            if m.distinct && !already_distinct {
                let dedup_cols: Vec<usize> = m
                    .out_slots()
                    .iter()
                    .map(|&slot| {
                        op.schema().iter().position(|&v| v == slot).expect("out slot in schema")
                    })
                    .collect();
                op = if Self::clustered(delivered, &m.out_slots()) {
                    Box::new(Distinct::ordered(op, dedup_cols))
                } else {
                    Box::new(Distinct::on_cols(op, dedup_cols))
                };
            }
            if m.offset > 0 || m.limit.is_some() {
                op = Box::new(Slice::new(op, m.offset, m.limit));
            }
            return Ok(PlainTail::Rows(op));
        }

        if m.distinct && !already_distinct {
            // DISTINCT under unprojected sort keys: the sort-aware dedup
            // keeps, per distinct projected value, the duplicate minimal
            // under (sort keys, arrival order) — exactly the row the
            // materializing sort→project→dedup fallback would keep — while
            // holding only the distinct values, never the full input.
            let keys = RowKeys::resolve(m, op.schema(), self.ds);
            let dedup_cols: Vec<usize> = m
                .out_slots()
                .iter()
                .map(|&slot| {
                    op.schema().iter().position(|&v| v == slot).expect("out slot in schema")
                })
                .collect();
            let mut dedup = SortedDistinct::new(keys, dedup_cols);
            Self::for_each_row(&mut op, stats, |row, st| {
                dedup.add_row(row, st);
                Ok(())
            })?;
            let sorted = dedup.finish(stats);
            let cols = Self::out_cols(m, op.schema());
            let rows = sorted
                .into_iter()
                .skip(m.offset)
                .take(m.limit.unwrap_or(usize::MAX))
                .map(|r| Self::decode_cols(&cols, &r, self.ds))
                .collect();
            return Ok(PlainTail::Table(ResultSet { columns: m.out_names(), rows }));
        }

        if let Some(limit) = m.limit {
            // ORDER BY + LIMIT: bounded heap, sort keys computed once
            // per row, only offset+limit rows ever resident.
            let keys = RowKeys::resolve(m, op.schema(), self.ds);
            op = Box::new(TopK::new(op, keys, m.offset, limit));
            return Ok(PlainTail::Rows(op));
        }

        if spill_mode != SpillMode::InMemory {
            // ORDER BY without LIMIT under a budget: external merge sort.
            // Batches stream straight into the sorter (never a full
            // materialized table); sorted runs spill once the buffer
            // exceeds the budget and merge back through the loser tree in
            // exactly the in-memory stable-sort order.
            let budget = exec.mem_budget_rows.expect("budgeted mode implies a budget");
            let keys = RowKeys::resolve(m, op.schema(), self.ds);
            let width = op.schema().len();
            let mut sorter = ExternalSorter::new(keys, width, budget, self.spill_base.clone());
            Self::for_each_row(&mut op, stats, |row, st| {
                sorter.push_row(row, st).map_err(QueryError::from)
            })?;
            let merged = sorter.finish(stats)?;
            let cols = Self::out_cols(m, op.schema());
            return Ok(PlainTail::Sorted { merged, cols, skip: m.offset });
        }

        // Fallback: ORDER BY without LIMIT (full sort is unavoidable),
        // fully in memory.
        let bindings = physical::drain(op, stats);
        let rows = table_from_bindings(&bindings, m, self.ds)?;
        Ok(PlainTail::Table(finalize_table(rows, m, self.ds, already_distinct, false, stats)))
    }

    /// Whether the delivered order provably satisfies the full ORDER BY:
    /// every key an ascending plain-variable column, and the deduplicated
    /// key-slot sequence a prefix of the delivered order. (Value semantics
    /// hold because the dictionary is value-ordered at freeze: ascending
    /// ids are ascending ORDER BY values, unbound ids sort last both ways.)
    fn order_satisfied(&self, m: &ModifierPlan, delivered: &[usize]) -> bool {
        if m.order_by.is_empty() {
            return false;
        }
        let mut seq: Vec<usize> = Vec::new();
        for &(col, desc) in &m.order_by {
            if desc {
                return false;
            }
            match m.table[col].source {
                TableColSource::Slot(s) => {
                    if !seq.contains(&s) {
                        seq.push(s);
                    }
                }
                TableColSource::Agg(_) | TableColSource::Expr(_) => return false,
            }
        }
        // With more than one effective key, id order must be *equivalent*
        // to value order, not merely a refinement: two distinct ids with
        // equal numeric value ("1"^^int vs "1.0"^^double) form a sort-key
        // tie the baseline's stable sort reorders by the next key, while
        // id-ordered delivery pins them by lexical form. The dictionary
        // records at freeze whether any such tie exists; a single key is
        // always safe (ties fall back to arrival order on both paths).
        if seq.len() > 1 && self.ds.dict().has_value_ties() {
            return false;
        }
        delivered.starts_with(&seq)
    }

    /// The descending counterpart of [`Engine::order_satisfied`] — the
    /// direction-symmetric half of the order service. When every ORDER BY
    /// key is a *descending* plain-variable column and the pattern part is
    /// one bare scan (filters allowed — they preserve order), the engine
    /// serves the query by run-reversed index iteration
    /// ([`IndexScan::descending`]) instead of sorting: runs of the leading
    /// key components are visited in reverse key order with forward order
    /// inside each run, which is exactly a stable descending sort of the
    /// forward pipeline — the forced-off baseline's output, bit for bit.
    ///
    /// Returns the scan to lower descending (pattern, chosen index order,
    /// run components). Conservatively `None` beyond the bare-scan shape;
    /// multi-join plans keep the forward pipeline and sort.
    fn desc_elimination<'p>(
        &self,
        prepared: &'p Prepared,
        exec: &ExecConfig,
    ) -> Option<(&'p PlannedPattern, Option<IndexOrder>, usize)> {
        if exec.order_exec == OrderExec::Off {
            return None;
        }
        let m = &prepared.modifiers;
        if m.order_by.is_empty() || m.aggregate.is_some() {
            return None;
        }
        let mut seq: Vec<usize> = Vec::new();
        for &(col, desc) in &m.order_by {
            if !desc {
                return None;
            }
            match m.table[col].source {
                TableColSource::Slot(s) => {
                    if !seq.contains(&s) {
                        seq.push(s);
                    }
                }
                TableColSource::Agg(_) | TableColSource::Expr(_) => return None,
            }
        }
        // Stricter than the ascending path, which tolerates value ties on
        // a single key: two distinct ids with equal value form separate id
        // runs, and reversing runs flips their relative order while the
        // baseline's stable descending sort keeps them in arrival order.
        // Ascending delivery never reorders them, descending run-reversal
        // does — so any value tie disables the elimination.
        if self.ds.dict().has_value_ties() {
            return None;
        }
        if !prepared.unions.is_empty() || !prepared.optionals.is_empty() {
            return None;
        }
        let Some(PlanNode::Scan { pattern, order, .. }) = &prepared.bgp_plan else {
            return None;
        };
        // No repeated variables (the slot→key-component mapping assumes
        // each key slot is one index component), and the delivered order
        // must carry the keys as its prefix — `delivered_order` is empty
        // while the value-order invariant is suspended, which gates the
        // descending elimination exactly like the ascending one.
        let var_positions = pattern.slots.iter().filter(|s| s.as_var().is_some()).count();
        if pattern.var_slots().len() != var_positions || !prepared.delivered_order.starts_with(&seq)
        {
            return None;
        }
        Some((pattern, *order, seq.len()))
    }

    /// Whether the delivered order makes rows equal on `slots` contiguous:
    /// the distinct slots are exactly the leading `k` delivered slots (in
    /// any permutation). Empty slot sets are trivially clustered.
    fn clustered(delivered: &[usize], slots: &[usize]) -> bool {
        let mut set: Vec<usize> = Vec::new();
        for &s in slots {
            if !set.contains(&s) {
                set.push(s);
            }
        }
        set.len() <= delivered.len() && delivered[..set.len()].iter().all(|v| set.contains(v))
    }

    /// Whether this prepared query's final sort is eliminated under `exec`
    /// (see [`Engine::order_satisfied`]): used by the pipeline-shape
    /// decision and surfaced in [`Engine::explain_physical`]. For
    /// aggregate queries the sort only disappears on the ordered
    /// one-group-at-a-time fold, which additionally needs group-clustered
    /// delivery and no memory budget (a parallel pipeline may still fall
    /// back to the sorting fold — EXPLAIN is advisory there).
    fn sort_eliminated(&self, prepared: &Prepared, exec: &ExecConfig) -> bool {
        let m = &prepared.modifiers;
        if exec.order_exec == OrderExec::Off || !self.order_satisfied(m, &prepared.delivered_order)
        {
            // `ORDER BY ... DESC` served by the run-reversed scan is the
            // other way the sort disappears (never for aggregates — the
            // descending elimination refuses them).
            return self.desc_elimination(prepared, exec).is_some();
        }
        match &m.aggregate {
            None => true,
            Some(agg) => {
                m.spill_mode(prepared.est_result_card, exec.mem_budget_rows) == SpillMode::InMemory
                    && Self::clustered(&prepared.delivered_order, &agg.group_slots)
            }
        }
    }

    /// Streams every row of `op` into `consume`, releasing each batch's
    /// residency once its rows are handed over — the shared drain
    /// scaffolding of every row-consuming modifier stage (folds, dedup,
    /// external sort), kept in one place so the batch/stats protocol
    /// cannot diverge between them.
    fn for_each_row(
        op: &mut BoxedOperator<'_>,
        stats: &mut ExecStats,
        mut consume: impl FnMut(&[Id], &mut ExecStats) -> Result<(), QueryError>,
    ) -> Result<(), QueryError> {
        let mut row = vec![UNBOUND; op.schema().len()];
        while let Some(batch) = op.next_batch(stats) {
            for r in 0..batch.len() {
                batch.read_row(r, &mut row);
                consume(&row, stats)?;
            }
            stats.shrink(batch.len());
        }
        Ok(())
    }

    /// Pipeline-schema column of each declared output column — resolved
    /// once, so per-row decoding never scans the schema.
    fn out_cols(m: &ModifierPlan, schema: &[usize]) -> Vec<usize> {
        m.table[..m.out_width]
            .iter()
            .map(|c| {
                let slot = match c.source {
                    TableColSource::Slot(s) => s,
                    TableColSource::Agg(_) => {
                        unreachable!("aggregate column on the plain path")
                    }
                    TableColSource::Expr(_) => {
                        unreachable!("expression keys are never projected")
                    }
                };
                schema.iter().position(|&v| v == slot).expect("projected slot in schema")
            })
            .collect()
    }

    /// Decodes one pipeline row through a precomputed [`Self::out_cols`]
    /// mapping.
    fn decode_cols(cols: &[usize], row: &[Id], ds: &Dataset) -> Vec<OutVal> {
        cols.iter()
            .map(|&col| {
                let id = row[col];
                if id == UNBOUND {
                    OutVal::Unbound
                } else {
                    OutVal::Term(ds.decode(id).clone())
                }
            })
            .collect()
    }

    /// EXPLAIN-style *physical* rendering of a prepared query: one line
    /// per operator with the chosen join method (hash/bind/merge), the
    /// scanned index and the delivered order, plus the modifier strategy —
    /// in particular whether the final sort is eliminated behind the
    /// delivered order. Uses the engine's execution configuration (the
    /// same one `execute` would).
    pub fn explain_physical(&self, prepared: &Prepared) -> String {
        let m = &prepared.modifiers;
        let mut out = format!("delivered order: {:?}\n", prepared.delivered_order);
        if let Some(plan) = &prepared.bgp_plan {
            out.push_str(&plan.render_physical(self.ds, 0));
        }
        for (i, u) in prepared.unions.iter().enumerate() {
            out.push_str(&format!("UNION #{i} (join on {:?})\n", u.join_vars));
            for (b, (plan, _)) in u.branches.iter().enumerate() {
                out.push_str(&format!("  branch {b}:\n"));
                out.push_str(&plan.render_physical(self.ds, 2));
            }
        }
        for (i, opt) in prepared.optionals.iter().enumerate() {
            out.push_str(&format!("OPTIONAL #{i} (left outer join on {:?})\n", opt.join_vars));
            out.push_str(&opt.plan.render_physical(self.ds, 1));
        }
        let sort = if m.order_by.is_empty() {
            "none"
        } else if self.desc_elimination(prepared, &self.exec).is_some() {
            "eliminated (descending index scan serves ORDER BY ... DESC)"
        } else if self.sort_eliminated(prepared, &self.exec) {
            "eliminated (delivered order satisfies ORDER BY)"
        } else if m.aggregate.is_none() && m.limit.is_some() {
            "topk (bounded heap)"
        } else {
            "full sort"
        };
        out.push_str(&format!("modifiers: {} | sort: {sort}\n", m.render()));
        out
    }

    /// Parses, prepares and executes query text in one call.
    pub fn run_text(&self, text: &str) -> Result<QueryOutput, QueryError> {
        let query = crate::parser::parse_query(text)?;
        let prepared = self.prepare(&query)?;
        self.execute(&prepared)
    }

    /// Instantiates a template with a binding, prepares and executes it.
    pub fn run_template(
        &self,
        template: &QueryTemplate,
        binding: &Binding,
    ) -> Result<QueryOutput, QueryError> {
        let query = template.instantiate(binding)?;
        let prepared = self.prepare(&query)?;
        self.execute(&prepared)
    }

    /// Prepares a template instantiation without executing (the profiling
    /// path of the curation pipeline).
    pub fn prepare_template(
        &self,
        template: &QueryTemplate,
        binding: &Binding,
    ) -> Result<Prepared, QueryError> {
        let query = template.instantiate(binding)?;
        self.prepare(&query)
    }

    /// Computes the [`PlanClass`] of a (template, binding) pair — the
    /// plan cache's key — without parsing, optimizing or lowering
    /// anything. Cost: one exact index count plus (cached) distinct-count
    /// probes per triple pattern.
    pub fn plan_class(
        &self,
        template: &QueryTemplate,
        binding: &Binding,
    ) -> Result<PlanClass, QueryError> {
        template.check_binding(binding)?;
        let mut words: Vec<u64> = Vec::new();
        for t in template_patterns(template.query()) {
            // Synthetic probe pattern: real ids for constants and bound
            // parameters, one distinct variable per free position — its
            // scan estimate captures every statistic the real pattern's
            // estimate (including repeated-variable minima) derives from.
            let mut slots = [Slot::Absent; 3];
            let mut shape = 0u64;
            let mut pred_param: Option<Slot> = None;
            for (i, vot) in [&t.subject, &t.predicate, &t.object].into_iter().enumerate() {
                let (slot, code) = match vot {
                    VarOrTerm::Var(_) => (Slot::Var(i), 0u64),
                    VarOrTerm::Term(term) => match self.ds.lookup(term) {
                        Some(id) => (Slot::Bound(id), 1),
                        None => (Slot::Absent, 1),
                    },
                    VarOrTerm::Param(p) => {
                        let term = binding.get(p).expect("binding validated");
                        match self.ds.lookup(term) {
                            Some(id) => (Slot::Bound(id), 2),
                            None => (Slot::Absent, 3),
                        }
                    }
                };
                slots[i] = slot;
                shape = shape << 2 | code;
                if i == 1 && code >= 2 {
                    pred_param = Some(slot);
                }
            }
            words.push(shape);
            let est = self.est.scan(&PlannedPattern { idx: 0, slots });
            words.push(est.card as u64);
            for (i, vot) in [&t.subject, &t.predicate, &t.object].into_iter().enumerate() {
                if matches!(vot, VarOrTerm::Var(_)) {
                    words.push(est.distinct_of(i).to_bits());
                }
            }
            if let Some(Slot::Bound(id)) = pred_param {
                words.push(id.0 as u64);
            }
        }
        Ok(PlanClass(words))
    }

    /// Rebinds a cached [`Prepared`] plan skeleton to a new binding of the
    /// same template **without re-parsing, re-optimizing or re-lowering**:
    /// the new constants are substituted in place into the cached plan's
    /// scan patterns (keyed by `PlannedPattern::idx`) and filter
    /// expressions. Estimate fields, signature and modifier plan carry
    /// over from the cache.
    ///
    /// Only valid when the new binding's [`PlanClass`] equals the cached
    /// plan's — the caller (the serving layer's plan cache) keys its
    /// entries by class, so a class change is a cache miss, never a wrong
    /// reuse. Under class equality the rebound plan is exactly what a cold
    /// [`Engine::prepare`] of the instantiated query would produce.
    pub fn rebind(
        &self,
        cached: &Prepared,
        template: &QueryTemplate,
        binding: &Binding,
    ) -> Result<Prepared, QueryError> {
        template.check_binding(binding)?;
        let query = template.query();

        // Per-idx slot substitutions for the parameterized positions.
        let patterns = template_patterns(query);
        let mut subs: Vec<[Option<Slot>; 3]> = Vec::with_capacity(patterns.len());
        for t in &patterns {
            let mut sub = [None, None, None];
            for (i, vot) in [&t.subject, &t.predicate, &t.object].into_iter().enumerate() {
                if let VarOrTerm::Param(p) = vot {
                    let term = binding.get(p).expect("binding validated");
                    sub[i] = Some(match self.ds.lookup(term) {
                        Some(id) => Slot::Bound(id),
                        None => Slot::Absent,
                    });
                }
            }
            subs.push(sub);
        }

        let mut out = cached.clone();
        let mut apply = |pat: &mut PlannedPattern| {
            for (i, s) in subs[pat.idx].iter().enumerate() {
                if let Some(slot) = s {
                    pat.slots[i] = *slot;
                }
            }
        };
        if let Some(plan) = &mut out.bgp_plan {
            plan.patterns_mut(&mut apply);
        }
        for u in &mut out.unions {
            for (plan, _) in &mut u.branches {
                plan.patterns_mut(&mut apply);
            }
        }
        for o in &mut out.optionals {
            o.plan.patterns_mut(&mut apply);
        }

        // Filters, in prepare's grouping order: top-level filters, then
        // per-UNION-branch filters, then per-OPTIONAL filters — each a
        // structural lock-step walk of the template expression (which
        // still carries `Expr::Param`) against the cached instantiation.
        let mut top = out.filters.iter_mut();
        for el in &query.where_clause {
            if let Element::Filter(f) = el {
                rebind_expr(top.next().expect("same template shape"), f, binding);
            }
        }
        let mut union_plans = out.unions.iter_mut();
        for el in &query.where_clause {
            if let Element::Union(branches) = el {
                let u = union_plans.next().expect("same template shape");
                for (branch, (_, fs)) in branches.iter().zip(&mut u.branches) {
                    let mut it = fs.iter_mut();
                    for b_el in branch {
                        if let Element::Filter(f) = b_el {
                            rebind_expr(it.next().expect("same template shape"), f, binding);
                        }
                    }
                }
            }
        }
        let mut opt_plans = out.optionals.iter_mut();
        for el in &query.where_clause {
            if let Element::Optional(inner) = el {
                let o = opt_plans.next().expect("same template shape");
                let mut it = o.filters.iter_mut();
                for o_el in inner {
                    if let Element::Filter(f) = o_el {
                        rebind_expr(it.next().expect("same template shape"), f, binding);
                    }
                }
            }
        }

        // The delivered order is a function of which positions are bound
        // (identical under class equality), but recomputing it is cheap
        // and keeps the invariant locally checkable.
        out.delivered_order =
            out.bgp_plan.as_ref().map(|p| p.delivered_order(self.ds)).unwrap_or_default();
        Ok(out)
    }

    /// Convenience: looks up a term, returning a readable error.
    pub fn require_term(&self, term: &Term) -> Result<parambench_rdf::dict::Id, QueryError> {
        self.ds
            .lookup(term)
            .ok_or_else(|| QueryError::Unsupported(format!("term not in dataset: {term}")))
    }
}

/// The ORDER BY slot-sequence preference handed to the optimizer: the
/// deduplicated slot sequence when the keys form a *direction-uniform*
/// run of plain pattern variables already carrying slots, empty
/// otherwise (mixed ASC/DESC, expressions and aggregate aliases cannot
/// be served by an index order, so no preference exists). All-ascending
/// keys always yield a preference; all-descending keys yield one only
/// for a single-pattern required BGP (`bare_scan`) — that is the shape
/// the descending order service can serve by run-reversed index
/// iteration, and a multi-join plan must not be handed a sort-penalty
/// waiver it cannot cash in.
fn order_pref_slots(
    query: &SelectQuery,
    slot_of: &HashMap<String, usize>,
    bare_scan: bool,
) -> Vec<usize> {
    if query.order_by.is_empty() {
        return Vec::new();
    }
    let all_desc = query.order_by.iter().all(|k| k.descending);
    if all_desc && !bare_scan {
        return Vec::new();
    }
    let mut out = Vec::new();
    for k in &query.order_by {
        if k.descending != all_desc {
            return Vec::new();
        }
        let Some(v) = k.target.as_var() else {
            return Vec::new();
        };
        let Some(&s) = slot_of.get(v) else {
            return Vec::new();
        };
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parambench_rdf::store::StoreBuilder;

    /// Small social dataset: people, names, friendships, posts with dates.
    fn dataset() -> Dataset {
        let mut b = StoreBuilder::new();
        let knows = Term::iri("p/knows");
        let name = Term::iri("p/name");
        let wrote = Term::iri("p/wrote");
        let date = Term::iri("p/date");
        for i in 0..6 {
            let person = Term::iri(format!("person/{i}"));
            b.insert(person.clone(), name.clone(), Term::literal(format!("Name{i}")));
            // Ring of friendships.
            b.insert(person.clone(), knows.clone(), Term::iri(format!("person/{}", (i + 1) % 6)));
            // Two posts each.
            for k in 0..2 {
                let post = Term::iri(format!("post/{i}-{k}"));
                b.insert(person.clone(), wrote.clone(), post.clone());
                b.insert(post, date.clone(), Term::integer((i * 10 + k) as i64));
            }
        }
        b.freeze()
    }

    #[test]
    fn simple_join_query() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let out = engine
            .run_text("SELECT ?n WHERE { <person/0> <p/knows> ?f . ?f <p/name> ?n }")
            .unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results.rows[0][0], crate::results::OutVal::Term(Term::literal("Name1")));
        assert!(out.cout >= 1);
    }

    #[test]
    fn order_by_desc_limit() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let out = engine
            .run_text(
                "SELECT ?post ?d WHERE { <person/2> <p/wrote> ?post . ?post <p/date> ?d } ORDER BY DESC(?d) LIMIT 1",
            )
            .unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results.rows[0][1].as_num(), Some(21.0));
    }

    #[test]
    fn filter_and_distinct() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let out = engine
            .run_text(
                "SELECT DISTINCT ?p WHERE { ?p <p/wrote> ?post . ?post <p/date> ?d . FILTER(?d >= 20) }",
            )
            .unwrap();
        // dates 20,21 (person 2), 30..51 for persons 3..5 → persons 2..5
        assert_eq!(out.results.len(), 4);
    }

    #[test]
    fn optional_keeps_all_left_rows() {
        let mut b = StoreBuilder::new();
        b.insert(Term::iri("a"), Term::iri("p/knows"), Term::iri("b"));
        b.insert(Term::iri("a"), Term::iri("p/knows"), Term::iri("c"));
        b.insert(Term::iri("b"), Term::iri("p/name"), Term::literal("B"));
        let ds = b.freeze();
        let engine = Engine::new(&ds);
        let out = engine
            .run_text("SELECT ?f ?n WHERE { <a> <p/knows> ?f OPTIONAL { ?f <p/name> ?n } }")
            .unwrap();
        assert_eq!(out.results.len(), 2);
        let unbound = out
            .results
            .rows
            .iter()
            .filter(|r| matches!(r[1], crate::results::OutVal::Unbound))
            .count();
        assert_eq!(unbound, 1);
    }

    #[test]
    fn aggregation_group_by() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let out = engine
            .run_text(
                "SELECT ?p (COUNT(?post) AS ?n) (MAX(?d) AS ?newest) WHERE { ?p <p/wrote> ?post . ?post <p/date> ?d } GROUP BY ?p ORDER BY DESC(?newest)",
            )
            .unwrap();
        assert_eq!(out.results.len(), 6);
        assert_eq!(out.results.rows[0][1].as_num(), Some(2.0));
        assert_eq!(out.results.rows[0][2].as_num(), Some(51.0));
    }

    #[test]
    fn unknown_projection_var_is_error() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let err = engine.run_text("SELECT ?nope WHERE { ?p <p/name> ?n }").unwrap_err();
        assert!(matches!(err, QueryError::UnknownVariable(_)));
    }

    #[test]
    fn template_with_unbound_param_is_error() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let q = crate::parser::parse_query("SELECT ?p WHERE { ?p <p/name> %name }").unwrap();
        let err = engine.prepare(&q).unwrap_err();
        assert!(matches!(err, QueryError::UnboundParameter(_)));
    }

    #[test]
    fn term_not_in_dataset_yields_empty_not_error() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let out = engine.run_text("SELECT ?x WHERE { ?x <p/knows> <person/unknown-xyz> }").unwrap();
        assert!(out.results.is_empty());
    }

    #[test]
    fn signature_stable_across_bindings_with_same_plan() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let t =
            QueryTemplate::parse("q", "SELECT ?n WHERE { %person <p/knows> ?f . ?f <p/name> ?n }")
                .unwrap();
        let p0 = engine
            .prepare_template(&t, &Binding::new().with("person", Term::iri("person/0")))
            .unwrap();
        let p3 = engine
            .prepare_template(&t, &Binding::new().with("person", Term::iri("person/3")))
            .unwrap();
        assert_eq!(p0.signature, p3.signature);
    }

    #[test]
    fn explain_renders() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let q = crate::parser::parse_query(
            "SELECT ?f WHERE { <person/0> <p/knows> ?f OPTIONAL { ?f <p/name> ?n } }",
        )
        .unwrap();
        let p = engine.prepare(&q).unwrap();
        let text = p.explain();
        assert!(text.contains("signature:"));
        assert!(text.contains("OPTIONAL #0"));
    }

    #[test]
    fn union_concatenates_branches() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        // Friends of person/0 OR friends of person/3 — bare UNION body.
        let out = engine
            .run_text(
                "SELECT ?f WHERE { { <person/0> <p/knows> ?f } UNION { <person/3> <p/knows> ?f } }",
            )
            .unwrap();
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn union_joined_with_required_part() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        // Names of (friends of 0) ∪ (friends of 3).
        let out = engine
            .run_text(
                "SELECT ?f ?n WHERE { ?f <p/name> ?n . { <person/0> <p/knows> ?f } UNION { <person/3> <p/knows> ?f } }",
            )
            .unwrap();
        assert_eq!(out.results.len(), 2);
        for row in &out.results.rows {
            assert!(matches!(row[1], crate::results::OutVal::Term(_)));
        }
    }

    #[test]
    fn union_branch_filters_are_scoped() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let out = engine
            .run_text(
                "SELECT ?p ?d WHERE { { ?p <p/wrote> ?x . ?x <p/date> ?d . FILTER(?d < 1) } UNION { ?p <p/wrote> ?x . ?x <p/date> ?d . FILTER(?d >= 50) } }",
            )
            .unwrap();
        // dates: 0,1 for person 0 ... 50,51 for person 5 → d=0, d=50, d=51.
        assert_eq!(out.results.len(), 3);
    }

    #[test]
    fn union_with_mismatched_vars_is_unsupported() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let err = engine
            .run_text("SELECT ?a WHERE { { ?a <p/knows> ?b } UNION { ?a <p/name> ?c } }")
            .unwrap_err();
        assert!(matches!(err, QueryError::Unsupported(_)), "{err}");
    }

    #[test]
    fn union_signature_lists_branches() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        let q = crate::parser::parse_query(
            "SELECT ?f WHERE { { <person/0> <p/knows> ?f } UNION { <person/3> <p/knows> ?f } }",
        )
        .unwrap();
        let p = engine.prepare(&q).unwrap();
        assert!(p.signature.0.starts_with("UNION("), "{}", p.signature);
        assert!(p.explain().contains("UNION #0"));
    }

    #[test]
    fn measured_cout_counts_join_outputs() {
        let ds = dataset();
        let engine = Engine::new(&ds);
        // Two joins: friends-of-friends.
        let out = engine
            .run_text(
                "SELECT ?c WHERE { <person/0> <p/knows> ?b . ?b <p/knows> ?c . ?c <p/name> ?n }",
            )
            .unwrap();
        assert_eq!(out.results.len(), 1); // ring: 0→1→2
        assert!(out.cout >= 2, "cout = {}", out.cout);
        assert_eq!(out.stats.join_cards.len(), 2);
    }
}
