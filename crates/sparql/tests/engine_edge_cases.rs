//! Edge-case integration tests of the query engine: solution modifiers,
//! mixed-type ordering, OPTIONAL/UNION interplay, instrumentation
//! determinism — behaviours a downstream benchmark driver depends on.

use parambench_rdf::store::{Dataset, StoreBuilder};
use parambench_rdf::term::Term;
use parambench_sparql::engine::Engine;
use parambench_sparql::error::QueryError;
use parambench_sparql::results::OutVal;
use parambench_sparql::{ExecConfig, MORSELS_PER_WAVE};

fn dataset() -> Dataset {
    let mut b = StoreBuilder::new();
    for i in 0..10 {
        let s = Term::iri(format!("item/{i}"));
        b.insert(s.clone(), Term::iri("rank"), Term::integer(i as i64));
        b.insert(s.clone(), Term::iri("group"), Term::iri(format!("g/{}", i % 3)));
        if i % 2 == 0 {
            b.insert(s.clone(), Term::iri("label"), Term::literal(format!("label {i}")));
        }
        if i == 7 {
            b.insert(s, Term::iri("special"), Term::literal("yes"));
        }
    }
    b.freeze()
}

#[test]
fn offset_beyond_result_is_empty() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine.run_text("SELECT ?s WHERE { ?s <rank> ?r } OFFSET 100").unwrap();
    assert!(out.results.is_empty());
}

#[test]
fn offset_and_limit_slice_sorted_output() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text("SELECT ?r WHERE { ?s <rank> ?r } ORDER BY ASC(?r) LIMIT 3 OFFSET 2")
        .unwrap();
    let vals: Vec<f64> = out.results.rows.iter().map(|r| r[0].as_num().unwrap()).collect();
    assert_eq!(vals, vec![2.0, 3.0, 4.0]);
}

#[test]
fn order_by_unbound_sorts_last() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text("SELECT ?s ?l WHERE { ?s <rank> ?r OPTIONAL { ?s <label> ?l } } ORDER BY ASC(?l)")
        .unwrap();
    let first = &out.results.rows[0][1];
    let last = &out.results.rows[out.results.len() - 1][1];
    assert!(matches!(first, OutVal::Term(_)));
    assert!(matches!(last, OutVal::Unbound));
}

#[test]
fn distinct_collapses_duplicates_after_projection() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let all = engine.run_text("SELECT ?g WHERE { ?s <group> ?g }").unwrap();
    assert_eq!(all.results.len(), 10);
    let distinct = engine.run_text("SELECT DISTINCT ?g WHERE { ?s <group> ?g }").unwrap();
    assert_eq!(distinct.results.len(), 3);
}

#[test]
fn count_distinct_vs_count() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text("SELECT (COUNT(?g) AS ?n) (COUNT(DISTINCT ?g) AS ?d) WHERE { ?s <group> ?g }")
        .unwrap();
    assert_eq!(out.results.rows[0][0].as_num(), Some(10.0));
    assert_eq!(out.results.rows[0][1].as_num(), Some(3.0));
}

#[test]
fn group_by_with_empty_input_yields_no_groups() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text(
            "SELECT ?g (COUNT(?s) AS ?n) WHERE { ?s <group> ?g . ?s <rank> ?r . FILTER(?r > 99) } GROUP BY ?g",
        )
        .unwrap();
    assert!(out.results.is_empty());
}

#[test]
fn optional_after_union_extends_rows() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text(
            "SELECT ?s ?l WHERE { { ?s <group> <g/0> } UNION { ?s <group> <g/1> } OPTIONAL { ?s <label> ?l } }",
        )
        .unwrap();
    // groups 0 and 1 cover items 0,1,3,4,6,7,9 → 7 rows.
    assert_eq!(out.results.len(), 7);
    let bound = out.results.rows.iter().filter(|r| matches!(r[1], OutVal::Term(_))).count();
    assert_eq!(bound, 3, "items 0, 4, 6 have labels");
}

#[test]
fn filter_on_optional_var_with_bound_guard() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    // Keep rows where the label is missing — the BOUND() idiom.
    let out = engine
        .run_text("SELECT ?s WHERE { ?s <rank> ?r OPTIONAL { ?s <label> ?l } FILTER(!BOUND(?l)) }")
        .unwrap();
    assert_eq!(out.results.len(), 5); // odd ranks have no label
}

#[test]
fn cout_is_deterministic_across_runs() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?s WHERE { ?s <rank> ?r . ?s <group> ?g . ?s <label> ?l }",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let a = engine.execute(&prepared).unwrap();
    let b = engine.execute(&prepared).unwrap();
    assert_eq!(a.cout, b.cout);
    assert_eq!(a.results, b.results);
}

#[test]
fn est_cout_nonnegative_and_signature_nonempty() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    for text in [
        "SELECT ?s WHERE { ?s <rank> ?r }",
        "SELECT ?s WHERE { ?s <rank> ?r . ?s <group> ?g }",
        "SELECT ?s WHERE { { ?s <group> <g/0> } UNION { ?s <group> <g/2> } }",
        "SELECT ?s WHERE { ?s <special> ?x OPTIONAL { ?s <label> ?l } }",
    ] {
        let q = parambench_sparql::parse_query(text).unwrap();
        let p = engine.prepare(&q).unwrap();
        assert!(p.est_cout >= 0.0, "{text}");
        assert!(!p.signature.0.is_empty(), "{text}");
    }
}

#[test]
fn var_predicate_patterns_work() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine.run_text("SELECT DISTINCT ?p WHERE { <item/7> ?p ?o }").unwrap();
    assert_eq!(out.results.len(), 3); // rank, group, special
}

#[test]
fn fully_bound_pattern_acts_as_existence_check() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let hit =
        engine.run_text("SELECT ?s WHERE { ?s <rank> ?r . <item/7> <special> \"yes\" }").unwrap();
    assert_eq!(hit.results.len(), 10, "existence holds: join keeps all rows");
    let miss =
        engine.run_text("SELECT ?s WHERE { ?s <rank> ?r . <item/7> <special> \"no\" }").unwrap();
    assert!(miss.results.is_empty());
}

#[test]
fn order_by_var_not_in_projection() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out =
        engine.run_text("SELECT ?s WHERE { ?s <rank> ?r } ORDER BY DESC(?r) LIMIT 2").unwrap();
    let names: Vec<String> =
        out.results.rows.iter().map(|r| r[0].as_term().unwrap().to_string()).collect();
    assert_eq!(names, vec!["<item/9>", "<item/8>"]);
    assert_eq!(out.results.columns, vec!["s"]);
}

#[test]
fn limit_zero_is_empty_and_does_no_work() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query("SELECT ?s WHERE { ?s <rank> ?r } LIMIT 0").unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let out = engine.execute(&prepared).unwrap();
    assert!(out.results.is_empty());
    // The pushed pipeline never runs: nothing is ever scanned.
    assert_eq!(out.stats.scanned, 0, "LIMIT 0 must not touch the store");
    assert_eq!(out.stats.peak_tuples, 0);
    // The short-circuit covers the aggregate and ORDER BY shapes too.
    for text in [
        "SELECT ?g (COUNT(?s) AS ?n) WHERE { ?s <group> ?g } GROUP BY ?g LIMIT 0",
        "SELECT ?s WHERE { ?s <rank> ?r } ORDER BY ASC(?r) LIMIT 0 OFFSET 5",
    ] {
        let q = parambench_sparql::parse_query(text).unwrap();
        let out = engine.execute(&engine.prepare(&q).unwrap()).unwrap();
        assert!(out.results.is_empty(), "{text}");
        assert_eq!(out.stats.scanned, 0, "LIMIT 0 must do no work: {text}");
    }
}

#[test]
fn offset_past_end_with_limit_is_empty() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine.run_text("SELECT ?s WHERE { ?s <rank> ?r } LIMIT 5 OFFSET 1000").unwrap();
    assert!(out.results.is_empty());
    let sorted = engine
        .run_text("SELECT ?s WHERE { ?s <rank> ?r } ORDER BY ASC(?r) LIMIT 5 OFFSET 1000")
        .unwrap();
    assert!(sorted.results.is_empty());
}

#[test]
fn distinct_over_union_duplicates() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    // Both branches produce the same subjects: UNION concatenates (bag
    // semantics), DISTINCT collapses the duplicates.
    let all = engine
        .run_text("SELECT ?s WHERE { { ?s <group> <g/0> } UNION { ?s <group> <g/0> } }")
        .unwrap();
    assert_eq!(all.results.len(), 8, "items 0,3,6,9 twice");
    let distinct = engine
        .run_text("SELECT DISTINCT ?s WHERE { { ?s <group> <g/0> } UNION { ?s <group> <g/0> } }")
        .unwrap();
    assert_eq!(distinct.results.len(), 4);
}

#[test]
fn ungrouped_aggregates_over_zero_rows_yield_one_row() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let out = engine
        .run_text(
            "SELECT (COUNT(?r) AS ?n) (SUM(?r) AS ?sum) (AVG(?r) AS ?avg) (MIN(?r) AS ?mn) \
             WHERE { ?s <rank> ?r . FILTER(?r > 99) }",
        )
        .unwrap();
    // SPARQL: the implicit group always yields one row; COUNT/SUM are 0,
    // value aggregates are unbound.
    assert_eq!(out.results.len(), 1);
    assert_eq!(out.results.rows[0][0].as_num(), Some(0.0));
    assert_eq!(out.results.rows[0][1].as_num(), Some(0.0));
    assert!(matches!(out.results.rows[0][2], OutVal::Unbound));
    assert!(matches!(out.results.rows[0][3], OutVal::Unbound));
}

#[test]
fn avg_and_min_on_non_numeric_values_are_unbound() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    // Labels are plain string literals: COUNT counts them, the numeric
    // folds find nothing to fold.
    let out = engine
        .run_text(
            "SELECT ?g (COUNT(?l) AS ?n) (AVG(?l) AS ?avg) (MIN(?l) AS ?mn) \
             WHERE { ?s <group> ?g . ?s <label> ?l } GROUP BY ?g ORDER BY DESC(?n)",
        )
        .unwrap();
    assert!(!out.results.is_empty());
    for row in &out.results.rows {
        assert!(row[1].as_num().unwrap() >= 1.0);
        assert!(matches!(row[2], OutVal::Unbound), "AVG of strings is unbound");
        assert!(matches!(row[3], OutVal::Unbound), "MIN of strings is unbound");
    }
}

#[test]
fn order_by_ties_keep_pipeline_order_and_topk_matches_full_sort() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    // ?g has only 3 distinct values over 10 rows: heavy ties.
    let full_q = parambench_sparql::parse_query(
        "SELECT ?s ?g WHERE { ?s <group> ?g . ?s <rank> ?r } ORDER BY ASC(?g)",
    )
    .unwrap();
    let full_prepared = engine.prepare(&full_q).unwrap();
    let full = engine.execute(&full_prepared).unwrap();
    // The pinned tie-break (pipeline row order) makes the pushed and the
    // materialize-then-sort paths produce the same sequence, not just the
    // same multiset.
    let unpushed = engine.execute_unpushed(&full_prepared).unwrap();
    assert_eq!(full.results, unpushed.results);

    // A LIMIT-ed run goes through the bounded-heap TopK instead of the
    // full sort — it must reproduce the stable sort's prefix exactly.
    for limit in [1, 4, 7, 10, 15] {
        let q = parambench_sparql::parse_query(&format!(
            "SELECT ?s ?g WHERE {{ ?s <group> ?g . ?s <rank> ?r }} ORDER BY ASC(?g) LIMIT {limit}"
        ))
        .unwrap();
        let limited = engine.execute(&engine.prepare(&q).unwrap()).unwrap();
        let want: Vec<_> = full.results.rows.iter().take(limit).cloned().collect();
        assert_eq!(limited.results.rows, want, "LIMIT {limit} breaks tie order");
    }
}

#[test]
fn topk_peak_is_strictly_below_full_sort_peak() {
    // Enough rows that the TopK heap (offset+limit rows) is visibly
    // smaller than the materialized sort input.
    let mut b = StoreBuilder::new();
    for i in 0..5000 {
        b.insert(
            Term::iri(format!("row/{i}")),
            Term::iri("score"),
            Term::integer(((i * 37) % 1000) as i64),
        );
    }
    let ds = b.freeze();
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?s ?v WHERE { ?s <score> ?v } ORDER BY DESC(?v) LIMIT 10",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let pushed = engine.execute(&prepared).unwrap();
    let unpushed = engine.execute_unpushed(&prepared).unwrap();
    assert_eq!(pushed.results, unpushed.results);
    assert!(
        pushed.stats.peak_tuples < unpushed.stats.peak_tuples,
        "TopK peak {} must be strictly below the materialized sort peak {}",
        pushed.stats.peak_tuples,
        unpushed.stats.peak_tuples
    );
    // And not just lower: bounded by the heap + one in-flight batch.
    assert!(
        pushed.stats.peak_tuples <= (10 + parambench_sparql::BATCH_SIZE) as u64,
        "TopK peak {} should be heap + batch bounded",
        pushed.stats.peak_tuples
    );
}

#[test]
fn parallel_limit_early_exit_stops_workers_promptly() {
    // Plain LIMIT queries are output-bound: the engine must not spawn a
    // worker pool it would immediately have to stop, so even under a
    // forced-parallel config the pipeline stays serial and the LIMIT exits
    // batch-granularly — scanned stays near one batch of driving rows, not
    // a whole wave (MORSELS_PER_WAVE × morsel_rows) of surplus work.
    let morsel_rows = 64;
    let n = MORSELS_PER_WAVE * morsel_rows * 4; // 4 waves' worth of rows
    let mut b = StoreBuilder::new();
    for i in 0..n {
        let s = Term::iri(format!("row/{i}"));
        b.insert(s.clone(), Term::iri("cat"), Term::iri(format!("c/{}", i % 7)));
        b.insert(s, Term::iri("val"), Term::integer(i as i64));
    }
    let ds = b.freeze();
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?s ?c ?v WHERE { ?s <cat> ?c . ?s <val> ?v } LIMIT 9",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let exec = ExecConfig {
        threads: 4,
        morsel_rows,
        min_driver_rows: 1,
        min_est_cost: 0.0,
        mem_budget_rows: None,
        ..ExecConfig::default()
    };
    let out = engine.execute_with(&prepared, &exec).unwrap();
    assert_eq!(out.results.len(), 9);
    // Rows and order equal the default path's.
    let serial = engine.execute(&prepared).unwrap();
    assert_eq!(out.results, serial.results);
    assert_eq!(out.stats.scanned, serial.stats.scanned);
    assert_eq!(out.cout, serial.cout);
    // Batch-granular early exit: one lazily-built side (≤ n) plus a few
    // batches of driving rows — nowhere near the 2n of a full drain, and
    // strictly tighter than even one parallel wave of surplus driving rows.
    let bound = n as u64 + 4 * parambench_sparql::BATCH_SIZE as u64;
    assert!(
        out.stats.scanned <= bound,
        "LIMIT early exit did too much work: scanned {} (bound {bound}, total {})",
        out.stats.scanned,
        2 * n
    );
    // The same query WITH an ORDER BY drains everything and therefore does
    // use the pool — and stays bit-identical at any thread count.
    let sorted = parambench_sparql::parse_query(
        "SELECT ?s ?c ?v WHERE { ?s <cat> ?c . ?s <val> ?v } ORDER BY ASC(?v) LIMIT 9",
    )
    .unwrap();
    let prepared_sorted = engine.prepare(&sorted).unwrap();
    let par = engine.execute_with(&prepared_sorted, &exec).unwrap();
    let one = engine.execute_with(&prepared_sorted, &ExecConfig { threads: 1, ..exec }).unwrap();
    assert_eq!(par.results.len(), 9);
    assert_eq!(par.results, one.results);
    assert_eq!(par.cout, one.cout);
    assert_eq!(par.stats.scanned, one.stats.scanned);
}

/// `n` rows spread over `groups` groups with integer ranks — enough group
/// cardinality to push any small memory budget onto the spill path.
fn grouped_dataset(n: usize, groups: usize) -> Dataset {
    let mut b = StoreBuilder::new();
    for i in 0..n {
        let s = Term::iri(format!("row/{i}"));
        b.insert(s.clone(), Term::iri("grp"), Term::iri(format!("g/{}", i % groups)));
        b.insert(s, Term::iri("rank"), Term::integer(((i * 31) % 97) as i64));
    }
    b.freeze()
}

fn budget_cfg(budget: Option<usize>) -> ExecConfig {
    ExecConfig { mem_budget_rows: budget, ..ExecConfig::default() }
}

#[test]
fn group_by_exceeding_budget_spills_bit_identically_with_lower_peak() {
    let ds = grouped_dataset(4000, 400);
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?g (COUNT(?s) AS ?n) (SUM(?r) AS ?sum) (AVG(?r) AS ?avg) \
         WHERE { ?s <grp> ?g . ?s <rank> ?r } GROUP BY ?g ORDER BY DESC(?sum)",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let inmem = engine.execute_with(&prepared, &budget_cfg(None)).unwrap();
    assert_eq!(inmem.results.len(), 400);
    assert_eq!(inmem.stats.spilled_rows, 0);
    for budget in [2usize, 16, 64] {
        let spilled = engine.execute_with(&prepared, &budget_cfg(Some(budget))).unwrap();
        // The acceptance gate: identical rows/order/Cout/scanned, real
        // spill volume, and a strictly lower in-memory peak.
        assert_eq!(spilled.results, inmem.results, "budget {budget} changed results");
        assert_eq!(spilled.cout, inmem.cout, "budget {budget} changed Cout");
        assert_eq!(spilled.stats.scanned, inmem.stats.scanned, "budget {budget} changed scanned");
        assert!(spilled.stats.spilled_rows > 0, "budget {budget} did not spill");
        assert!(spilled.stats.spill_runs > 0);
        assert!(spilled.stats.spill_bytes > 0);
        assert!(
            spilled.stats.peak_tuples < inmem.stats.peak_tuples,
            "budget {budget}: spilled peak {} not below in-memory {}",
            spilled.stats.peak_tuples,
            inmem.stats.peak_tuples
        );
    }
}

#[test]
fn order_by_without_limit_spills_sorted_runs_bit_identically() {
    let ds = grouped_dataset(3000, 50);
    let engine = Engine::new(&ds);
    // DESC key: no index order can serve it (indexes only deliver
    // ascending), so the full sort — and with a budget the external merge
    // sort — must actually run even under the order-aware planner.
    let q = parambench_sparql::parse_query(
        "SELECT ?s ?r WHERE { ?s <rank> ?r . ?s <grp> ?g } ORDER BY DESC(?r) OFFSET 7",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let inmem = engine.execute_with(&prepared, &budget_cfg(None)).unwrap();
    let spilled = engine.execute_with(&prepared, &budget_cfg(Some(16))).unwrap();
    assert!(inmem.stats.sorted_rows > 0, "a DESC key cannot be order-eliminated");
    assert_eq!(spilled.results, inmem.results);
    assert_eq!(spilled.cout, inmem.cout);
    assert_eq!(spilled.stats.scanned, inmem.stats.scanned);
    assert!(spilled.stats.spill_runs >= 2, "external sort must write several runs");
    assert!(
        spilled.stats.peak_tuples < inmem.stats.peak_tuples,
        "external sort peak {} not below in-memory {}",
        spilled.stats.peak_tuples,
        inmem.stats.peak_tuples
    );
}

#[test]
fn budget_of_zero_and_one_rows_complete_correctly() {
    let ds = grouped_dataset(300, 40);
    let engine = Engine::new(&ds);
    for text in [
        "SELECT ?g (COUNT(?s) AS ?n) WHERE { ?s <grp> ?g } GROUP BY ?g ORDER BY DESC(?n)",
        "SELECT ?s ?r WHERE { ?s <rank> ?r } ORDER BY DESC(?r)",
        "SELECT (COUNT(DISTINCT ?g) AS ?d) WHERE { ?s <grp> ?g }",
    ] {
        let q = parambench_sparql::parse_query(text).unwrap();
        let prepared = engine.prepare(&q).unwrap();
        let want = engine.execute_with(&prepared, &budget_cfg(None)).unwrap();
        for budget in [0usize, 1] {
            let got = engine.execute_with(&prepared, &budget_cfg(Some(budget))).unwrap();
            assert_eq!(got.results, want.results, "budget {budget} broke {text}");
            assert_eq!(got.cout, want.cout, "budget {budget} changed Cout of {text}");
        }
    }
}

#[test]
fn empty_input_aggregate_over_the_spill_path_yields_one_row() {
    let ds = grouped_dataset(100, 10);
    let engine = Engine::new(&ds);
    // The filter rejects every row; budget 0 arms the external fold
    // eagerly, so the implicit-group rule must hold on the spill path too.
    let q = parambench_sparql::parse_query(
        "SELECT (COUNT(?r) AS ?n) (SUM(?r) AS ?sum) (AVG(?r) AS ?avg) \
         WHERE { ?s <rank> ?r . FILTER(?r > 1000) }",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let out = engine.execute_with(&prepared, &budget_cfg(Some(0))).unwrap();
    assert_eq!(out.results.len(), 1);
    assert_eq!(out.results.rows[0][0].as_num(), Some(0.0));
    assert_eq!(out.results.rows[0][1].as_num(), Some(0.0));
    assert!(matches!(out.results.rows[0][2], OutVal::Unbound));
}

#[test]
fn spill_runs_are_cleaned_up_and_limit_exits_promptly_under_budget() {
    let morsel_rows = 64;
    let n = MORSELS_PER_WAVE * morsel_rows * 2;
    let ds = grouped_dataset(n, 300);
    let mut engine = Engine::new(&ds);
    let spill_base = std::env::temp_dir().join(format!("parambench-test-{}", std::process::id()));
    engine.set_spill_dir(&spill_base);

    // A spilling GROUP BY + ORDER BY + LIMIT under a forced-parallel
    // config: workers drain (aggregation needs all input), the fold
    // spills, and every run file is gone once the query returns.
    let q = parambench_sparql::parse_query(
        "SELECT ?g (COUNT(?s) AS ?n) WHERE { ?s <grp> ?g . ?s <rank> ?r } \
         GROUP BY ?g ORDER BY DESC(?n) LIMIT 5",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let exec = ExecConfig {
        threads: 4,
        morsel_rows,
        min_driver_rows: 1,
        min_est_cost: 0.0,
        mem_budget_rows: Some(8),
        ..ExecConfig::default()
    };
    let spilled = engine.execute_with(&prepared, &exec).unwrap();
    let serial = engine.execute_with(&prepared, &budget_cfg(None)).unwrap();
    assert_eq!(spilled.results, serial.results);
    assert!(spilled.stats.spilled_rows > 0, "400 groups must overflow a budget of 8");
    let leftovers: Vec<_> = std::fs::read_dir(&spill_base)
        .map(|d| d.filter_map(|e| e.ok()).collect())
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "spill runs not cleaned up: {leftovers:?}");

    // A plain LIMIT under the same budget: output-bound queries never
    // block, so nothing spills and the early exit stays batch-granular —
    // upstream workers stop promptly instead of draining the scan.
    let q = parambench_sparql::parse_query(
        "SELECT ?s ?g ?r WHERE { ?s <grp> ?g . ?s <rank> ?r } LIMIT 9",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let out = engine.execute_with(&prepared, &exec).unwrap();
    assert_eq!(out.results.len(), 9);
    assert_eq!(out.stats.spilled_rows, 0, "LIMIT early exit must not spill");
    let bound = n as u64 + 4 * parambench_sparql::BATCH_SIZE as u64;
    assert!(
        out.stats.scanned <= bound,
        "LIMIT early exit under a budget did too much work: scanned {} (bound {bound})",
        out.stats.scanned
    );
    let _ = std::fs::remove_dir_all(&spill_base);
}

#[test]
fn spill_write_failure_surfaces_as_typed_exec_error() {
    let ds = grouped_dataset(500, 100);
    let mut engine = Engine::new(&ds);
    // Point the spill base at a regular file: creating the per-run spill
    // directory under it must fail, and the failure must come back as the
    // typed error — not a panic, not a generic Unsupported.
    let bogus = std::env::temp_dir().join(format!("parambench-not-a-dir-{}", std::process::id()));
    std::fs::write(&bogus, b"occupied").unwrap();
    engine.set_spill_dir(&bogus);
    let q = parambench_sparql::parse_query(
        "SELECT ?g (COUNT(?s) AS ?n) WHERE { ?s <grp> ?g } GROUP BY ?g",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let err = engine.execute_with(&prepared, &budget_cfg(Some(4))).unwrap_err();
    match err {
        QueryError::Exec(e) => {
            assert_eq!(e.op, "create spill dir");
            assert!(e.path.starts_with(&bogus), "error path {:?} not under {bogus:?}", e.path);
            assert!(!e.message.is_empty());
        }
        other => panic!("expected QueryError::Exec, got {other:?}"),
    }
    // In-memory execution of the same prepared query is unaffected.
    assert!(engine.execute_with(&prepared, &budget_cfg(None)).is_ok());
    let _ = std::fs::remove_file(&bogus);
}

#[test]
fn distinct_under_unprojected_sort_key_streams_with_bounded_peak() {
    // 6000 input rows collapse to 10 distinct groups; the sort key ?r is
    // not projected. The sort-aware dedup must reproduce the materializing
    // fallback row-for-row while holding only the distinct values.
    let ds = grouped_dataset(6000, 10);
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT DISTINCT ?g WHERE { ?s <grp> ?g . ?s <rank> ?r } ORDER BY ASC(?r)",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let pushed = engine.execute(&prepared).unwrap();
    let unpushed = engine.execute_unpushed(&prepared).unwrap();
    assert_eq!(pushed.results, unpushed.results, "sort-aware dedup diverged from fallback");
    assert_eq!(pushed.results.len(), 10);
    assert_eq!(pushed.cout, unpushed.cout);
    // Regression gate: the streaming dedup holds one entry per distinct
    // value plus in-flight batches — nowhere near the 6000 materialized
    // rows of the old fallback path. (Since PR 5 the order-aware planner
    // usually serves ASC(?r) straight from the rank index and the dedup
    // runs as a plain streaming Distinct behind the eliminated sort; the
    // bound covers both that path and the sort-aware dedup.)
    assert!(
        pushed.stats.peak_tuples <= (2 * 10 + 3 * parambench_sparql::BATCH_SIZE) as u64,
        "sort-aware DISTINCT peak {} should be bounded by distinct values + batches",
        pushed.stats.peak_tuples
    );
    assert!(
        pushed.stats.peak_tuples < unpushed.stats.peak_tuples,
        "streaming dedup peak {} not below materializing peak {}",
        pushed.stats.peak_tuples,
        unpushed.stats.peak_tuples
    );
}

#[test]
fn error_messages_are_actionable() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let err = engine.run_text("SELECT ?s WHERE { }").unwrap_err();
    assert!(matches!(err, QueryError::Unsupported(_)));
    let err =
        engine.run_text("SELECT ?s WHERE { ?s <rank> ?r } ORDER BY ASC(?missing)").unwrap_err();
    assert!(matches!(err, QueryError::UnknownVariable(v) if v == "missing"));
    let err = engine
        .run_text("SELECT ?g (AVG(?r) AS ?a) WHERE { ?s <rank> ?r . ?s <group> ?g }")
        .unwrap_err();
    assert!(matches!(err, QueryError::Unsupported(_)), "projected var without GROUP BY");
}

// ---------------------------------------------------------------------------
// Order-aware execution (PR 5): merge joins, sort elimination, expr keys
// ---------------------------------------------------------------------------

/// Engine whose *prepare* maximizes merge joins (`OrderExec::Force`) —
/// the per-test equivalent of the CI `SPARQL_ORDER_EXEC=force` pass.
fn force_order_engine(ds: &Dataset) -> Engine<'_> {
    let exec = ExecConfig { order_exec: parambench_sparql::OrderExec::Force, ..Default::default() };
    Engine::with_exec_config(ds, exec)
}

/// Forced hash/bind lowering of the same prepared plan.
fn off_cfg() -> ExecConfig {
    ExecConfig { order_exec: parambench_sparql::OrderExec::Off, ..Default::default() }
}

/// Duplicate-heavy star: every subject repeats each predicate value pair
/// several times through multi-valued predicates.
fn duplicate_heavy_dataset(n: usize) -> Dataset {
    let mut b = StoreBuilder::new();
    for i in 0..n {
        let s = Term::iri(format!("s/{i:05}"));
        for k in 0..4 {
            b.insert(s.clone(), Term::iri("a"), Term::integer(((i + k) % 7) as i64));
        }
        for k in 0..3 {
            b.insert(s.clone(), Term::iri("b"), Term::iri(format!("v/{}", (i * k) % 5)));
        }
        if i % 4 != 3 {
            b.insert(s, Term::iri("note"), Term::literal(format!("n{}", i % 6)));
        }
    }
    b.freeze()
}

/// Join cardinality of `?s <a> ?x . ?s <b> ?y` computed naively from the
/// store — the duplicate-expansion ground truth for the merge-join tests.
fn star_rows(ds: &Dataset) -> usize {
    let a = ds.lookup(&Term::iri("a")).unwrap();
    let b = ds.lookup(&Term::iri("b")).unwrap();
    ds.scan([None, Some(a), None]).map(|t| ds.count([Some(t[0]), Some(b), None])).sum()
}

#[test]
fn merge_join_star_matches_forced_hash_lowering_with_duplicates() {
    let ds = duplicate_heavy_dataset(120);
    let engine = force_order_engine(&ds);
    // 4×3 duplicate expansion per subject: heavy key runs on both sides.
    let q =
        parambench_sparql::parse_query("SELECT ?s ?x ?y WHERE { ?s <a> ?x . ?s <b> ?y }").unwrap();
    let prepared = engine.prepare(&q).unwrap();
    assert!(
        prepared.signature.0.contains("MJ("),
        "forced prepare must merge: {}",
        prepared.signature
    );
    let merged = engine.execute(&prepared).unwrap();
    let hashed = engine.execute_with(&prepared, &off_cfg()).unwrap();
    assert_eq!(merged.results, hashed.results, "merge vs hash rows/order diverged");
    assert_eq!(merged.cout, hashed.cout);
    assert_eq!(merged.stats.scanned, hashed.stats.scanned);
    assert_eq!(merged.results.len(), star_rows(&ds));
    assert_eq!(merged.stats.build_rows, 0, "merge plan must build nothing");
    assert!(hashed.stats.build_rows > 0, "hash lowering must build a side");
}

#[test]
fn optional_over_merge_joined_base_keeps_left_rows_and_order() {
    let ds = duplicate_heavy_dataset(120);
    let engine = force_order_engine(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?s ?x ?y ?n WHERE { ?s <a> ?x . ?s <b> ?y OPTIONAL { ?s <note> ?n } }",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    assert!(prepared.signature.0.contains("MJ("), "{}", prepared.signature);
    let merged = engine.execute(&prepared).unwrap();
    let hashed = engine.execute_with(&prepared, &off_cfg()).unwrap();
    assert_eq!(merged.results, hashed.results);
    assert_eq!(merged.cout, hashed.cout);
    assert_eq!(merged.stats.cout_optional, hashed.stats.cout_optional);
    // Every base row survives the left-outer join; i % 4 == 3 subjects
    // (which carry no <note>) are padded with UNBOUND.
    assert_eq!(merged.results.len(), star_rows(&ds));
    let unbound = merged
        .results
        .rows
        .iter()
        .filter(|r| matches!(r[3], parambench_sparql::results::OutVal::Unbound))
        .count();
    assert!(unbound > 0, "note-less subjects must pad");
    assert!(unbound < merged.results.len());
}

#[test]
fn merge_join_with_empty_side_at_engine_level() {
    let ds = duplicate_heavy_dataset(120);
    let engine = force_order_engine(&ds);
    // <c> has no triples in the dictionary: the pattern is provably empty.
    let q =
        parambench_sparql::parse_query("SELECT ?s ?x ?c WHERE { ?s <a> ?x . ?s <c> ?c }").unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let merged = engine.execute(&prepared).unwrap();
    let hashed = engine.execute_with(&prepared, &off_cfg()).unwrap();
    assert!(merged.results.is_empty());
    assert_eq!(merged.results, hashed.results);
    assert_eq!(merged.stats.scanned, hashed.stats.scanned, "both drain the live side");
}

#[test]
fn order_by_matching_index_eliminates_the_sort() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    // ORDER BY the subject: the default PSO scan already delivers it.
    let q = parambench_sparql::parse_query("SELECT ?s ?r WHERE { ?s <rank> ?r } ORDER BY ASC(?s)")
        .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let eliminated = engine.execute(&prepared).unwrap();
    let forced = engine.execute_with(&prepared, &off_cfg()).unwrap();
    assert_eq!(eliminated.results, forced.results, "eliminated sort changed the output");
    assert_eq!(eliminated.stats.sorted_rows, 0, "sort must be provably skipped");
    assert!(forced.stats.sorted_rows > 0, "forced mode must really sort");
    let explain = engine.explain_physical(&prepared);
    assert!(explain.contains("sort: eliminated"), "{explain}");
}

#[test]
fn eliminated_sort_with_limit_exits_early() {
    // Extent far beyond one batch, so batch-granular early exit shows.
    let ds = duplicate_heavy_dataset(2000);
    let engine = Engine::new(&ds);
    let q =
        parambench_sparql::parse_query("SELECT ?s ?x WHERE { ?s <a> ?x } ORDER BY ASC(?s) LIMIT 5")
            .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let eliminated = engine.execute(&prepared).unwrap();
    let forced = engine.execute_with(&prepared, &off_cfg()).unwrap();
    assert_eq!(eliminated.results, forced.results);
    assert_eq!(eliminated.stats.sorted_rows, 0);
    assert!(
        eliminated.stats.scanned < forced.stats.scanned,
        "the eliminated sort must early-exit ({} vs {})",
        eliminated.stats.scanned,
        forced.stats.scanned
    );
}

#[test]
fn order_by_expression_key_sorts_by_computed_value() {
    let mut b = StoreBuilder::new();
    for (i, (x, y)) in [(5i64, 1i64), (1, 2), (3, 3), (2, 9), (4, 0)].iter().enumerate() {
        let s = Term::iri(format!("e/{i}"));
        b.insert(s.clone(), Term::iri("x"), Term::integer(*x));
        b.insert(s, Term::iri("y"), Term::integer(*y));
    }
    let ds = b.freeze();
    let engine = Engine::new(&ds);
    // Sums: 6, 3, 6, 11, 4 → order by (x + y): e1(3), e4(4), e0(6), e2(6), e3(11)
    let out = engine
        .run_text("SELECT ?x ?y WHERE { ?s <x> ?x . ?s <y> ?y } ORDER BY ((?x + ?y))")
        .unwrap();
    let sums: Vec<f64> =
        out.results.rows.iter().map(|r| r[0].as_num().unwrap() + r[1].as_num().unwrap()).collect();
    assert_eq!(sums, vec![3.0, 4.0, 6.0, 6.0, 11.0]);
    // Ties keep pipeline arrival order (stable): e0 (x=5) before e2 (x=3)?
    // Arrival order is dictionary/value order of the subject-sorted scan.
    let unsorted = engine.run_text("SELECT ?x ?y WHERE { ?s <x> ?x . ?s <y> ?y }").unwrap();
    let mut expect: Vec<(f64, usize, Vec<String>)> = unsorted
        .results
        .rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let sum = r[0].as_num().unwrap() + r[1].as_num().unwrap();
            (sum, i, r.iter().map(|v| v.to_string()).collect())
        })
        .collect();
    expect.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let got: Vec<Vec<String>> =
        out.results.rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect();
    let want: Vec<Vec<String>> = expect.into_iter().map(|(_, _, r)| r).collect();
    assert_eq!(got, want, "expression sort must equal stable sort by computed value");
}

#[test]
fn order_by_expression_with_desc_topk_and_offset() {
    let mut b = StoreBuilder::new();
    for i in 0..50i64 {
        let s = Term::iri(format!("e/{i:02}"));
        b.insert(s.clone(), Term::iri("x"), Term::integer(i));
        b.insert(s, Term::iri("y"), Term::integer((i * 7) % 13));
    }
    let ds = b.freeze();
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?x WHERE { ?s <x> ?x . ?s <y> ?y } ORDER BY DESC((?x * ?y)) LIMIT 4 OFFSET 1",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let pushed = engine.execute(&prepared).unwrap();
    let unpushed = engine.execute_unpushed(&prepared).unwrap();
    assert_eq!(pushed.results, unpushed.results, "TopK expr keys diverge from fallback");
    assert_eq!(pushed.results.len(), 4);
    assert!(pushed.stats.sorted_rows > 0);
    // Products: i * ((7i) % 13); verify against a manual computation.
    let mut products: Vec<(i64, i64)> = (0..50).map(|i| (i * ((i * 7) % 13), i)).collect();
    products.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let want: Vec<f64> = products[1..5].iter().map(|&(_, i)| i as f64).collect();
    let got: Vec<f64> = pushed.results.rows.iter().map(|r| r[0].as_num().unwrap()).collect();
    assert_eq!(got, want);
}

#[test]
fn expression_key_under_aggregation_is_rejected() {
    let ds = dataset();
    let engine = Engine::new(&ds);
    let err = engine
        .run_text(
            "SELECT ?g (COUNT(?s) AS ?n) WHERE { ?s <group> ?g . ?s <rank> ?r } \
             GROUP BY ?g ORDER BY ((?r + 1))",
        )
        .unwrap_err();
    assert!(matches!(err, QueryError::Unsupported(_)), "{err:?}");
}

#[test]
fn group_by_on_delivered_order_streams_one_group_at_a_time() {
    let ds = duplicate_heavy_dataset(120);
    let engine = Engine::new(&ds);
    // Group key = the subject the scan delivers sorted: the ordered fold
    // holds one group; the forced-off run uses the hash fold. Results,
    // Cout and scanned must match bit for bit, and with ORDER BY ASC(?s)
    // the final sort disappears too.
    let q = parambench_sparql::parse_query(
        "SELECT ?s (COUNT(?x) AS ?n) (SUM(?x) AS ?sum) WHERE { ?s <a> ?x } \
         GROUP BY ?s ORDER BY ASC(?s)",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    // The ordered one-group-at-a-time fold runs on the unbudgeted path
    // only (under a budget the spill-capable fold takes over), so pin the
    // budget regardless of any SPARQL_MEM_BUDGET_ROWS the suite runs with.
    let inmem = ExecConfig { mem_budget_rows: None, ..ExecConfig::default() };
    let ordered = engine.execute_with(&prepared, &inmem).unwrap();
    let forced =
        engine.execute_with(&prepared, &ExecConfig { mem_budget_rows: None, ..off_cfg() }).unwrap();
    assert_eq!(ordered.results, forced.results);
    assert_eq!(ordered.results.len(), 120);
    assert_eq!(ordered.stats.sorted_rows, 0, "group-key ORDER BY rides the delivered order");
    assert_eq!(ordered.cout, forced.cout);
    assert!(forced.stats.sorted_rows > 0);
    assert!(
        ordered.stats.peak_tuples <= forced.stats.peak_tuples,
        "one-group-at-a-time fold must not hold more than the hash fold"
    );
}

#[test]
fn distinct_on_delivered_order_uses_run_dedup() {
    // Large enough that the hash dedup's retained set dominates the peak.
    let ds = duplicate_heavy_dataset(2000);
    let engine = Engine::new(&ds);
    // DISTINCT ?s over the multi-valued <a>: 4 duplicates per subject,
    // delivered contiguously — run dedup, no hash set.
    let q = parambench_sparql::parse_query("SELECT DISTINCT ?s WHERE { ?s <a> ?x }").unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let ordered = engine.execute(&prepared).unwrap();
    let forced = engine.execute_with(&prepared, &off_cfg()).unwrap();
    assert_eq!(ordered.results, forced.results);
    assert_eq!(ordered.results.len(), 2000);
    assert!(
        ordered.stats.peak_tuples < forced.stats.peak_tuples,
        "run dedup peak {} not below hash dedup peak {}",
        ordered.stats.peak_tuples,
        forced.stats.peak_tuples
    );
}

#[test]
fn multi_key_sort_elimination_declines_on_numeric_value_ties() {
    // Two DISTINCT ids with the SAME numeric value ("1"^^int vs
    // "1.0"^^double): under ORDER BY ?a ?b the baseline's stable sort
    // treats them as one tie group and reorders it by ?b, while id-ordered
    // delivery would pin them by lexical form. The engine must therefore
    // refuse multi-key elimination on tie-carrying dictionaries and sort
    // for real — producing exactly the baseline order.
    let mut b = StoreBuilder::new();
    let s1 = Term::iri("row/1");
    let s2 = Term::iri("row/2");
    b.insert(s1.clone(), Term::iri("a"), Term::integer(1));
    b.insert(s1, Term::iri("b"), Term::integer(5));
    b.insert(s2.clone(), Term::iri("a"), Term::double(1.0));
    b.insert(s2, Term::iri("b"), Term::integer(3));
    let ds = b.freeze();
    assert!(ds.dict().has_value_ties(), "1 and 1.0 must register as a value tie");
    let engine = Engine::new(&ds);
    let q = parambench_sparql::parse_query(
        "SELECT ?s ?a ?b WHERE { ?s <a> ?a . ?s <b> ?b } ORDER BY ASC(?a) ASC(?b)",
    )
    .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let auto = engine.execute(&prepared).unwrap();
    let off = engine.execute_with(&prepared, &off_cfg()).unwrap();
    assert_eq!(auto.results, off.results, "tie-carrying multi-key order diverged");
    assert!(auto.stats.sorted_rows > 0, "the engine must really sort here");
    // The equal-?a tie group is ordered by ?b: b=3 (the double row) first.
    assert_eq!(auto.results.rows[0][2].as_num(), Some(3.0));
    assert_eq!(auto.results.rows[1][2].as_num(), Some(5.0));

    // Single-key ORDER BY stays eliminable even with ties: sort-key ties
    // fall back to arrival order on both paths.
    let q1 = parambench_sparql::parse_query("SELECT ?s ?a WHERE { ?s <a> ?a } ORDER BY ASC(?a)")
        .unwrap();
    let p1 = engine.prepare(&q1).unwrap();
    let auto1 = engine.execute(&p1).unwrap();
    let off1 = engine.execute_with(&p1, &off_cfg()).unwrap();
    assert_eq!(auto1.results, off1.results);
    assert_eq!(auto1.stats.sorted_rows, 0, "single-key elimination stays sound");
}
